"""Ablation — detection-test parameters (success prior p and significance α).

The paper fixes p = 0.7 and α = 0.05 and notes the choice is conservative,
aimed at suppressing false positives.  This ablation sweeps both parameters
over the detection campaign and reports recall on the paper-confirmed cases
versus spurious detections, showing the operating point the defaults sit at.
"""

from __future__ import annotations

from repro.analysis.reports import format_table

EXPECTED = {
    ("youtube.com", "PK"), ("youtube.com", "IR"), ("youtube.com", "CN"),
    ("twitter.com", "CN"), ("twitter.com", "IR"),
    ("facebook.com", "CN"), ("facebook.com", "IR"),
}

PRIORS = (0.5, 0.7, 0.9)
SIGNIFICANCES = (0.001, 0.05, 0.2)


def sweep(result):
    rows = []
    for prior in PRIORS:
        for alpha in SIGNIFICANCES:
            detected = result.detect(success_prior=prior, significance=alpha).detected_pairs()
            recall = len(detected & EXPECTED) / len(EXPECTED)
            spurious = len(detected - EXPECTED)
            rows.append((prior, alpha, recall, spurious))
    return rows


class TestDetectionParameterAblation:
    def test_parameter_sweep(self, benchmark, detection_result):
        rows = benchmark(sweep, detection_result)

        print()
        print("Ablation — binomial-test parameters (recall over the 7 confirmed cases):")
        print(format_table(
            ["success prior p", "significance alpha", "recall", "spurious detections"],
            [[p, a, f"{r:.2f}", s] for p, a, r, s in rows],
        ))

        results = {(p, a): (r, s) for p, a, r, s in rows}
        # The paper's operating point recovers everything with nothing spurious.
        recall, spurious = results[(0.7, 0.05)]
        assert recall == 1.0
        assert spurious == 0
        # Stricter significance can only shrink the detected set.
        for prior in PRIORS:
            recalls = [results[(prior, a)][0] for a in SIGNIFICANCES]
            assert recalls == sorted(recalls)
        # Even the strictest sweep point keeps zero spurious detections in
        # uncensored regions — censored success rates are near zero, so the
        # test is far from its decision boundary.
        assert all(s == 0 for (_, _), (_, s) in results.items())
