"""Columnar MeasurementStore vs. the seed row-list collection path.

The store exists to make §7-scale analysis cheap: the batch executor hands
the collection server *column* payloads (value tables + index arrays), so
ingestion is array indexing plus one per-visit GeoIP pass instead of
100,000 frozen-dataclass constructions; ``success_counts`` is two bincount
reductions; and detection evaluates every (domain, country) cell's binomial
tail in one vectorized pass.  This benchmark pins the claim on a synthetic
§7-scale corpus (~100k measurements from ~50k visits): each path ingests
its native payload — row tuples for the seed baseline (a faithful
reimplementation of the seed ``submit_batch`` / ``success_counts`` /
scalar-detect code), columns for the store — and the store must be at least
5× faster end to end while producing identical counts, detections, and
materialized rows.

Results are recorded in ``benchmarks/BENCH_store.json`` so regressions show
up as a diff, not just a failed assertion.  The full-size case is ``slow``;
a small smoke case checks equivalence on every run.
"""

from __future__ import annotations

import gc
import time
from collections import defaultdict
from pathlib import Path

import numpy as np
import pytest

from repro.core.collection import CollectionServer, ColumnarRecords, Measurement
from repro.core.inference import BinomialFilteringDetector, binomial_cdf
from repro.core.query import grouped_success_counts
from repro.core.store import DictColumn
from repro.core.tasks import TaskOutcome, TaskType
from repro.population.geoip import GeoIPDatabase
from repro.web.url import URL

VISITS_FULL = 50_000   #: ~100k measurements, the §7 deployment's scale (§7: 141k)
VISITS_SMOKE = 2_500
SEED_INGEST_BATCH = 10_000  #: records per seed submit_batch call (runner-sized)
MIN_SPEEDUP = 5.0
REPORT_PATH = Path(__file__).parent / "BENCH_store.json"

N_DOMAINS = 18
N_COUNTRIES = 50
N_ORIGINS = 8
#: (domain index, country index) pairs whose success rate collapses — what
#: the detector should find in both paths.
FILTERED_CELLS = {(0, 1), (0, 2), (3, 1), (7, 5)}

_OUTCOMES = (TaskOutcome.SUCCESS, TaskOutcome.FAILURE, TaskOutcome.INCONCLUSIVE)


def make_corpus(visits: int, seed: int = 2015) -> dict:
    """A synthetic campaign corpus in both layouts (built outside all timing).

    Per-visit columns (client attributes) plus per-row columns (task,
    outcome, timing), mirroring what the batch executor produces; the seed
    baseline consumes the equivalent row tuples in
    :class:`SubmissionRecord` field order.
    """
    rng = np.random.default_rng(seed)
    allocator = GeoIPDatabase()
    countries = sorted(allocator.countries())[:N_COUNTRIES]
    domains = [f"domain-{i:02d}.org" for i in range(N_DOMAINS)]
    urls = [URL.parse(f"http://{d}/favicon.ico") for d in domains]
    task_mids = [f"task-{i:02d}" for i in range(N_DOMAINS)]
    task_types = [list(TaskType)[i % len(TaskType)] for i in range(N_DOMAINS)]
    origin_strips = [i % 4 != 0 for i in range(N_ORIGINS)]  # 3/4 strip (§7)
    origin_values = [
        None if strips else f"origin-{i:02d}.example.edu"
        for i, strips in enumerate(origin_strips)
    ]

    # Per-visit client attributes.
    country_idx = rng.integers(0, N_COUNTRIES, size=visits)
    ips: list[str] = [""] * visits
    for c in range(N_COUNTRIES):
        where = np.flatnonzero(country_idx == c)
        for visit, ip in zip(where.tolist(), allocator.allocate_ips(countries[c], len(where))):
            ips[visit] = ip
    visit_countries = [countries[c] for c in country_idx.tolist()]
    visit_isps = [f"{code.lower()}-isp-{i % 3}" for i, code in enumerate(visit_countries)]
    visit_families = ["chrome" if f < 0.6 else "firefox" for f in rng.random(visits)]
    automated = rng.random(visits) < 0.02
    days = rng.integers(0, 30, size=visits)
    origin_idx = rng.integers(0, N_ORIGINS, size=visits)

    # Per-row task outcomes.
    tasks_per_visit = rng.integers(1, 4, size=visits)
    visit_of_row = np.repeat(np.arange(visits), tasks_per_visit)
    rows = len(visit_of_row)
    domain_idx = rng.integers(0, N_DOMAINS, size=rows)
    row_country = country_idx[visit_of_row]
    filtered = np.zeros(rows, dtype=bool)
    for d, c in FILTERED_CELLS:
        filtered |= (domain_idx == d) & (row_country == c)
    draw = rng.random(rows)
    outcome_code = np.where(
        rng.random(rows) < 0.03,
        2,  # inconclusive
        np.where(np.where(filtered, draw < 0.05, draw < 0.8), 0, 1),
    ).astype(np.int64)
    elapsed = rng.uniform(10.0, 900.0, size=rows)

    columns = ColumnarRecords(
        measurement_id=DictColumn(task_mids, domain_idx),
        task_type=DictColumn(task_types, domain_idx),
        target_url=DictColumn(urls, domain_idx),
        target_domain=DictColumn(domains, domain_idx),
        outcome=DictColumn(_OUTCOMES, outcome_code),
        elapsed_ms=elapsed,
        probe_time_ms=np.full(rows, np.nan),
        client_ip=DictColumn(np.asarray(ips, dtype=np.str_), visit_of_row),
        country_code=DictColumn(visit_countries, visit_of_row),
        isp=DictColumn(visit_isps, visit_of_row),
        browser_family=DictColumn(visit_families, visit_of_row),
        origin_domain=DictColumn(origin_values, origin_idx[visit_of_row]),
        day=days[visit_of_row],
        is_automated=automated[visit_of_row],
    )
    records = [
        (
            task_mids[d], task_types[d], urls[d], domains[d], _OUTCOMES[o],
            float(e), None, ips[v], visit_countries[v], visit_isps[v],
            visit_families[v], f"origin-{origin_idx[v]:02d}.example.edu",
            int(days[v]), origin_strips[origin_idx[v]], bool(automated[v]),
        )
        for d, o, e, v in zip(
            domain_idx.tolist(), outcome_code.tolist(), elapsed.tolist(),
            visit_of_row.tolist(),
        )
    ]
    return {"rows": rows, "records": records, "columns": columns}


# ----------------------------------------------------------------------
# The seed row-list path, reproduced faithfully
# ----------------------------------------------------------------------
class SeedRowListCollection:
    """The pre-store collection semantics: a Python list of dataclasses."""

    def __init__(self, geoip: GeoIPDatabase) -> None:
        self.geoip = geoip
        self.measurements: list[Measurement] = []

    def submit_batch(self, records) -> None:
        lookup = self.geoip.lookup
        stored = []
        append = stored.append
        for (
            measurement_id, task_type, target_url, target_domain, outcome,
            elapsed_ms, probe_time_ms, client_ip, country_code, isp,
            browser_family, origin_domain, day, strip_referer, is_automated,
        ) in records:
            append(
                Measurement(
                    measurement_id, task_type, target_url, target_domain, outcome,
                    elapsed_ms, client_ip, lookup(client_ip) or country_code, isp,
                    browser_family, None if strip_referer else origin_domain, day,
                    probe_time_ms, is_automated,
                )
            )
        self.measurements.extend(stored)

    def success_counts(self) -> dict:
        totals: dict = defaultdict(int)
        successes: dict = defaultdict(int)
        for m in self.measurements:
            if m.is_automated:
                continue
            if m.outcome is TaskOutcome.INCONCLUSIVE:
                continue
            key = (m.target_domain, m.country_code)
            totals[key] += 1
            if m.succeeded:
                successes[key] += 1
        return {key: (totals[key], successes[key]) for key in totals}


def seed_detect_pairs(counts, success_prior=0.7, significance=0.05, min_measurements=10):
    """The seed scalar detection loop (per-cell ``binomial_cdf`` calls)."""
    stats = []
    for (domain, country), (n, successes) in sorted(counts.items()):
        if n < min_measurements:
            continue
        stats.append((domain, country, n, successes, binomial_cdf(successes, n, success_prior)))
    by_domain = defaultdict(list)
    for stat in stats:
        by_domain[stat[0]].append(stat)
    detected = set()
    for domain, domain_stats in by_domain.items():
        failing = [s for s in domain_stats if s[4] <= significance]
        passing = [s for s in domain_stats if s[4] > significance and s[3] / s[2] >= success_prior]
        if not failing or not passing:
            continue
        detected.update((s[0], s[1]) for s in failing)
    return detected


# ----------------------------------------------------------------------
# Timed pipelines
# ----------------------------------------------------------------------
# Collector passes are paused inside the timed regions: when the rest of the
# benchmark session keeps millions of fixture objects alive, a single gen-2
# GC landing inside the short store pipeline would dominate its runtime and
# make the ratio depend on suite ordering rather than on the code.


def run_seed_path(corpus):
    records = corpus["records"]
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    collection = SeedRowListCollection(GeoIPDatabase())
    for start in range(0, len(records), SEED_INGEST_BATCH):
        collection.submit_batch(records[start:start + SEED_INGEST_BATCH])
    t1 = time.perf_counter()
    counts = collection.success_counts()
    t2 = time.perf_counter()
    detected = seed_detect_pairs(counts)
    t3 = time.perf_counter()
    gc.enable()
    return {"ingest": t1 - t0, "counts": t2 - t1, "detect": t3 - t2,
            "total": t3 - t0, "counts_dict": counts, "detected": detected,
            "collection": collection}


def run_store_path(corpus):
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    server = CollectionServer(
        "http://collector.encore-measurement.org/submit", GeoIPDatabase()
    )
    server.ingest_columns(corpus["columns"])
    t1 = time.perf_counter()
    grouped = grouped_success_counts(server.store)
    t2 = time.perf_counter()
    report = BinomialFilteringDetector().detect_from_counts(grouped)
    t3 = time.perf_counter()
    gc.enable()
    return {"ingest": t1 - t0, "counts": t2 - t1, "detect": t3 - t2,
            "total": t3 - t0, "counts_dict": grouped.as_dict(),
            "detected": report.detected_pairs(), "server": server}


def assert_paths_agree(seed, store, rows, seed_collection):
    assert store["counts_dict"] == seed["counts_dict"]
    assert store["detected"] == seed["detected"]
    # Row materialization reproduces the seed dataclasses field for field.
    sample = np.linspace(0, rows - 1, num=25, dtype=np.int64)
    materialized = store["server"].store.rows(sample)
    reference = [seed_collection.measurements[i] for i in sample.tolist()]
    assert materialized == reference


class TestStoreThroughput:
    def test_smoke_store_equals_seed_path(self):
        corpus = make_corpus(VISITS_SMOKE)
        seed = run_seed_path(corpus)
        store = run_store_path(corpus)
        assert_paths_agree(seed, store, corpus["rows"], seed.pop("collection"))

    @pytest.mark.slow
    def test_store_is_at_least_5x_faster_at_100k(self, bench_report_writer):
        corpus = make_corpus(VISITS_FULL)
        # Best-of-N on both sides, with every store repetition taken before
        # the first seed run: the seed pipeline leaves hundreds of thousands
        # of dataclasses behind, and the resulting allocator pressure
        # measurably slows the short store runs if they go second.
        store_runs = [run_store_path(corpus) for _ in range(3)]
        seed_runs = []
        seed_collection = None
        for _ in range(2):
            run = run_seed_path(corpus)
            collection = run.pop("collection")
            if seed_collection is None:
                seed_collection = collection
            seed_runs.append(run)
        seed = min(seed_runs, key=lambda r: r["total"])
        store = min(store_runs, key=lambda r: r["total"])

        assert_paths_agree(seed, store, corpus["rows"], seed_collection)
        assert len(store["detected"]) >= len(FILTERED_CELLS)

        report = {
            "rows": corpus["rows"],
            "seed_seconds": {k: round(seed[k], 4) for k in ("ingest", "counts", "detect", "total")},
            "store_seconds": {k: round(store[k], 4) for k in ("ingest", "counts", "detect", "total")},
            "seed_rows_per_second": round(corpus["rows"] / seed["total"], 1),
            "store_rows_per_second": round(corpus["rows"] / store["total"], 1),
            "speedup": round(seed["total"] / store["total"], 2),
            "detected_pairs": len(store["detected"]),
        }
        bench_report_writer(
            REPORT_PATH, report, rows=corpus["rows"], seconds=store["total"]
        )

        print()
        print("MeasurementStore throughput (ingest + success_counts + detect, ~100k rows):")
        for key, value in report.items():
            print(f"  {key:24s} {value}")
        assert report["speedup"] >= MIN_SPEEDUP, report
