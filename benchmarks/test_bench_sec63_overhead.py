"""§6.3 — will webmasters install Encore?  Deployment overhead accounting.

Paper claims: the snippet adds only ~100 bytes to each origin page and needs
no extra origin-server connections; measurement tasks that detect filtering
of a domain (small images / favicons) incur client-side overheads that are an
insignificant fraction of a typical page's network usage.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.core.origin import OriginSite, client_overhead_report, snippet_overhead_bytes
from repro.core.tasks import TaskType
from repro.web.resources import KILOBYTE


def overhead_summary(world, tasks):
    origins = [
        OriginSite(site=world.universe.site(domain), coordination_url=world.coordination_url)
        for domain in world.origin_domains
    ]
    per_task = client_overhead_report(tasks)
    return {
        "snippet_bytes": snippet_overhead_bytes(world.coordination_url),
        "origin_page_fraction": float(np.median([o.page_overhead_fraction() for o in origins])),
        "per_task_median_bytes": per_task.summary(),
    }


class TestSection63:
    def test_deployment_overheads(self, benchmark, full_world, feasibility):
        summary = benchmark(overhead_summary, full_world, feasibility.tasks)

        rows = [
            ["snippet size (bytes)", "~100", summary["snippet_bytes"]],
            ["snippet / median origin page weight", "insignificant",
             f"{summary['origin_page_fraction']:.4%}"],
        ]
        for task_type, median in sorted(summary["per_task_median_bytes"].items()):
            rows.append([f"median client overhead per {task_type} task", "", f"{median} B"])
        print()
        print("§6.3 — origin- and client-side overhead of deploying Encore:")
        print(format_table(["metric", "paper", "reproduced"], rows))

        # The webmaster-side snippet is on the order of 100 bytes.
        assert 50 <= summary["snippet_bytes"] <= 150
        # It is a vanishing fraction of a typical page's weight.
        assert summary["origin_page_fraction"] < 0.005
        # Domain-level (image) tasks cost clients at most a few KB...
        assert summary["per_task_median_bytes"][TaskType.IMAGE.value] <= 5 * KILOBYTE
        # ...whereas page-level (iframe) tasks are orders of magnitude heavier,
        # which is why the Task Generator is conservative about them.
        if TaskType.INLINE_FRAME.value in summary["per_task_median_bytes"]:
            assert (
                summary["per_task_median_bytes"][TaskType.INLINE_FRAME.value]
                > 10 * summary["per_task_median_bytes"][TaskType.IMAGE.value]
            )
