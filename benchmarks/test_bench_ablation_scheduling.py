"""Ablation — how much measurement volume does detection actually need?

Scheduling (§5.3) exists to replicate each measurement across many clients in
each region so the binomial test has enough trials.  This ablation asks the
operative question: as the campaign's visit volume shrinks, when does the
detector stop recovering the paper-confirmed cases?  It also checks the
scheduler's replication balance, which is what spreads a fixed visit budget
evenly over targets.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.inference import BinomialFilteringDetector

EXPECTED = {
    ("youtube.com", "PK"), ("youtube.com", "IR"), ("youtube.com", "CN"),
    ("twitter.com", "CN"), ("twitter.com", "IR"),
    ("facebook.com", "CN"), ("facebook.com", "IR"),
}

FRACTIONS = (0.02, 0.05, 0.1, 0.25, 0.5, 1.0)


def recall_by_volume(measurements):
    detector = BinomialFilteringDetector(min_measurements=10)
    rows = []
    for fraction in FRACTIONS:
        prefix = measurements[: int(len(measurements) * fraction)]
        detected = detector.detect_from_measurements(prefix).detected_pairs()
        recall = len(detected & EXPECTED) / len(EXPECTED)
        spurious = len(detected - EXPECTED)
        rows.append((fraction, len(prefix), recall, spurious))
    return rows


class TestSchedulingAblation:
    def test_volume_sweep(self, benchmark, detection_result):
        rows = benchmark(recall_by_volume, detection_result.measurements)

        print()
        print("Ablation — detection recall vs measurement volume:")
        print(format_table(
            ["campaign fraction", "measurements", "recall", "spurious"],
            [[f"{f:.0%}", n, f"{r:.2f}", s] for f, n, r, s in rows],
        ))

        recalls = [r for _, _, r, _ in rows]
        # More volume never hurts recall.
        assert recalls == sorted(recalls)
        # The full campaign recovers everything; a small sliver does not.
        assert recalls[-1] == 1.0
        assert recalls[0] < 1.0
        # No amount of extra volume produces spurious detections.
        assert all(s == 0 for _, _, _, s in rows)

    def test_scheduler_replication_balance(self, detection_deployment):
        counts = detection_deployment.scheduler.replication_report().values()
        assert counts
        assert max(counts) <= 1.3 * min(counts) + 5
