#!/usr/bin/env python
"""Fail CI when a freshly measured benchmark ratio regresses >25%.

Every throughput benchmark writes a ``BENCH_*.json`` next to this script
with a ``speedup`` field (vectorized/sharded path vs. its scalar
reference).  Those files are committed, so the repository always carries
the last accepted numbers; after the slow lane re-runs the benchmarks,
this script compares each freshly written ratio against the committed
baseline and exits non-zero if any dropped by more than
``MAX_REGRESSION`` (25%).

Baselines come from ``git show HEAD:benchmarks/<name>`` by default (the
working-tree copies have just been overwritten by the benchmark run);
``--baseline-dir`` points at a directory of snapshot copies instead.

On hosts with fewer than 4 CPUs the whole gate is *skipped, loudly*:
wall-clock ratios on a 1-core container measure the scheduler, not the
code (the sharded benchmark can't even win), so rather than compare noise
the script prints exactly why it is not comparing and exits 0.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from baselines import BENCH_DIR, load_baseline
#: File -> field holding the pinned ratio.
RATIO_FIELDS = {
    "BENCH_runner.json": "speedup",
    "BENCH_store.json": "speedup",
    "BENCH_shard.json": "speedup",
    "BENCH_robustness.json": "speedup",
    "BENCH_longitudinal.json": "speedup",
    "BENCH_monitor.json": "speedup",
    "BENCH_query.json": "speedup",
}
#: Largest tolerated relative drop of a ratio before the gate fails.
MAX_REGRESSION = 0.25
MIN_CPUS = 4
#: Relative peak-RSS growth (vs. the baseline's recorded telemetry) that
#: draws a warning.  Memory is trended warn-only: RSS depends on the
#: allocator, interpreter build, and test ordering, so growth is a prompt
#: to investigate, never a CI failure.
MEMORY_CEILING = 0.50


def peak_rss_kb(report: dict | None) -> float | None:
    """The ``telemetry.peak_rss_kb`` a benchmark report carries, if any."""
    if not isinstance(report, dict):
        return None
    telemetry = report.get("telemetry")
    if not isinstance(telemetry, dict):
        return None
    value = telemetry.get("peak_rss_kb")
    return float(value) if isinstance(value, (int, float)) and value > 0 else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir", type=Path, default=None,
        help="directory holding baseline BENCH_*.json copies "
             "(default: read them from git HEAD)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=MAX_REGRESSION,
        help="largest tolerated relative ratio drop (default 0.25)",
    )
    parser.add_argument(
        "--memory-ceiling", type=float, default=MEMORY_CEILING,
        help="relative peak-RSS growth that draws a warning — warn-only, "
             "never fails the gate (default 0.5)",
    )
    args = parser.parse_args(argv)

    cpus = os.cpu_count() or 1
    if cpus < MIN_CPUS:
        print(
            f"SKIPPED: benchmark regression gate needs >= {MIN_CPUS} CPUs to "
            f"measure stable ratios, host has {cpus} (the 1-core container "
            f"case); not comparing BENCH_*.json — this is a skip, not a pass."
        )
        return 0

    failures = []
    for name, field in RATIO_FIELDS.items():
        fresh_path = BENCH_DIR / name
        if not fresh_path.is_file():
            print(f"{name}: SKIP (no fresh file written by this benchmark run)")
            continue
        fresh = json.loads(fresh_path.read_text())
        baseline = load_baseline(name, args.baseline_dir)
        if baseline is None or field not in baseline:
            print(f"{name}: SKIP (no committed baseline to compare against)")
            continue
        old = float(baseline[field])
        new = float(fresh.get(field, 0.0))
        floor = old * (1.0 - args.max_regression)
        verdict = "ok" if new >= floor else "REGRESSED"
        print(f"{name}: {field} {old:.2f} -> {new:.2f} (floor {floor:.2f}) {verdict}")
        if new < floor:
            failures.append(name)

        old_rss = peak_rss_kb(baseline)
        new_rss = peak_rss_kb(fresh)
        if old_rss is not None and new_rss is not None:
            ceiling = old_rss * (1.0 + args.memory_ceiling)
            if new_rss > ceiling:
                print(
                    f"{name}: WARN peak RSS {old_rss:.0f}kB -> {new_rss:.0f}kB "
                    f"(ceiling {ceiling:.0f}kB) — memory growth is warn-only, "
                    "not a gate failure"
                )
            else:
                print(f"{name}: peak RSS {old_rss:.0f}kB -> {new_rss:.0f}kB ok")

    if failures:
        print(f"FAIL: ratio regressions >25% in: {', '.join(failures)}")
        return 1
    print("All benchmark ratios within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
