#!/usr/bin/env python
"""Fail CI when detection quality regresses against the committed baseline.

The scenario harness (``python -m repro.scenarios run all --out DIR``)
reduces every registered suite to one deterministic
``QUALITY_<suite>.json``.  Those artifacts are committed under
``benchmarks/``, so the repository always carries the last accepted
quality numbers; after the scheduled lane re-runs the suites, this script
compares each freshly written artifact against the baseline copy
(``git show HEAD:benchmarks/<name>`` by default, ``--baseline-dir`` for
snapshot copies — see ``baselines.py``) and fails on:

* ``lag_p90`` growing by more than ``MAX_REGRESSION`` (25%) — or
  appearing at all where the baseline had none, or disappearing where the
  baseline had one (a vanished lag means the detections vanished);
* any **new** false alarm (``false_alarms`` above the baseline count).

Everything else — miss rate, attack success rates, lag p50/max, mean lag,
detection rate — is trended *warn-only*: drift is printed for the reviewer
but does not fail the gate, mirroring how ``check_regression.py`` treats
peak RSS.  Unlike the benchmark gate there is **no CPU-count skip**:
quality is seeded and deterministic, so a 1-core container measures
exactly the same numbers as a 64-core one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from baselines import BENCH_DIR, load_baseline

#: Largest tolerated relative growth of ``lag_p90`` before the gate fails.
MAX_REGRESSION = 0.25

#: Warn-only trended fields: (field, direction) where direction says which
#: way is worse.  Drift prints a WARN line but never fails the gate.
WARN_FIELDS = (
    ("miss_rate", "higher"),
    ("attack_success_rate_naive", "higher"),
    ("attack_success_rate_defended", "higher"),
    ("lag_p50", "higher"),
    ("lag_max", "higher"),
    ("mean_lag_days", "higher"),
    ("detection_rate", "lower"),
)


def fresh_quality_files(directory: Path) -> list[Path]:
    return sorted(directory.glob("QUALITY_*.json"))


def _num(quality: dict, field: str) -> float | None:
    value = quality.get(field)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


def gate_lag_p90(old: float | None, new: float | None, max_regression: float) -> str | None:
    """The hard lag gate; returns a failure message or ``None``."""
    if old is None and new is None:
        return None
    if old is None:
        return f"lag_p90 appeared ({new}) where the baseline detected with no lag data"
    if new is None:
        return f"lag_p90 vanished (baseline {old}) — the detections themselves vanished"
    if old == 0.0:
        if new > 0.0:
            return f"lag_p90 rose from 0 to {new}"
        return None
    ceiling = old * (1.0 + max_regression)
    if new > ceiling:
        return f"lag_p90 {old} -> {new} exceeds ceiling {round(ceiling, 6)}"
    return None


def check_suite(
    name: str, fresh: dict, baseline: dict, max_regression: float
) -> tuple[list[str], list[str]]:
    """(failures, warnings) for one suite's fresh-vs-baseline comparison."""
    fq = fresh.get("quality", {})
    bq = baseline.get("quality", {})
    failures: list[str] = []
    warnings: list[str] = []

    lag_failure = gate_lag_p90(
        _num(bq, "lag_p90"), _num(fq, "lag_p90"), max_regression
    )
    if lag_failure is not None:
        failures.append(lag_failure)

    old_fa, new_fa = _num(bq, "false_alarms"), _num(fq, "false_alarms")
    if new_fa is not None and new_fa > (old_fa or 0.0):
        failures.append(f"new false alarms: {old_fa or 0:g} -> {new_fa:g}")

    for field, direction in WARN_FIELDS:
        old, new = _num(bq, field), _num(fq, field)
        if old is None or new is None or old == new:
            continue
        worse = new > old if direction == "higher" else new < old
        if worse:
            warnings.append(f"{field} drifted worse: {old:g} -> {new:g}")
    return failures, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh-dir", type=Path, default=BENCH_DIR,
        help="directory the scenario run wrote fresh QUALITY_*.json into "
             "(default: benchmarks/ itself)",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=None,
        help="directory holding baseline QUALITY_*.json copies "
             "(default: read them from git HEAD)",
    )
    parser.add_argument(
        "--max-regression", type=float, default=MAX_REGRESSION,
        help="largest tolerated relative lag_p90 growth (default 0.25)",
    )
    args = parser.parse_args(argv)

    fresh_paths = fresh_quality_files(args.fresh_dir)
    if not fresh_paths:
        print(f"FAIL: no fresh QUALITY_*.json in {args.fresh_dir} — did the "
              "scenario run happen?")
        return 1

    failed = []
    for path in fresh_paths:
        name = path.name
        try:
            fresh = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            print(f"{name}: FAIL (unreadable fresh artifact: {exc})")
            failed.append(name)
            continue
        baseline = load_baseline(name, args.baseline_dir)
        if baseline is None:
            print(f"{name}: SKIP (no committed baseline — commit this "
                  "artifact to benchmarks/ to start trending it)")
            continue
        failures, warnings = check_suite(name, fresh, baseline, args.max_regression)
        for message in warnings:
            print(f"{name}: WARN {message}")
        if failures:
            for message in failures:
                print(f"{name}: FAIL {message}")
            failed.append(name)
        else:
            fq = fresh.get("quality", {})
            print(
                f"{name}: ok (lag_p90 {fq.get('lag_p90')}, "
                f"false_alarms {fq.get('false_alarms')})"
            )

    if failed:
        print(f"FAIL: quality regressions in: {', '.join(failed)}")
        return 1
    print("All quality metrics within tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
