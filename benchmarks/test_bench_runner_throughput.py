"""Smoke benchmark — serial vs. batched campaign throughput.

The batched :class:`~repro.core.runner.CampaignRunner` exists to make the
§7-scale experiments cheap; this benchmark pins that claim with a full
25,000-visit campaign (the same §7 configuration the scale benchmark uses):
the vectorized ``mode="batch"`` path must run at least 5× faster than the
``mode="serial"`` reference path that produces identical measurements.

Results are recorded in ``benchmarks/BENCH_runner.json`` so regressions show
up as a diff, not just a failed assertion.
"""

from __future__ import annotations

import gc
import time
from pathlib import Path

from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.population.world import World, WorldConfig

VISITS = 25_000
MIN_SPEEDUP = 5.0
# repro-lint: disable=bench-hygiene -- deliberate smoke benchmark: conftest
# lists this module in SMOKE_MODULES so the ~seconds-scale 5x runner check
# runs on every push; its key IS registered in check_regression.py.
REPORT_PATH = Path(__file__).parent / "BENCH_runner.json"


def timed_campaign(mode: str) -> tuple[float, int]:
    """Run the §7 scale configuration in ``mode``; (seconds, measurements)."""
    world = World(WorldConfig(seed=2017))
    config = CampaignConfig(
        visits=VISITS,
        include_testbed=True,
        testbed_fraction=0.3,
        favicons_only=True,
        seed=2017,
        mode=mode,
    )
    deployment = EncoreDeployment(world, config)
    gc.collect()
    started = time.perf_counter()
    result = deployment.run_campaign()
    elapsed = time.perf_counter() - started
    return elapsed, len(result.measurements)


class TestRunnerThroughput:
    def test_batched_runner_is_at_least_5x_faster(self, bench_report_writer):
        serial_s, serial_measurements = timed_campaign("serial")
        # Best of three for the short batched runs, so scheduler noise on the
        # host doesn't flake the ratio.
        batch_runs = [timed_campaign("batch") for _ in range(3)]
        batch_s = min(elapsed for elapsed, _ in batch_runs)
        batch_measurements = batch_runs[0][1]

        report = {
            "visits": VISITS,
            "serial_seconds": round(serial_s, 3),
            "batch_seconds": round(batch_s, 3),
            "serial_visits_per_second": round(VISITS / serial_s, 1),
            "batch_visits_per_second": round(VISITS / batch_s, 1),
            "speedup": round(serial_s / batch_s, 2),
            "serial_measurements": serial_measurements,
            "batch_measurements": batch_measurements,
        }
        bench_report_writer(
            REPORT_PATH, report, rows=batch_measurements, seconds=batch_s
        )

        print()
        print("Campaign runner throughput (25k-visit §7 scale configuration):")
        for key, value in report.items():
            print(f"  {key:26s} {value}")

        # Identical campaigns (the equivalence suite pins this in depth).
        assert serial_measurements == batch_measurements
        assert report["speedup"] >= MIN_SPEEDUP, report
