"""§6.1 headline amenability numbers.

Paper claims: Encore can measure filtering of upwards of 50% of domains
(using small images), but fewer than 10% of individual URLs once pages are
limited to 100 KB for the hidden-iframe task.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.web.resources import KILOBYTE


def amenability_summary(report):
    return {
        "domains_1kb": report.fraction_domains_measurable(KILOBYTE),
        "domains_5kb": report.fraction_domains_measurable(5 * KILOBYTE),
        "pages_100kb": report.fraction_pages_measurable(100 * KILOBYTE),
        "pages_500kb": report.fraction_pages_measurable(500 * KILOBYTE),
    }


class TestSection61:
    def test_amenability(self, benchmark, feasibility):
        summary = benchmark(amenability_summary, feasibility.report)

        print()
        print("§6.1 — amenability of the high-value list to Encore's tasks:")
        print(format_table(
            ["metric", "value"],
            [
                ["domains measurable with <= 1 KB images", f"{summary['domains_1kb']:.0%}"],
                ["domains measurable with <= 5 KB images", f"{summary['domains_5kb']:.0%}"],
                ["URLs measurable with 100 KB iframe limit", f"{summary['pages_100kb']:.0%}"],
                ["URLs measurable with 500 KB iframe limit", f"{summary['pages_500kb']:.0%}"],
            ],
        ))

        # Over half of domains are measurable even with conservative 1 KB images.
        assert summary["domains_1kb"] >= 0.50
        # Relaxing the image limit can only help.
        assert summary["domains_5kb"] >= summary["domains_1kb"]
        # Fewer than 10% of URLs are measurable with the 100 KB iframe limit.
        assert summary["pages_100kb"] < 0.10
        # Domain-level measurement is dramatically easier than URL-level
        # measurement — the paper's central feasibility observation.
        assert summary["domains_1kb"] > 4 * summary["pages_100kb"]

    def test_generated_tasks_reflect_amenability(self, feasibility):
        """Domains that the report calls measurable actually receive tasks."""
        from repro.core.tasks import TaskType

        tasks_by_domain = {}
        for task in feasibility.tasks:
            tasks_by_domain.setdefault(task.target_domain, set()).add(task.task_type)
        measurable = [d for d in feasibility.report.domains if d.measurable_with_images(KILOBYTE)]
        with_image_task = sum(
            1 for d in measurable if TaskType.IMAGE in tasks_by_domain.get(d.domain, set())
        )
        assert with_image_task / len(measurable) >= 0.9
