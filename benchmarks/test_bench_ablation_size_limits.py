"""Ablation — Task Generator resource-size limits.

The amenability results of §6.1 hinge on two limits: the maximum image size a
domain-level task may load and the maximum page weight an inline-frame task
may pull into a hidden iframe.  This ablation sweeps both and reports how the
fraction of measurable domains / URLs responds — the trade-off between
measurement reach and client-side overhead the paper discusses.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.web.resources import KILOBYTE

IMAGE_LIMITS = (512, KILOBYTE, 5 * KILOBYTE, 50 * KILOBYTE)
PAGE_LIMITS = (50 * KILOBYTE, 100 * KILOBYTE, 500 * KILOBYTE, 2048 * KILOBYTE)


def sweep(report):
    image_rows = [
        (limit, report.fraction_domains_measurable(limit)) for limit in IMAGE_LIMITS
    ]
    page_rows = [
        (limit, report.fraction_pages_measurable(limit)) for limit in PAGE_LIMITS
    ]
    return image_rows, page_rows


class TestSizeLimitAblation:
    def test_limit_sweep(self, benchmark, feasibility):
        image_rows, page_rows = benchmark(sweep, feasibility.report)

        print()
        print("Ablation — image-size limit vs measurable domains:")
        print(format_table(["image limit", "measurable domains"],
                           [[f"{l // 1024 or l} {'KB' if l >= 1024 else 'B'}", f"{f:.0%}"]
                            for l, f in image_rows]))
        print()
        print("Ablation — page-weight limit vs measurable URLs (inline frame):")
        print(format_table(["page limit (KB)", "measurable URLs"],
                           [[l // 1024, f"{f:.0%}"] for l, f in page_rows]))

        # Reach grows monotonically with both limits.
        image_fractions = [f for _, f in image_rows]
        page_fractions = [f for _, f in page_rows]
        assert image_fractions == sorted(image_fractions)
        assert page_fractions == sorted(page_fractions)
        # The paper's operating points: >50% of domains at 1 KB images, <10%
        # of URLs at 100 KB pages.
        assert dict(image_rows)[KILOBYTE] >= 0.50
        assert dict(page_rows)[100 * KILOBYTE] < 0.10
        # Relaxing the page limit dramatically widens URL-level reach, which
        # is exactly the overhead-vs-coverage trade-off §6.1 highlights.
        assert dict(page_rows)[2048 * KILOBYTE] >= 3 * dict(page_rows)[100 * KILOBYTE]
