"""Day-bucketed aggregation + online CUSUM vs. the per-day row path.

The longitudinal pipeline's hot loop is turning a whole campaign corpus into
per-(domain, country, day) success-rate series and scanning them for change
points.  The row path walks every measurement updating per-day dicts and
then runs the scalar per-cell CUSUM walk; the columnar path is one streamed
``grouped_success_counts(store, by_day=True)`` bincount pass plus the
vectorized day-column scan.  This benchmark pins the claim at ~100k
measurements across 35 simulated days: aggregation + detection on the store
path must be at least 5× faster while producing identical events.

Results are recorded in ``benchmarks/BENCH_longitudinal.json``; on hosts
with fewer than 4 CPUs the speedup assertion is skipped loudly (matching
the shard benchmark's convention) after the JSON is written and the
equivalence checks have run.
"""

from __future__ import annotations

import gc
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.inference import CusumChangePointDetector
from repro.core.query import grouped_success_counts
from repro.core.store import DayGroupedCounts, DictColumn, MeasurementStore
from repro.core.tasks import TaskOutcome, TaskType
from repro.web.url import URL

ROWS = 100_000
DAYS = 35
N_DOMAINS = 12
N_COUNTRIES = 12
CHANGE_DAY = 16
RECOVERY_DAY = 28
MIN_SPEEDUP = 5.0
MIN_CPUS = 4
REPORT_PATH = Path(__file__).parent / "BENCH_longitudinal.json"

DOMAINS = tuple(f"domain-{i:02d}.org" for i in range(N_DOMAINS))
COUNTRIES = tuple(f"C{i:02d}" for i in range(N_COUNTRIES))


def build_store(rng: np.random.Generator) -> MeasurementStore:
    """~100k synthetic measurements with scripted mid-campaign censorship."""
    domain = rng.integers(0, N_DOMAINS, ROWS)
    country = rng.integers(0, N_COUNTRIES, ROWS)
    day = rng.integers(0, DAYS, ROWS)
    censored_cell = (domain % 3 == 0) & (country % 4 == 1)
    censored = censored_cell & (day >= CHANGE_DAY) & (day < RECOVERY_DAY)
    success = rng.random(ROWS) < np.where(censored, 0.06, 0.92)
    outcomes = (TaskOutcome.SUCCESS, TaskOutcome.FAILURE)
    identities = np.asarray(
        [f"10.{i // 256}.{i % 256}.9" for i in range(512)], dtype=np.str_
    )
    constant = np.zeros(ROWS, dtype=np.int64)
    store = MeasurementStore()
    store.append_columns(
        measurement_id=np.char.add("m", np.arange(ROWS).astype(np.str_)),
        task_type=DictColumn((TaskType.IMAGE,), constant),
        target_url=DictColumn(
            tuple(URL.parse(f"http://{d}/favicon.ico") for d in DOMAINS), domain
        ),
        target_domain=DictColumn(DOMAINS, domain),
        outcome=DictColumn(outcomes, (~success).astype(np.int64)),
        elapsed_ms=rng.uniform(10.0, 400.0, ROWS),
        client_ip=DictColumn(identities, rng.integers(0, len(identities), ROWS)),
        country_code=DictColumn(COUNTRIES, country),
        isp=DictColumn(("bench-isp",), constant),
        browser_family=DictColumn(("chrome",), constant),
        origin_domain=DictColumn((None,), constant),
        day=day,
    )
    return store


def detector() -> CusumChangePointDetector:
    return CusumChangePointDetector(min_daily_measurements=5)


# Collector passes are paused inside the timed regions, matching the other
# benchmarks: a gen-2 GC triggered by the row path's 100k dataclasses landing
# inside the short columnar region would swamp its runtime.


def run_columnar(store: MeasurementStore):
    """Streamed by-day bincounts + the vectorized day-column CUSUM scan."""
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    day_counts = grouped_success_counts(store, by_day=True)
    t1 = time.perf_counter()
    events = detector().detect_events(day_counts)
    t2 = time.perf_counter()
    gc.enable()
    return {"aggregate": t1 - t0, "detect": t2 - t1, "total": t2 - t0,
            "day_counts": day_counts, "events": events}


def run_row_path(rows):
    """Per-row dict bucketing + the scalar per-cell reference walk."""
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    totals: dict = {}
    successes: dict = {}
    for m in rows:
        if m.is_automated or m.outcome is TaskOutcome.INCONCLUSIVE:
            continue
        key = (m.target_domain, m.country_code, m.day)
        totals[key] = totals.get(key, 0) + 1
        if m.succeeded:
            successes[key] = successes.get(key, 0) + 1
    counts = {key: (n, successes.get(key, 0)) for key, n in totals.items()}
    day_counts = DayGroupedCounts.from_dict(counts, n_days=DAYS)
    t1 = time.perf_counter()
    events = detector().detect_events_reference(day_counts)
    t2 = time.perf_counter()
    gc.enable()
    return {"aggregate": t1 - t0, "detect": t2 - t1, "total": t2 - t0,
            "day_counts": day_counts, "events": events}


class TestLongitudinalThroughput:
    def test_day_bucketed_aggregation_and_cusum_at_least_5x_faster(
        self, bench_report_writer
    ):
        # Fresh stores per columnar run: the query kernel caches per store,
        # and a cache hit would benchmark the cache, not the reduction.
        stores = [build_store(np.random.default_rng(2015)) for _ in range(3)]
        rows = stores[0].rows()  # materialized once, outside both timings
        columnar_runs = [run_columnar(store) for store in stores]
        row_runs = [run_row_path(rows) for _ in range(2)]
        columnar = min(columnar_runs, key=lambda r: r["total"])
        row = min(row_runs, key=lambda r: r["total"])

        # Identical cells and identical events on both paths.
        assert columnar["day_counts"].as_dict() == row["day_counts"].as_dict()
        assert columnar["events"] == row["events"]
        onsets = [e for e in columnar["events"] if e.kind == "onset"]
        assert onsets and all(e.change_day == CHANGE_DAY for e in onsets)

        report = {
            "rows": ROWS,
            "days": DAYS,
            "cells": len(columnar["day_counts"]),
            "events": len(columnar["events"]),
            "row_seconds": {k: round(row[k], 4) for k in ("aggregate", "detect", "total")},
            "columnar_seconds": {
                k: round(columnar[k], 4) for k in ("aggregate", "detect", "total")
            },
            "row_rows_per_second": round(ROWS / row["total"], 1),
            "columnar_rows_per_second": round(ROWS / columnar["total"], 1),
            "speedup": round(row["total"] / columnar["total"], 2),
        }
        bench_report_writer(
            REPORT_PATH, report, rows=ROWS, seconds=columnar["total"]
        )

        print()
        print("Longitudinal pipeline throughput (day bucketing + CUSUM, ~100k rows):")
        for key, value in report.items():
            print(f"  {key:24s} {value}")

        cpu_count = os.cpu_count() or 1
        if cpu_count < MIN_CPUS:
            pytest.skip(
                f"speedup gate needs >= {MIN_CPUS} CPUs for stable wall-clock "
                f"ratios, host has {cpu_count}; measured {report['speedup']}x "
                f"and recorded it in {REPORT_PATH.name} — equivalence checks "
                f"above did run."
            )
        assert report["speedup"] >= MIN_SPEEDUP, report
