"""Benchmark — sharded multi-process campaign vs single-process batch.

``mode="sharded"`` exists to scale a campaign with the machine: N worker
processes execute disjoint sets of planning blocks and the parent merges
their spilled segments by adoption.  This benchmark runs the §7 scale
configuration at 50k visits both ways, pins that the merged campaign is
identical to the single-process one, and — on hosts with enough cores to
make the claim meaningful — asserts the wall-clock speedup.

Results are recorded in ``benchmarks/BENCH_shard.json`` so regressions show
up as a diff, not just a failed assertion.  (The ≥2x assertion is gated on
``os.cpu_count() >= NUM_SHARDS``: with fewer cores than workers the ratio
measures the scheduler, not the subsystem.  On such hosts the test still
runs, records the JSON, and pins batch/sharded equality — then *skips* the
speedup gate explicitly so CI logs show why it didn't apply.)
"""

from __future__ import annotations

import gc
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.population.world import World, WorldConfig

VISITS = 50_000
NUM_SHARDS = 4
MIN_SPEEDUP = 2.0
REPORT_PATH = Path(__file__).parent / "BENCH_shard.json"


def build_deployment(mode: str) -> EncoreDeployment:
    world = World(WorldConfig(seed=2018))
    config = CampaignConfig(
        visits=VISITS,
        include_testbed=True,
        testbed_fraction=0.3,
        favicons_only=True,
        seed=2018,
        mode=mode,
    )
    return EncoreDeployment(world, config)


def timed_batch() -> tuple[float, int]:
    deployment = build_deployment("batch")
    gc.collect()
    started = time.perf_counter()
    result = deployment.run_campaign()
    return time.perf_counter() - started, len(result.collection)


def timed_sharded() -> tuple[float, int]:
    deployment = build_deployment("sharded")
    spill_dir = tempfile.mkdtemp(prefix="bench-shard-")
    gc.collect()
    started = time.perf_counter()
    result = deployment.run_campaign(
        num_shards=NUM_SHARDS, worker_spill_dir=spill_dir
    )
    return time.perf_counter() - started, len(result.collection)


class TestShardThroughput:
    def test_sharded_campaign_speedup(self, bench_report_writer):
        cpu_count = os.cpu_count() or 1
        batch_runs = [timed_batch() for _ in range(2)]
        batch_s = min(elapsed for elapsed, _ in batch_runs)
        batch_measurements = batch_runs[0][1]
        sharded_runs = [timed_sharded() for _ in range(2)]
        sharded_s = min(elapsed for elapsed, _ in sharded_runs)
        sharded_measurements = sharded_runs[0][1]

        speedup_asserted = cpu_count >= NUM_SHARDS
        report = {
            "visits": VISITS,
            "num_shards": NUM_SHARDS,
            "cpu_count": cpu_count,
            "batch_seconds": round(batch_s, 3),
            "sharded_seconds": round(sharded_s, 3),
            "batch_visits_per_second": round(VISITS / batch_s, 1),
            "sharded_visits_per_second": round(VISITS / sharded_s, 1),
            "speedup": round(batch_s / sharded_s, 2),
            "min_speedup": MIN_SPEEDUP,
            "speedup_asserted": speedup_asserted,
            "batch_measurements": batch_measurements,
            "sharded_measurements": sharded_measurements,
        }
        bench_report_writer(
            REPORT_PATH, report, rows=sharded_measurements, seconds=sharded_s
        )

        print()
        print(f"Sharded campaign throughput (50k-visit §7 scale, {NUM_SHARDS} workers):")
        for key, value in report.items():
            print(f"  {key:26s} {value}")

        # Sharding must never change the campaign (the equivalence suite
        # pins row-level identity in depth).
        assert sharded_measurements == batch_measurements
        if not speedup_asserted:
            pytest.skip(
                f"speedup gate needs >= {NUM_SHARDS} cores, host has "
                f"{cpu_count}; measured {report['speedup']}x and recorded it "
                f"in {REPORT_PATH.name} (equality of batch vs sharded "
                f"campaigns was still asserted)"
            )
        assert report["speedup"] >= MIN_SPEEDUP, report
