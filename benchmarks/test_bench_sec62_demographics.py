"""§6.2 — who performs Encore measurements?

Paper numbers for one month of analytics on an academic home page:
1,171 visits; most visitors from the US but more than 10 users from each of
10 other countries; 16% of visitors in countries with well-known filtering
policies; 999 visits attempted a measurement task; 45% of visitors stayed
longer than 10 seconds and 35% longer than a minute.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.population.analytics import VisitGenerator


def generate_month(seed: int = 62):
    return VisitGenerator(rng=np.random.default_rng(seed)).generate_month()


class TestSection62:
    def test_origin_site_demographics(self, benchmark):
        month = benchmark(generate_month)
        summary = month.summary()

        print()
        print("§6.2 — one month of visits to an academic origin page:")
        print(format_table(
            ["metric", "paper", "reproduced"],
            [
                ["total visits", 1171, int(summary["total_visits"])],
                ["visits attempting a task", 999, int(summary["task_attempts"])],
                ["countries with 10+ visits", ">= 10", int(summary["countries_with_10_plus_visits"])],
                ["share from filtering countries", "16%",
                 f"{summary['filtering_country_fraction']:.0%}"],
                ["visitors staying > 10 s", "45%", f"{summary['dwell_over_10s_fraction']:.0%}"],
                ["visitors staying > 60 s", "35%", f"{summary['dwell_over_60s_fraction']:.0%}"],
            ],
        ))

        assert summary["total_visits"] == 1171
        # The vast majority of visits attempt a task (paper: 999 of 1,171).
        assert 0.75 * 1171 <= summary["task_attempts"] <= 0.95 * 1171
        assert summary["countries_with_10_plus_visits"] >= 10
        assert 0.08 <= summary["filtering_country_fraction"] <= 0.30
        assert 0.35 <= summary["dwell_over_10s_fraction"] <= 0.60
        assert 0.25 <= summary["dwell_over_60s_fraction"] <= 0.45

    def test_us_dominates_but_does_not_monopolise(self):
        month = generate_month(seed=63)
        counts = month.visits_by_country
        us_share = counts["US"] / month.total_visits
        assert counts.most_common(1)[0][0] == "US"
        assert 0.25 <= us_share <= 0.55

    def test_long_dwellers_can_run_multiple_tasks(self):
        month = generate_month(seed=64)
        multi = sum(1 for v in month.visits if v.client.can_run_multiple_tasks)
        assert multi / month.total_visits >= 0.20
