"""Figure 4 — CDF of images per domain, by image-size class.

Paper claims: 70% of the 178 domains embed at least one image; over 60% of
domains host images deliverable in a single packet (<= ~1 KB); a third of
domains host hundreds of such small images.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.analysis.stats import Ecdf, fraction_at_least
from repro.web.resources import KILOBYTE

CDF_POINTS = [0, 1, 5, 10, 50, 100, 250, 500, 1000, 2000]


def build_series(report):
    """The three CDF series Fig. 4 plots."""
    series = {}
    for label, limit in (("<= 1 KB", KILOBYTE), ("<= 5 KB", 5 * KILOBYTE), ("all", None)):
        counts = report.images_per_domain(limit)
        series[label] = Ecdf(counts).series(CDF_POINTS)
    return series


class TestFigure4:
    def test_images_per_domain_cdf(self, benchmark, feasibility):
        report = feasibility.report
        series = benchmark(build_series, report)

        rows = [
            [str(point)] + [f"{series[label][index][1]:.2f}" for label in ("<= 1 KB", "<= 5 KB", "all")]
            for index, point in enumerate(CDF_POINTS)
        ]
        print()
        print("Figure 4 — CDF of images per domain (178 domains):")
        print(format_table(["images", "<= 1 KB", "<= 5 KB", "all"], rows))

        all_counts = report.images_per_domain()
        small_counts = report.images_per_domain(KILOBYTE)
        # ~70% of domains embed at least one image.
        frac_with_image = fraction_at_least(all_counts, 1)
        assert 0.60 <= frac_with_image <= 0.85
        # Over 60% of domains host single-packet-sized images.
        assert fraction_at_least(small_counts, 1) >= 0.60
        # Roughly a third of domains host hundreds of such images.
        frac_hundreds = fraction_at_least(small_counts, 100)
        assert 0.20 <= frac_hundreds <= 0.50

    def test_size_class_ordering(self, feasibility):
        """Smaller size classes can never contain more images than larger ones."""
        report = feasibility.report
        for domain in report.domains:
            assert domain.image_count_under_1kb <= domain.image_count_under_5kb
            assert domain.image_count_under_5kb <= domain.image_count_total

    def test_crawl_covers_the_full_online_list(self, feasibility):
        assert len(feasibility.report.domains) == 178
