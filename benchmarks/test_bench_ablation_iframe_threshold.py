"""Ablation — the inline-frame task's cache-timing threshold.

The paper infers "page loaded" when the probe image renders within a few tens
of milliseconds and observes a ≥50 ms gap to uncached loads (Fig. 7).  This
ablation sweeps the threshold and measures classification accuracy against
ground truth (page genuinely loaded vs filtered), locating the plateau the
50 ms default sits on.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy
from repro.core.tasks import MeasurementTask, TaskType, execute_task
from repro.population.world import World, WorldConfig

THRESHOLDS_MS = (5.0, 15.0, 50.0, 150.0, 500.0, 2000.0)
SAMPLES = 400


def collect_probe_samples(world: World, samples: int = SAMPLES):
    """Run iframe tasks against an unfiltered and a filtered copy of a page."""
    site = world.universe.site("facebook.com")
    # Use a deep article page (not "/") so the URL-prefix block rule below
    # covers only this page and not the probe image, and pick as the probe a
    # cacheable image that this page actually embeds — the same choice the
    # Task Generator makes (§5.2).
    page_url, probe_url = None, None
    for candidate in site.page_urls[1:]:
        page = site.lookup(candidate)
        for embedded in page.embedded_urls:
            resource = site.lookup(embedded)
            if resource is not None and resource.is_image and resource.cacheable:
                page_url, probe_url = candidate, embedded
                break
        if page_url is not None:
            break
    assert page_url is not None, "no article page with a cacheable image found"
    task = MeasurementTask.new(TaskType.INLINE_FRAME, page_url, probe_image_url=probe_url)
    # Filter only the page itself (a URL-prefix rule), leaving the probe
    # image reachable — the single-page filtering scenario the inline-frame
    # task exists for (§4.3.2).  The probe then loads uncached rather than
    # erroring, which is exactly when the threshold choice matters.
    blocker = Censor("ablation", BlacklistPolicy().block_prefix(str(page_url)),
                     FilteringMechanism.HTTP_DROP)
    observations = []  # (probe_time_ms or None, truly_filtered)
    for index in range(samples):
        client = world.sample_client("US")
        browser = world.make_browser(client)
        filtered = index % 2 == 1
        if filtered:
            browser.interceptors = (blocker,)
        result = execute_task(task, browser)
        observations.append((result.probe_time_ms, result.outcome, filtered))
    return observations


def accuracy_by_threshold(observations):
    rows = []
    for threshold in THRESHOLDS_MS:
        correct = 0
        for probe_time, _, truly_filtered in observations:
            inferred_loaded = probe_time is not None and probe_time <= threshold
            if inferred_loaded == (not truly_filtered):
                correct += 1
        rows.append((threshold, correct / len(observations)))
    return rows


class TestIframeThresholdAblation:
    def test_threshold_sweep(self, benchmark):
        world = World(WorldConfig(seed=81, target_list_total=16, target_list_online=12,
                                  origin_site_count=2))
        observations = collect_probe_samples(world)
        rows = benchmark(accuracy_by_threshold, observations)

        print()
        print("Ablation — inline-frame cache-timing threshold:")
        print(format_table(["threshold (ms)", "classification accuracy"],
                           [[f"{t:.0f}", f"{a:.2f}"] for t, a in rows]))

        accuracy = dict(rows)
        # The paper's 50 ms threshold sits on a high-accuracy plateau.
        assert accuracy[50.0] >= 0.90
        assert accuracy[15.0] >= 0.85
        # A huge threshold misclassifies filtered pages as loaded (uncached
        # probes still finish within it), so accuracy collapses toward 50%.
        assert accuracy[2000.0] < accuracy[50.0]
        assert accuracy[2000.0] <= 0.75
