"""Ablation — result poisoning and the reputation defence (§8).

The paper notes attackers could poison Encore's conclusions with fabricated
submissions and that reputation systems could help but never fully solve the
problem.  This ablation quantifies the statement: sweep the attacker's budget
(forged submissions and Sybil identities) and report whether a fabricated
detection appears with and without the reputation filter, and whether the
real detections survive filtering.

The sweep runs entirely on the columnar store path: each budget's forged
corpus is sealed into spilled segments (fanned out across worker processes),
merged with the honest campaign store by zero-copy segment adoption, and
scored without materializing a single ``Measurement`` row.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.inference import BinomialFilteringDetector

EXPECTED = {
    ("youtube.com", "PK"), ("youtube.com", "IR"), ("youtube.com", "CN"),
    ("twitter.com", "CN"), ("twitter.com", "IR"),
    ("facebook.com", "CN"), ("facebook.com", "IR"),
}

ATTACK_BUDGETS = [
    (100, 4),
    (400, 8),
    (1600, 32),
]


def sweep(detection_result):
    return detection_result.adversary_sweep(
        "facebook.com", "DE", ATTACK_BUDGETS,
        detector=BinomialFilteringDetector(min_measurements=10),
        executor="process",
        seed=2015,
    )


class TestPoisoningAblation:
    def test_attack_budget_sweep(self, benchmark, detection_result):
        cells = benchmark.pedantic(sweep, args=(detection_result,),
                                   rounds=1, iterations=1)

        print()
        print("Ablation — poisoning attack budget vs reputation defence:")
        print(format_table(
            ["forged submissions", "Sybil identities", "naive detector fooled",
             "defended detector fooled", "real detections survive"],
            [[c.submissions, c.identities, c.naive_fooled,
              c.defended_fooled, c.detections_survive(EXPECTED)] for c in cells],
        ))

        # Even a modest flood fools the undefended detector.
        assert any(c.naive_fooled for c in cells)
        # The reputation filter stops the small and medium attacks and never
        # destroys the real detections.
        small, medium, large = cells
        assert not small.defended_fooled
        assert not medium.defended_fooled
        assert all(c.detections_survive(EXPECTED) for c in cells)
        # The paper's caveat holds too: a large enough Sybil population
        # cannot be fully prevented — record whether it slips through rather
        # than asserting either way, but it must at least cost the attacker
        # an order of magnitude more resources than the naive case.
        assert large.submissions >= 10 * small.submissions
