"""Ablation — result poisoning and the reputation defence (§8).

The paper notes attackers could poison Encore's conclusions with fabricated
submissions and that reputation systems could help but never fully solve the
problem.  This ablation quantifies the statement: sweep the attacker's budget
(forged submissions and Sybil identities) and report whether a fabricated
detection appears with and without the reputation filter, and whether the
real detections survive filtering.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.inference import BinomialFilteringDetector
from repro.core.robustness import PoisoningAttacker, PoisoningCampaign, ReputationFilter

EXPECTED = {
    ("youtube.com", "PK"), ("youtube.com", "IR"), ("youtube.com", "CN"),
    ("twitter.com", "CN"), ("twitter.com", "IR"),
    ("facebook.com", "CN"), ("facebook.com", "IR"),
}

ATTACK_BUDGETS = [
    (100, 4),
    (400, 8),
    (1600, 32),
]


def sweep(measurements):
    detector = BinomialFilteringDetector(min_measurements=10)
    reputation = ReputationFilter()
    rows = []
    for submissions, identities in ATTACK_BUDGETS:
        attacker = PoisoningAttacker(rng=submissions + identities)
        forged = attacker.forge_measurements(
            PoisoningCampaign("facebook.com", "DE", fabricate_blocking=True,
                              submissions=submissions, client_identities=identities)
        )
        poisoned = list(measurements) + forged
        naive = detector.detect_from_measurements(poisoned).detected_pairs()
        cleaned = reputation.filtered_measurements(poisoned)
        defended = detector.detect_from_measurements(cleaned).detected_pairs()
        rows.append({
            "submissions": submissions,
            "identities": identities,
            "naive_fooled": ("facebook.com", "DE") in naive,
            "defended_fooled": ("facebook.com", "DE") in defended,
            "real_detections_survive": EXPECTED <= defended,
        })
    return rows


class TestPoisoningAblation:
    def test_attack_budget_sweep(self, benchmark, detection_result):
        rows = benchmark.pedantic(sweep, args=(detection_result.measurements,),
                                  rounds=1, iterations=1)

        print()
        print("Ablation — poisoning attack budget vs reputation defence:")
        print(format_table(
            ["forged submissions", "Sybil identities", "naive detector fooled",
             "defended detector fooled", "real detections survive"],
            [[r["submissions"], r["identities"], r["naive_fooled"],
              r["defended_fooled"], r["real_detections_survive"]] for r in rows],
        ))

        # Even a modest flood fools the undefended detector.
        assert any(r["naive_fooled"] for r in rows)
        # The reputation filter stops the small and medium attacks and never
        # destroys the real detections.
        small, medium, large = rows
        assert not small["defended_fooled"]
        assert not medium["defended_fooled"]
        assert all(r["real_detections_survive"] for r in rows)
        # The paper's caveat holds too: a large enough Sybil population
        # cannot be fully prevented — record whether it slips through rather
        # than asserting either way, but it must at least cost the attacker
        # an order of magnitude more resources than the naive case.
        assert large["submissions"] >= 10 * small["submissions"]
