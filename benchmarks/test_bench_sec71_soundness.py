"""§7.1 — are measurement tasks sound?

The paper directed ~30% of clients at a testbed emulating seven varieties of
DNS, IP, and HTTP filtering (plus unfiltered controls) and verified that the
explicit-feedback task types (image, style sheet, script) reported filtering
when and only when it existed, with few false positives — for example, ~5%
false positives for images from clients in India, whose connectivity is
notoriously unreliable.
"""

from __future__ import annotations

from repro.analysis.reports import build_soundness_report, format_table
from repro.core.tasks import TaskOutcome, TaskType


def soundness_rows(result, testbed):
    report = build_soundness_report(result.measurements, testbed)
    return report, sorted(report.rows(), key=lambda r: r["task_type"])


class TestSection71:
    def test_task_type_soundness(self, benchmark, soundness_result, soundness_deployment):
        report, rows = benchmark(soundness_rows, soundness_result, soundness_deployment.testbed)

        print()
        print("§7.1 — soundness of measurement tasks against the testbed:")
        print(format_table(
            ["task type", "n", "detection rate", "false positive rate", "false negative rate"],
            [[r["task_type"], r["measurements"], r["detection_rate"],
              r["false_positive_rate"], r["false_negative_rate"]] for r in rows],
        ))

        assert report.total_measurements > 1500
        image = report.for_type(TaskType.IMAGE)
        sheet = report.for_type(TaskType.STYLE_SHEET)
        script = report.for_type(TaskType.SCRIPT)
        iframe = report.for_type(TaskType.INLINE_FRAME)

        # Explicit-feedback tasks: low false-positive rates (paper: "few").
        assert image.false_positive_rate <= 0.08
        assert sheet.false_positive_rate <= 0.08
        assert script.false_positive_rate <= 0.08
        # They reliably catch the explicit blocking mechanisms; the only
        # misses come from mechanisms that complete the HTTP exchange
        # (throttling for all types, block pages for the script type).
        assert image.detection_rate >= 0.75
        assert sheet.detection_rate >= 0.75
        assert script.detection_rate < image.detection_rate
        # Timing-based inline frames are noisier but still broadly sound.
        assert iframe.detection_rate >= 0.70
        assert iframe.false_positive_rate <= 0.15

    def test_india_false_positive_rate_is_elevated_but_small(self, soundness_result,
                                                             soundness_deployment):
        """Unreliable networks inflate false positives (paper: ~5% in India)."""
        testbed = soundness_deployment.testbed
        def image_fp_rate(country):
            control = [
                m for m in soundness_result.testbed_measurements()
                if m.task_type is TaskType.IMAGE
                and not testbed.expected_filtered(m.target_url.host)
                and not m.is_automated and m.outcome is not TaskOutcome.INCONCLUSIVE
                and m.country_code == country
            ]
            if not control:
                return None, 0
            return sum(1 for m in control if m.failed) / len(control), len(control)

        india_rate, india_n = image_fp_rate("IN")
        us_rate, us_n = image_fp_rate("US")
        print()
        print(f"Image false positives: India {india_rate} (n={india_n}), US {us_rate} (n={us_n})")
        assert us_n > 0 and us_rate <= 0.05
        if india_n >= 20:
            assert india_rate <= 0.25
            assert india_rate >= us_rate

    def test_control_measurement_volume(self, soundness_result):
        """The paper collected 8,573 explicit-feedback control measurements;
        the scaled-down benchmark campaign still yields a substantial pool."""
        explicit = [
            m for m in soundness_result.testbed_measurements()
            if m.task_type is not TaskType.INLINE_FRAME
        ]
        assert len(explicit) > 1000
