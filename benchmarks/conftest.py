"""Shared session fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures.  The
expensive inputs — a fully populated world, the §6.1 feasibility crawl, and
the §7 measurement campaigns — are built once per session here and shared;
the ``benchmark`` fixture then times the analysis stage that actually
produces each table or figure.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs.metrics import get_registry
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.targets import TargetList
from repro.core.task_generation import TaskGenerationLimits, TaskGenerationPipeline
from repro.population.world import World, WorldConfig

#: Scale factor relative to the paper's seven-month campaign (141,626
#: measurements).  The benchmarks run roughly a fifth of that volume so the
#: whole harness finishes in a few minutes; all reported comparisons are
#: shape- and threshold-based, not absolute counts.
CAMPAIGN_VISITS = 25_000
DETECTION_VISITS = 15_000
SOUNDNESS_VISITS = 10_000

#: Benchmark modules light enough to serve as smoke checks; every other
#: benchmark builds full worlds / campaigns and is marked ``slow`` so
#: ``pytest -m "not slow"`` stays fast.  (``test_bench_store.py`` marks its
#: own 100k case ``slow`` explicitly and keeps a small smoke case unmarked.)
SMOKE_MODULES = ("test_bench_runner_throughput.py", "test_bench_store.py")

_BENCH_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    for item in items:
        path = Path(str(getattr(item, "fspath", "")))
        if path.parent == _BENCH_DIR and path.name not in SMOKE_MODULES:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def full_world() -> World:
    """A world containing all 178 online high-value domains."""
    return World(WorldConfig(seed=2015))


@pytest.fixture(scope="session")
def feasibility(full_world: World):
    """The §6.1 crawl: expand, fetch, and analyse the full target list."""
    pipeline = TaskGenerationPipeline(
        full_world.search, full_world.headless, TaskGenerationLimits()
    )
    return pipeline.run(TargetList.high_value().entries)


@pytest.fixture(scope="session")
def detection_deployment() -> EncoreDeployment:
    return EncoreDeployment.detection_experiment(seed=2015, visits=DETECTION_VISITS)


@pytest.fixture(scope="session")
def detection_result(detection_deployment: EncoreDeployment):
    return detection_deployment.run_campaign()


@pytest.fixture(scope="session")
def soundness_deployment() -> EncoreDeployment:
    return EncoreDeployment.soundness_experiment(seed=2016, visits=SOUNDNESS_VISITS)


@pytest.fixture(scope="session")
def soundness_result(soundness_deployment: EncoreDeployment):
    return soundness_deployment.run_campaign()


@pytest.fixture(scope="session")
def scale_deployment() -> EncoreDeployment:
    """The full §7 campaign configuration (targets + testbed split)."""
    world = World(WorldConfig(seed=2017))
    config = CampaignConfig(
        visits=CAMPAIGN_VISITS,
        include_testbed=True,
        testbed_fraction=0.3,
        favicons_only=True,
        seed=2017,
    )
    return EncoreDeployment(world, config)


@pytest.fixture(scope="session")
def scale_result(scale_deployment: EncoreDeployment):
    return scale_deployment.run_campaign()


@pytest.fixture(scope="session")
def bench_rng() -> np.random.Generator:
    return np.random.default_rng(777)


@pytest.fixture()
def bench_report_writer():
    """Write a ``BENCH_*.json``, folding in MetricsRegistry telemetry.

    Every benchmark report gains a ``telemetry`` section recording the
    process's peak RSS and the rows-per-second achieved by the timed run,
    so the scheduled regression lane can trend memory alongside the
    speedup ratios (``check_regression.py`` warns — never fails — on
    memory growth).  Reading the registry here is sanctioned: benchmarks
    sit outside ``src/repro/``, where the telemetry-hygiene rule bans
    read-backs.
    """
    registry = get_registry()
    rows_before = registry.counter("store.rows_ingested").value

    def write(path: Path, report: dict, *, rows: int | None = None,
              seconds: float | None = None) -> dict:
        registry.update_peak_rss()
        snapshot = registry.snapshot()
        if rows is None:
            rows = snapshot["counters"].get("store.rows_ingested", 0) - rows_before
        telemetry = {
            "peak_rss_kb": snapshot["gauges"].get("process.peak_rss_kb", 0.0),
            "rows": int(rows),
        }
        if seconds and seconds > 0:
            telemetry["rows_per_sec"] = round(rows / seconds, 1)
        report["telemetry"] = telemetry
        path.write_text(json.dumps(report, indent=2) + "\n")
        return report

    return write
