"""Columnar forge + reputation filtering vs. the row-at-a-time §8 path.

The robustness pipeline was the last subsystem running on scalar row lists:
the attacker built one frozen ``Measurement`` per forged submission and the
reputation filter walked them dict-by-dict.  The columnar rebuild forges a
:class:`ColumnarRecords` payload (value tables + index arrays), ingests it
into a :class:`MeasurementStore` with zero per-row Python work, and filters
with grouped reductions straight over the store's code columns.  This
benchmark pins the claim at ~100k forged rows: forge + ingest + filter on
the store path must be at least 5× faster than the row path (row-built
forgery plus the per-row reference filter walk) while producing identical
verdicts.

Results are recorded in ``benchmarks/BENCH_robustness.json`` so regressions
show up as a diff, not just a failed assertion.
"""

from __future__ import annotations

import gc
import time
from pathlib import Path

import numpy as np

from repro.core.robustness import PoisoningAttacker, PoisoningCampaign, ReputationFilter
from repro.core.store import MeasurementStore

FORGED_ROWS = 100_000
IDENTITIES = 64
MIN_SPEEDUP = 5.0
REPORT_PATH = Path(__file__).parent / "BENCH_robustness.json"


def campaign() -> PoisoningCampaign:
    return PoisoningCampaign(
        "facebook.com", "DE", fabricate_blocking=True,
        submissions=FORGED_ROWS, client_identities=IDENTITIES,
    )


# Collector passes are paused inside the timed regions, matching the store
# benchmark: a gen-2 GC triggered by the row path's 100k dataclasses landing
# inside the short columnar pipeline would swamp its runtime.


def run_row_path():
    """Forge as rows, filter with the per-row reference walk."""
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    forged = PoisoningAttacker(rng=2015).forge_measurements(campaign())
    t1 = time.perf_counter()
    report = ReputationFilter().apply_reference(forged)
    t2 = time.perf_counter()
    gc.enable()
    return {"forge": t1 - t0, "filter": t2 - t1, "total": t2 - t0,
            "kept": len(report.kept),
            "dropped_rate_limited": report.dropped_rate_limited,
            "dropped_low_reputation": report.dropped_low_reputation}


def run_columnar_path():
    """Forge as columns, ingest into a store, filter on the store."""
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    columns = PoisoningAttacker(rng=2015).forge_columns(campaign())
    store = MeasurementStore()
    columns.append_to(store)
    t1 = time.perf_counter()
    verdict = ReputationFilter().apply_store(store)
    t2 = time.perf_counter()
    gc.enable()
    return {"forge": t1 - t0, "filter": t2 - t1, "total": t2 - t0,
            "kept": int(len(verdict.kept_indices)),
            "dropped_rate_limited": verdict.dropped_rate_limited,
            "dropped_low_reputation": verdict.dropped_low_reputation,
            "store": store}


class TestRobustnessThroughput:
    def test_columnar_forge_and_filter_is_at_least_5x_faster_at_100k(
        self, bench_report_writer
    ):
        # Best-of-N on both sides, columnar runs first: the row path leaves
        # 100k dataclasses behind, and the resulting allocator pressure
        # measurably slows the short columnar runs if they go second.
        columnar_runs = [run_columnar_path() for _ in range(3)]
        row_runs = [run_row_path() for _ in range(2)]
        columnar = min(columnar_runs, key=lambda r: r["total"])
        row = min(row_runs, key=lambda r: r["total"])

        # Identical corpora and identical verdicts on both paths.
        store = columnar.pop("store")
        reference = PoisoningAttacker(rng=2015).forge_measurements(campaign())
        sample = np.linspace(0, FORGED_ROWS - 1, num=25, dtype=np.int64)
        assert store.rows(sample) == [reference[i] for i in sample.tolist()]
        for key in ("kept", "dropped_rate_limited", "dropped_low_reputation"):
            assert columnar[key] == row[key], key

        report = {
            "forged_rows": FORGED_ROWS,
            "identities": IDENTITIES,
            "row_seconds": {k: round(row[k], 4) for k in ("forge", "filter", "total")},
            "columnar_seconds": {
                k: round(columnar[k], 4) for k in ("forge", "filter", "total")
            },
            "row_rows_per_second": round(FORGED_ROWS / row["total"], 1),
            "columnar_rows_per_second": round(FORGED_ROWS / columnar["total"], 1),
            "speedup": round(row["total"] / columnar["total"], 2),
            "kept": columnar["kept"],
            "dropped_rate_limited": columnar["dropped_rate_limited"],
        }
        bench_report_writer(
            REPORT_PATH, report, rows=FORGED_ROWS, seconds=columnar["total"]
        )

        print()
        print("Robustness pipeline throughput (forge + ingest + filter, ~100k forged rows):")
        for key, value in report.items():
            print(f"  {key:26s} {value}")
        assert report["speedup"] >= MIN_SPEEDUP, report
