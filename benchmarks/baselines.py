"""Baseline loading shared by the benchmark and quality trend gates.

Both ``check_regression.py`` (BENCH speedups) and ``check_quality.py``
(QUALITY detection metrics) compare freshly written JSON reports against
the last *committed* copy of the same file.  The committed copy comes
from ``git show HEAD:benchmarks/<name>`` by default — the working-tree
copy has just been overwritten by the run under test — or from a
directory of snapshot copies taken before the run (the CI lanes snapshot
``benchmarks/`` into ``$RUNNER_TEMP`` first, so a re-run on a dirty tree
still compares against the accepted numbers).
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

BENCH_DIR = Path(__file__).parent


def committed_baseline(name: str) -> dict | None:
    """The committed copy of ``benchmarks/<name>`` at HEAD, if any."""
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:benchmarks/{name}"],
            capture_output=True, check=True, cwd=BENCH_DIR,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def snapshot_baseline(directory: Path, name: str) -> dict | None:
    """A baseline copy of ``<name>`` from a snapshot directory, if any."""
    path = directory / name
    if not path.is_file():
        return None
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError:
        return None


def load_baseline(name: str, baseline_dir: Path | None) -> dict | None:
    """Snapshot copy when a directory is given, committed copy otherwise."""
    if baseline_dir is not None:
        return snapshot_baseline(baseline_dir, name)
    return committed_baseline(name)
