"""Table 1 — measurement-task mechanisms and their applicability limits.

Regenerates the content of Table 1 empirically: for each of the four task
types, run it against resources that satisfy its constraints (expected to
give conclusive, correct feedback) and against resources that violate them
(expected to be rejected by the generator or to give no useful signal), and
report the resulting applicability matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.reports import format_table
from repro.browser.engine import Browser
from repro.browser.profiles import BrowserFamily, BrowserProfile
from repro.core.task_generation import TaskGenerationLimits, TaskGenerator
from repro.core.tasks import MeasurementTask, TaskOutcome, TaskType, execute_task
from repro.netsim.latency import LinkQuality
from repro.netsim.network import Network
from repro.web.har import HAR, HAREntry
from repro.web.resources import ContentType, KILOBYTE, Resource
from repro.web.server import WebUniverse
from repro.web.sites import Site
from repro.web.url import URL


def build_universe() -> WebUniverse:
    universe = WebUniverse()
    site = Site("table1.org")
    base = URL.parse("http://table1.org/")
    site.add(Resource(base.with_path("/favicon.ico"), ContentType.IMAGE, 600,
                      cacheable=True, cache_ttl_s=3600))
    site.add(Resource(base.with_path("/huge.png"), ContentType.IMAGE, 500 * KILOBYTE))
    site.add(Resource(base.with_path("/style.css"), ContentType.STYLESHEET, 1800,
                      cacheable=True, cache_ttl_s=3600))
    site.add(Resource(base.with_path("/empty.css"), ContentType.STYLESHEET, 0))
    site.add(Resource(base.with_path("/app.js"), ContentType.SCRIPT, 2500, nosniff=True))
    small_page = Resource(base.with_path("/small.html"), ContentType.HTML, 8 * KILOBYTE,
                          embedded_urls=(base.with_path("/favicon.ico"),))
    site.add(small_page)
    big_page = Resource(base.with_path("/big.html"), ContentType.HTML, 40 * KILOBYTE,
                        embedded_urls=(base.with_path("/huge.png"),))
    site.add(big_page)
    universe.add_site(site)
    return universe


def chrome_browser(universe: WebUniverse) -> Browser:
    return Browser(BrowserProfile.chrome(), LinkQuality(rtt_ms=60, jitter_ms=0, loss_rate=0),
                   Network(universe), np.random.default_rng(0))


def firefox_browser(universe: WebUniverse) -> Browser:
    return Browser(BrowserProfile.firefox(), LinkQuality(rtt_ms=60, jitter_ms=0, loss_rate=0),
                   Network(universe), np.random.default_rng(0))


def run_matrix() -> list[list[str]]:
    universe = build_universe()
    rows: list[list[str]] = []

    image_ok = execute_task(
        MeasurementTask.new(TaskType.IMAGE, "http://table1.org/favicon.ico"),
        chrome_browser(universe))
    rows.append(["Images", "small image", image_ok.outcome.value, "only small images"])

    sheet_ok = execute_task(
        MeasurementTask.new(TaskType.STYLE_SHEET, "http://table1.org/style.css"),
        chrome_browser(universe))
    sheet_empty = execute_task(
        MeasurementTask.new(TaskType.STYLE_SHEET, "http://table1.org/empty.css"),
        chrome_browser(universe))
    rows.append(["Style sheets", "non-empty sheet", sheet_ok.outcome.value,
                 "only non-empty style sheets"])
    rows.append(["Style sheets", "empty sheet", sheet_empty.outcome.value,
                 "(cannot be verified)"])

    iframe_ok = execute_task(
        MeasurementTask.new(TaskType.INLINE_FRAME, "http://table1.org/small.html",
                            probe_image_url="http://table1.org/favicon.ico"),
        chrome_browser(universe))
    rows.append(["Inline frames", "small page w/ cacheable image", iframe_ok.outcome.value,
                 "only small pages with cacheable images"])

    script_chrome = execute_task(
        MeasurementTask.new(TaskType.SCRIPT, "http://table1.org/app.js"),
        chrome_browser(universe))
    script_firefox = execute_task(
        MeasurementTask.new(TaskType.SCRIPT, "http://table1.org/app.js"),
        firefox_browser(universe))
    rows.append(["Scripts", "Chrome client", script_chrome.outcome.value, "only with Chrome"])
    rows.append(["Scripts", "non-Chrome client", script_firefox.outcome.value,
                 "(unsupported elsewhere)"])
    return rows


class TestTable1:
    def test_mechanism_matrix(self, benchmark):
        rows = benchmark(run_matrix)
        by_case = {(r[0], r[1]): r[2] for r in rows}
        assert by_case[("Images", "small image")] == TaskOutcome.SUCCESS.value
        assert by_case[("Style sheets", "non-empty sheet")] == TaskOutcome.SUCCESS.value
        assert by_case[("Style sheets", "empty sheet")] == TaskOutcome.FAILURE.value
        assert by_case[("Inline frames", "small page w/ cacheable image")] == TaskOutcome.SUCCESS.value
        assert by_case[("Scripts", "Chrome client")] == TaskOutcome.SUCCESS.value
        assert by_case[("Scripts", "non-Chrome client")] == TaskOutcome.INCONCLUSIVE.value
        print()
        print(format_table(["mechanism", "case", "outcome", "limitation"], rows))

    def test_generator_enforces_table1_limits(self):
        """The Task Generator rejects resources that violate Table 1's limits."""
        universe = build_universe()
        generator = TaskGenerator(TaskGenerationLimits(max_image_bytes=KILOBYTE))

        big_image_har = HAR(page_url=URL.parse("http://table1.org/big.html"))
        big_image_har.add(HAREntry(URL.parse("http://table1.org/big.html"), 200,
                                   ContentType.HTML, 40 * KILOBYTE, 10.0))
        big_image_har.add(HAREntry(URL.parse("http://table1.org/huge.png"), 200,
                                   ContentType.IMAGE, 500 * KILOBYTE, 10.0))
        tasks = generator.domain_tasks("table1.org", [big_image_har])
        assert not any(t.task_type is TaskType.IMAGE for t in tasks)

        heavy_page_har = HAR(page_url=URL.parse("http://table1.org/big.html"))
        heavy_page_har.add(HAREntry(URL.parse("http://table1.org/huge.png"), 200,
                                    ContentType.IMAGE, 500 * KILOBYTE, 10.0, cacheable=True))
        assert generator.page_tasks(heavy_page_har) == []
