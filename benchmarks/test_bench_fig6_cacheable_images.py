"""Figure 6 — CDF of cacheable images per page, by page-size class.

Paper claims: roughly 70% of all pages embed at least one cacheable image and
half of pages cache five or more; the numbers drop considerably when
restricting to pages of at most 100 KB (only ~30% of those embed a cacheable
image), which is what limits the inline-frame task's reach.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.analysis.stats import Ecdf, fraction_at_least
from repro.web.resources import KILOBYTE

CDF_POINTS = [0, 1, 2, 5, 10, 20, 50]
SIZE_CLASSES = [("<= 100 KB", 100 * KILOBYTE), ("<= 500 KB", 500 * KILOBYTE), ("all", None)]


def build_series(report):
    series = {}
    for label, limit in SIZE_CLASSES:
        counts = report.cacheable_images_per_page(limit)
        series[label] = Ecdf(counts).series(CDF_POINTS)
    return series


class TestFigure6:
    def test_cacheable_images_per_page_cdf(self, benchmark, feasibility):
        report = feasibility.report
        series = benchmark(build_series, report)

        rows = [
            [str(point)] + [f"{series[label][index][1]:.2f}" for label, _ in SIZE_CLASSES]
            for index, point in enumerate(CDF_POINTS)
        ]
        print()
        print("Figure 6 — CDF of cacheable images per page:")
        print(format_table(["cacheable images", "<= 100 KB", "<= 500 KB", "all"], rows))

        all_counts = report.cacheable_images_per_page()
        small_counts = report.cacheable_images_per_page(100 * KILOBYTE)
        # ~70% of all pages embed at least one cacheable image.
        assert 0.55 <= fraction_at_least(all_counts, 1) <= 0.85
        # About half of all pages cache five or more images.
        assert 0.40 <= fraction_at_least(all_counts, 5) <= 0.75
        # Small pages are far less amenable: ~30% have a cacheable image.
        assert fraction_at_least(small_counts, 1) <= 0.45
        # The drop from "all pages" to "small pages" is substantial.
        assert fraction_at_least(all_counts, 1) - fraction_at_least(small_counts, 1) >= 0.25

    def test_smaller_page_classes_are_subsets(self, feasibility):
        report = feasibility.report
        assert len(report.cacheable_images_per_page(100 * KILOBYTE)) <= len(
            report.cacheable_images_per_page(500 * KILOBYTE)
        ) <= len(report.cacheable_images_per_page())
