"""Figure 5 — CDF of page sizes (sum of all objects a page loads).

Paper claims: page sizes are spread relatively evenly between 0 and 2 MB with
a very long tail, and over half of pages load at least half a megabyte of
objects.  This is the network overhead an inline-frame task would impose.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.analysis.stats import Ecdf, fraction_at_least
from repro.web.resources import KILOBYTE, MEGABYTE

CDF_POINTS_KB = [50, 100, 250, 500, 750, 1000, 1500, 2000, 4000]


def build_series(report):
    sizes_kb = [size / KILOBYTE for size in report.page_sizes_bytes()]
    return Ecdf(sizes_kb).series(CDF_POINTS_KB)


class TestFigure5:
    def test_page_size_cdf(self, benchmark, feasibility):
        report = feasibility.report
        series = benchmark(build_series, report)

        print()
        print(f"Figure 5 — CDF of page sizes over {len(report.all_pages)} pages:")
        print(format_table(["page size (KB)", "CDF"],
                           [[f"{x:.0f}", f"{y:.2f}"] for x, y in series]))

        sizes = report.page_sizes_bytes()
        # Over half of pages load at least half a megabyte of objects.
        assert fraction_at_least(sizes, 512 * KILOBYTE) >= 0.50
        # The bulk of the distribution lies below 2 MB, with a long tail above.
        cdf = Ecdf(sizes)
        assert cdf(2 * MEGABYTE) >= 0.80
        assert cdf(2 * MEGABYTE) < 1.0
        assert max(sizes) > 2 * MEGABYTE

    def test_distribution_is_spread_not_clustered(self, feasibility):
        """'Distributed relatively evenly between 0–2 MB': no single 250 KB
        bucket below 2 MB holds a majority of pages."""
        sizes = feasibility.report.page_sizes_bytes()
        cdf = Ecdf(sizes)
        bucket_edges_kb = list(range(0, 2001, 250))
        bucket_masses = [
            cdf(high * KILOBYTE) - cdf(low * KILOBYTE)
            for low, high in zip(bucket_edges_kb, bucket_edges_kb[1:])
        ]
        assert max(bucket_masses) < 0.5
