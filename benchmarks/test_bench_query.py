"""The composable query kernel vs. its per-row scalar reference.

``run_query`` is the one group-by engine behind every store reduction; this
benchmark pins its throughput on the kernel's richest workload: group ~60k
measurements by (domain, country, day) and reduce with all four aggregate
families at once — counts, success counts, three ``elapsed_ms`` quantiles,
and distinct client addresses.  The reference path is
``run_query_reference`` — the scalar twin the equivalence tests pin — whose
timing includes the row materialization per-row semantics inherently pay
(the same accounting the store benchmark uses for its seed path).

Results are recorded in ``benchmarks/BENCH_query.json``; on hosts with
fewer than 4 CPUs the speedup assertion is skipped loudly (matching the
shard benchmark's convention) after the JSON is written and the
equivalence check has run.
"""

from __future__ import annotations

import gc
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.query import (
    Count,
    DistinctCount,
    Quantiles,
    SuccessCount,
    run_query,
    run_query_reference,
)
from repro.core.store import DictColumn, MeasurementStore
from repro.core.tasks import TaskOutcome, TaskType
from repro.web.url import URL

ROWS = 60_000
DAYS = 30
N_DOMAINS = 10
N_COUNTRIES = 8
THROTTLE_DAY = 12
MIN_SPEEDUP = 5.0
MIN_CPUS = 4
REPORT_PATH = Path(__file__).parent / "BENCH_query.json"

DOMAINS = tuple(f"domain-{i:02d}.org" for i in range(N_DOMAINS))
COUNTRIES = tuple(f"C{i:02d}" for i in range(N_COUNTRIES))

KEYS = ("domain", "country", "day")
AGGREGATES = (
    Count(),
    SuccessCount(),
    Quantiles("elapsed_ms", (0.5, 0.9, 0.99)),
    DistinctCount("client_ip"),
)


def build_store(rng: np.random.Generator) -> MeasurementStore:
    """~60k synthetic measurements with a mid-campaign timing shift."""
    domain = rng.integers(0, N_DOMAINS, ROWS)
    country = rng.integers(0, N_COUNTRIES, ROWS)
    day = rng.integers(0, DAYS, ROWS)
    success = rng.random(ROWS) < 0.93
    throttled = (domain % 4 == 0) & (country % 3 == 1) & (day >= THROTTLE_DAY)
    elapsed = rng.uniform(80.0, 600.0, ROWS) * np.where(throttled, 6.0, 1.0)
    outcomes = (TaskOutcome.SUCCESS, TaskOutcome.FAILURE)
    identities = np.asarray(
        [f"10.{i // 256}.{i % 256}.9" for i in range(512)], dtype=np.str_
    )
    constant = np.zeros(ROWS, dtype=np.int64)
    store = MeasurementStore()
    store.append_columns(
        measurement_id=np.char.add("m", np.arange(ROWS).astype(np.str_)),
        task_type=DictColumn((TaskType.IMAGE,), constant),
        target_url=DictColumn(
            tuple(URL.parse(f"http://{d}/favicon.ico") for d in DOMAINS), domain
        ),
        target_domain=DictColumn(DOMAINS, domain),
        outcome=DictColumn(outcomes, (~success).astype(np.int64)),
        elapsed_ms=elapsed,
        client_ip=DictColumn(identities, rng.integers(0, len(identities), ROWS)),
        country_code=DictColumn(COUNTRIES, country),
        isp=DictColumn(("bench-isp",), constant),
        browser_family=DictColumn(("chrome",), constant),
        origin_domain=DictColumn((None,), constant),
        day=day,
    )
    return store


def run_kernel(store: MeasurementStore):
    """One streamed group-by pass over the store's code columns."""
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    result = run_query(store, KEYS, AGGREGATES)
    t1 = time.perf_counter()
    gc.enable()
    return {"seconds": t1 - t0, "result": result}


def run_reference(store: MeasurementStore):
    """The scalar twin: materialize rows, bucket with dicts, np.quantile."""
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    cells = run_query_reference(store, KEYS, AGGREGATES)
    t1 = time.perf_counter()
    gc.enable()
    return {"seconds": t1 - t0, "cells": cells}


class TestQueryKernelThroughput:
    def test_kernel_at_least_5x_faster_than_row_reference(
        self, bench_report_writer
    ):
        # Fresh stores per kernel run: results cache per store version, and
        # a cache hit would benchmark the cache, not the reduction.
        stores = [build_store(np.random.default_rng(2015)) for _ in range(3)]
        kernel_runs = [run_kernel(store) for store in stores]
        reference_runs = [run_reference(stores[0]) for _ in range(2)]
        kernel = min(kernel_runs, key=lambda r: r["seconds"])
        reference = min(reference_runs, key=lambda r: r["seconds"])

        # Identical cells on both paths — quantiles bit-for-bit included.
        assert kernel["result"].as_dict() == reference["cells"]

        report = {
            "rows": ROWS,
            "keys": list(KEYS),
            "aggregates": [spec.name for spec in AGGREGATES],
            "cells": len(kernel["result"]),
            "kernel_seconds": round(kernel["seconds"], 4),
            "reference_seconds": round(reference["seconds"], 4),
            "kernel_rows_per_second": round(ROWS / kernel["seconds"], 1),
            "reference_rows_per_second": round(ROWS / reference["seconds"], 1),
            "speedup": round(reference["seconds"] / kernel["seconds"], 2),
        }
        bench_report_writer(
            REPORT_PATH, report, rows=ROWS, seconds=kernel["seconds"]
        )

        print()
        print("Query kernel throughput (4 aggregate families, ~60k rows):")
        for key, value in report.items():
            print(f"  {key:26s} {value}")

        cpu_count = os.cpu_count() or 1
        if cpu_count < MIN_CPUS:
            pytest.skip(
                f"speedup gate needs >= {MIN_CPUS} CPUs for stable wall-clock "
                f"ratios, host has {cpu_count}; measured {report['speedup']}x "
                f"and recorded it in {REPORT_PATH.name} — the equivalence "
                f"check above did run."
            )
        assert report["speedup"] >= MIN_SPEEDUP, report
