"""Always-on monitor loop: incremental per-epoch cost vs. a full rescan.

A checkpointed longitudinal monitor does three things per epoch: seal the
epoch's pending rows into a segment, fold only that new segment into the
persistent fold state (shared by ``grouped_success_counts`` and the dense
``dense_day_series`` accessor, behind one fold watermark), and
advance a resumable CUSUM state over only the new day columns.  All three
are O(new data), so per-epoch cost must stay flat as history grows.  The stateless alternative re-reduces the whole corpus and
re-scans every day column each epoch — O(history) — which is what always-on
deployment cannot afford.

This benchmark drives ~100 epochs (one simulated day each, ~10k rows/day,
64 (domain, country) cells) through the incremental loop and pins:

* the final-epoch incremental cost is at least 5× cheaper than the
  full-rescan reference over the same corpus (``speedup`` field), and
* late epochs cost about the same as early ones (``flatness_ratio``), and
* the accumulated ``CusumState.events`` and the final aggregate are
  bit-identical to a cold full scan of an independently built store.

Results are recorded in ``benchmarks/BENCH_monitor.json``; on hosts with
fewer than 4 CPUs the timing assertions are skipped loudly (matching the
other benchmarks' convention) after the JSON is written and the equivalence
checks have run.
"""

from __future__ import annotations

import gc
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.inference import CusumChangePointDetector
from repro.core.query import dense_day_series, grouped_success_counts
from repro.core.store import DictColumn, MeasurementStore
from repro.core.tasks import TaskOutcome, TaskType
from repro.web.url import URL

EPOCHS = 100
ROWS_PER_EPOCH = 10_000
N_DOMAINS = 8
N_COUNTRIES = 8
CHANGE_DAY = 40
RECOVERY_DAY = 70
MIN_SPEEDUP = 5.0
#: Late epochs may cost at most this multiple of early ones ("flat").
MAX_FLATNESS_RATIO = 3.0
MIN_CPUS = 4
REPORT_PATH = Path(__file__).parent / "BENCH_monitor.json"

DOMAINS = tuple(f"domain-{i:02d}.org" for i in range(N_DOMAINS))
COUNTRIES = tuple(f"C{i:02d}" for i in range(N_COUNTRIES))
URLS = tuple(URL.parse(f"http://{d}/favicon.ico") for d in DOMAINS)
IDENTITIES = tuple(f"10.{i // 256}.{i % 256}.9" for i in range(512))


def detector() -> CusumChangePointDetector:
    return CusumChangePointDetector(min_daily_measurements=5)


def epoch_columns(rng: np.random.Generator, epoch: int) -> dict:
    """One simulated day of measurements, censorship scripted mid-campaign."""
    rows = ROWS_PER_EPOCH
    domain = rng.integers(0, N_DOMAINS, rows)
    country = rng.integers(0, N_COUNTRIES, rows)
    censored_cell = (domain % 3 == 0) & (country % 4 == 1)
    if not CHANGE_DAY <= epoch < RECOVERY_DAY:
        censored_cell = np.zeros(rows, dtype=bool)
    success = rng.random(rows) < np.where(censored_cell, 0.06, 0.92)
    outcomes = (TaskOutcome.SUCCESS, TaskOutcome.FAILURE)
    constant = np.zeros(rows, dtype=np.int64)
    return dict(
        measurement_id=np.char.add(f"m{epoch}-", np.arange(rows).astype(np.str_)),
        task_type=DictColumn((TaskType.IMAGE,), constant),
        target_url=DictColumn(URLS, domain),
        target_domain=DictColumn(DOMAINS, domain),
        outcome=DictColumn(outcomes, (~success).astype(np.int64)),
        elapsed_ms=rng.uniform(10.0, 400.0, rows),
        client_ip=DictColumn(
            np.asarray(IDENTITIES, dtype=np.str_),
            rng.integers(0, len(IDENTITIES), rows),
        ),
        country_code=DictColumn(COUNTRIES, country),
        isp=DictColumn(("bench-isp",), constant),
        browser_family=DictColumn(("chrome",), constant),
        origin_domain=DictColumn((None,), constant),
        day=np.full(rows, epoch, dtype=np.int64),
    )


def run_full_rescan():
    """The stateless reference: rebuild, cold by-day reduce, full scan.

    Rebuilds the corpus from the same seed (``epoch_columns`` consumes its
    generator deterministically), so the reference store holds bit-identical
    rows without keeping 100 epochs of raw columns alive in memory.
    """
    store = MeasurementStore()
    rng = np.random.default_rng(2015)
    for epoch in range(EPOCHS):
        store.append_columns(**epoch_columns(rng, epoch))
    gc.collect()
    gc.disable()
    t0 = time.perf_counter()
    day_counts = grouped_success_counts(store, by_day=True)
    events = detector().detect_events(day_counts)
    t1 = time.perf_counter()
    gc.enable()
    return {"seconds": t1 - t0, "day_counts": day_counts, "events": events}


class TestMonitorIncrementality:
    def test_per_epoch_cost_flat_and_5x_cheaper_than_full_rescan(
        self, bench_report_writer
    ):
        # The incremental monitor loop: per epoch, seal + watermark fold +
        # dense day-series off the accumulator + resumable CUSUM over only
        # the new day columns.  Generating and appending the epoch's rows
        # is common to both paths and stays outside the timing.
        rng = np.random.default_rng(2015)
        monitor_detector = detector()
        state = monitor_detector.initial_state()
        store = MeasurementStore()
        epoch_seconds: list[float] = []
        gc.collect()
        gc.disable()
        for epoch in range(EPOCHS):
            store.append_columns(**epoch_columns(rng, epoch))
            t0 = time.perf_counter()
            store.seal_pending()
            day_series = dense_day_series(store)
            monitor_detector.resume(state, day_series)
            t1 = time.perf_counter()
            epoch_seconds.append(t1 - t0)
        gc.enable()

        full = min(
            (run_full_rescan() for _ in range(2)), key=lambda r: r["seconds"]
        )

        # Identical aggregate and identical events to the cold full scan.
        assert grouped_success_counts(store, by_day=True).as_dict() == (
            full["day_counts"].as_dict()
        )
        assert state.events == full["events"]
        onsets = [e for e in state.events if e.kind == "onset"]
        assert onsets and all(e.change_day == CHANGE_DAY for e in onsets)

        early = float(np.median(epoch_seconds[5:15]))
        late = float(np.median(epoch_seconds[-10:]))
        report = {
            "epochs": EPOCHS,
            "rows_per_epoch": ROWS_PER_EPOCH,
            "total_rows": EPOCHS * ROWS_PER_EPOCH,
            "cells": len(full["day_counts"]),
            "events": len(state.events),
            "early_epoch_seconds": round(early, 5),
            "late_epoch_seconds": round(late, 5),
            "flatness_ratio": round(late / early, 2),
            "full_rescan_seconds": round(full["seconds"], 4),
            "incremental_epoch_seconds": round(late, 5),
            "speedup": round(full["seconds"] / late, 2),
        }
        bench_report_writer(
            REPORT_PATH,
            report,
            rows=EPOCHS * ROWS_PER_EPOCH,
            seconds=sum(epoch_seconds),
        )

        print()
        print("Always-on monitor loop (100 epochs, per-epoch incremental cost):")
        for key, value in report.items():
            print(f"  {key:26s} {value}")

        cpu_count = os.cpu_count() or 1
        if cpu_count < MIN_CPUS:
            pytest.skip(
                f"timing gates need >= {MIN_CPUS} CPUs for stable wall-clock "
                f"ratios, host has {cpu_count}; measured {report['speedup']}x "
                f"(flatness {report['flatness_ratio']}) and recorded them in "
                f"{REPORT_PATH.name} — equivalence checks above did run."
            )
        assert report["speedup"] >= MIN_SPEEDUP, report
        assert report["flatness_ratio"] <= MAX_FLATNESS_RATIO, report
