"""§7 — campaign scale and geographic coverage.

The paper's seven-month deployment recorded 141,626 measurements from 88,260
distinct IPs in 170 countries, with China, India, the United Kingdom, and
Brazil each reporting at least 1,000 measurements and Egypt, South Korea,
Iran, Pakistan, Turkey, and Saudi Arabia each reporting more than 100.  The
benchmark campaign runs roughly a fifth of that visit volume (see
EXPERIMENTS.md) and checks that the same coverage thresholds hold — the
distributional claim rather than the absolute count.
"""

from __future__ import annotations

from repro.analysis.reports import format_table

BIG_FOUR = ("CN", "IN", "GB", "BR")
HUNDRED_PLUS = ("EG", "KR", "IR", "PK", "TR", "SA")


def campaign_summary(result):
    collection = result.collection
    return {
        "measurements": len(collection.measurements),
        "distinct_ips": collection.distinct_ips(),
        "countries": collection.distinct_countries(),
        "by_country": collection.measurements_by_country(),
    }


class TestSection7Scale:
    def test_scale_and_coverage(self, benchmark, scale_result):
        summary = benchmark(campaign_summary, scale_result)
        by_country = summary["by_country"]

        rows = [
            ["measurements", 141_626, summary["measurements"]],
            ["distinct IPs", 88_260, summary["distinct_ips"]],
            ["countries", 170, summary["countries"]],
        ]
        rows += [[f"measurements from {code}", ">= 1000" if code in BIG_FOUR else "> 100",
                  by_country.get(code, 0)] for code in BIG_FOUR + HUNDRED_PLUS]
        print()
        print("§7 — campaign scale (benchmark runs ~1/5 of the paper's visit volume):")
        print(format_table(["metric", "paper", "reproduced"], rows))

        # Volume: a large, many-vantage campaign (absolute numbers scale with
        # the configured visit count).
        assert summary["measurements"] > 20_000
        assert summary["distinct_ips"] > 0.5 * summary["measurements"] * 0.5
        # Coverage: measurements arrive from the vast majority of the world's
        # countries in the model.
        assert summary["countries"] >= 150
        # Ordering claims from the paper hold at our scale.
        for code in BIG_FOUR:
            assert by_country.get(code, 0) >= 1000, code
        for code in HUNDRED_PLUS:
            assert by_country.get(code, 0) > 100, code
        # The United States contributes the single largest share, as the
        # origin-site demographics would predict.
        assert by_country.most_common(1)[0][0] == "US"

    def test_browser_and_os_diversity(self, scale_result):
        """Clients ran a variety of Web browsers (paper §7)."""
        families = {m.browser_family for m in scale_result.measurements}
        assert len(families) >= 4

    def test_origin_attribution_mostly_stripped(self, scale_result):
        """3/4 of measurements come from origins that strip the Referer."""
        measurements = scale_result.measurements
        stripped = sum(1 for m in measurements if m.origin_domain is None)
        assert 0.55 <= stripped / len(measurements) <= 0.95
