"""§7.2 — does Encore detect Web filtering?

The paper instructs 70% of clients to measure Facebook, YouTube, and Twitter
and applies a one-sided binomial test (success prior p = 0.7, significance
0.05) per resource and region.  It confirms well-known censorship of
youtube.com in Pakistan, Iran, and China, and of twitter.com and facebook.com
in China and Iran, without flagging uncensored regions.
"""

from __future__ import annotations

from repro.analysis.reports import format_table

EXPECTED_DETECTIONS = {
    ("youtube.com", "PK"),
    ("youtube.com", "IR"),
    ("youtube.com", "CN"),
    ("twitter.com", "CN"),
    ("twitter.com", "IR"),
    ("facebook.com", "CN"),
    ("facebook.com", "IR"),
}

CENSORING_COUNTRIES = {"CN", "IR", "PK"}


def run_detection(result):
    return result.detect(success_prior=0.7, significance=0.05, min_measurements=10)


class TestSection72:
    def test_detects_known_filtering(self, benchmark, detection_result):
        report = benchmark(run_detection, detection_result)
        detected = report.detected_pairs()

        rows = [
            [d.domain, d.country_code, d.measurements, d.successes, f"{d.p_value:.1e}",
             "expected" if (d.domain, d.country_code) in EXPECTED_DETECTIONS else "unexpected"]
            for d in sorted(report.detections, key=lambda d: (d.domain, d.country_code))
        ]
        print()
        print("§7.2 — filtering detections (binomial test, p=0.7, alpha=0.05):")
        print(format_table(["domain", "country", "n", "successes", "p-value", "status"], rows))

        # Every case the paper confirms is recovered.
        assert EXPECTED_DETECTIONS <= detected
        # Nothing is flagged outside the countries that actually censor these
        # domains in the simulation's ground truth.
        assert all(country in CENSORING_COUNTRIES for _, country in detected)

    def test_success_rate_contrast(self, detection_result):
        """Censoring regions show near-zero success; open regions near-perfect."""
        collection = detection_result.collection
        rows = []
        for domain, country, expect_blocked in [
            ("youtube.com", "PK", True), ("youtube.com", "US", False),
            ("facebook.com", "CN", True), ("facebook.com", "GB", False),
            ("twitter.com", "IR", True), ("twitter.com", "BR", False),
        ]:
            measurements = collection.filtered(domain=domain, country_code=country)
            assert measurements, (domain, country)
            rate = sum(1 for m in measurements if m.succeeded) / len(measurements)
            rows.append([domain, country, len(measurements), f"{rate:.2f}"])
            if expect_blocked:
                assert rate <= 0.2
            else:
                assert rate >= 0.85
        print()
        print(format_table(["domain", "country", "n", "success rate"], rows))

    def test_region_statistics_cover_many_countries(self, detection_result):
        report = run_detection(detection_result)
        countries = {s.country_code for s in report.statistics}
        assert len(countries) >= 20

    def test_detection_latency_in_measurement_volume(self, detection_result):
        """How few measurements suffice: rerun the test on truncated prefixes
        of the campaign and find where the known cases first appear."""
        from repro.core.inference import BinomialFilteringDetector

        measurements = detection_result.measurements
        detector = BinomialFilteringDetector(min_measurements=10)
        first_complete = None
        for fraction in (0.1, 0.25, 0.5, 0.75, 1.0):
            prefix = measurements[: int(len(measurements) * fraction)]
            detected = detector.detect_from_measurements(prefix).detected_pairs()
            if EXPECTED_DETECTIONS <= detected and first_complete is None:
                first_complete = fraction
        print()
        print(f"All paper-confirmed cases detected using {first_complete:.0%} of the campaign")
        assert first_complete is not None and first_complete <= 1.0
