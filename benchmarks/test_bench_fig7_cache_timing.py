"""Figure 7 — cached vs uncached image load times.

The paper compares the time to load an uncached versus cached single-pixel
image from 1,099 globally distributed Encore clients: cached images typically
load within tens of milliseconds, whereas uncached loads take at least ~50 ms
longer for most clients (the few exceptions being clients on the same local
network as the server).  That separation is what makes the inline-frame
task's cache-timing inference work.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.analysis.stats import fraction_at_least, summarise_distribution
from repro.core.tasks import CACHED_PROBE_THRESHOLD_MS
from repro.population.world import World, WorldConfig

CLIENT_COUNT = 1099  # matches the paper's sample size


def measure_cache_timing(world: World, clients: int = CLIENT_COUNT):
    """Uncached and cached load times of a small control image per client."""
    uncached, cached = [], []
    url = "http://facebook.com/favicon.ico"
    for _ in range(clients):
        client = world.sample_client()
        browser = world.make_browser(client)
        first = browser.load_image(url)
        second = browser.load_image(url)
        if not first.succeeded or not second.succeeded:
            continue  # censored or transiently failed clients do not yield a pair
        uncached.append(first.elapsed_ms)
        cached.append(second.elapsed_ms)
    return np.array(uncached), np.array(cached)


class TestFigure7:
    def test_cached_vs_uncached_load_times(self, benchmark):
        world = World(WorldConfig(seed=71, target_list_total=16, target_list_online=12,
                                  origin_site_count=2))
        uncached, cached = benchmark.pedantic(
            measure_cache_timing, args=(world,), rounds=1, iterations=1
        )
        difference = uncached - cached

        print()
        print(f"Figure 7 — load times from {len(cached)} clients (ms):")
        rows = []
        for label, values in (("uncached", uncached), ("cached", cached), ("difference", difference)):
            summary = summarise_distribution(values)
            rows.append([label, f"{summary['p25']:.0f}", f"{summary['median']:.0f}",
                         f"{summary['p75']:.0f}", f"{summary['p90']:.0f}"])
        print(format_table(["series", "p25", "median", "p75", "p90"], rows))

        assert len(cached) > 800
        # Cached images render within tens of milliseconds.
        assert np.median(cached) <= 20.0
        assert np.percentile(cached, 90) <= 50.0
        # Uncached loads take at least ~50 ms longer for the vast majority of
        # clients (the paper's bold 50 ms line).
        assert fraction_at_least(difference, CACHED_PROBE_THRESHOLD_MS) >= 0.90
        assert np.median(uncached) >= np.median(cached) + CACHED_PROBE_THRESHOLD_MS

    def test_local_clients_show_little_difference(self):
        """Clients on the server's local network are the paper's outliers."""
        from repro.browser.engine import Browser
        from repro.browser.profiles import BrowserProfile
        from repro.netsim.latency import LinkQuality
        from repro.netsim.network import Network

        world = World(WorldConfig(seed=72, target_list_total=16, target_list_online=12,
                                  origin_site_count=2))
        browser = Browser(BrowserProfile.chrome(), LinkQuality.local(), Network(world.universe),
                          np.random.default_rng(0))
        first = browser.load_image("http://facebook.com/favicon.ico")
        second = browser.load_image("http://facebook.com/favicon.ico")
        assert first.elapsed_ms - second.elapsed_ms < CACHED_PROBE_THRESHOLD_MS
