"""Network substrate: DNS, TCP, and HTTP with latency, loss, and censors.

Encore only ever observes the *outcome* of Web fetches — whether they
complete, with what status, and how long they take.  This package models the
fetch pipeline a browser goes through (DNS lookup, TCP connect, HTTP
exchange), lets censors interpose at each stage, and reports a
:class:`~repro.netsim.errors.FetchOutcome` with a timing breakdown.
"""

from repro.netsim.errors import FailureKind, FailureStage, FetchOutcome
from repro.netsim.latency import LinkQuality
from repro.netsim.dns import DNSAction, DNSResolver
from repro.netsim.tcp import TCPAction, TCPConnectionModel
from repro.netsim.http import HTTPAction, HTTPExchangeModel
from repro.netsim.network import Network

__all__ = [
    "FailureKind",
    "FailureStage",
    "FetchOutcome",
    "LinkQuality",
    "DNSAction",
    "DNSResolver",
    "TCPAction",
    "TCPConnectionModel",
    "HTTPAction",
    "HTTPExchangeModel",
    "Network",
]
