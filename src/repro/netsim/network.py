"""The fetch pipeline: DNS -> TCP -> HTTP with censors on the path.

:class:`Network.fetch` is the single entry point browsers use to retrieve a
URL.  It walks the three stages of a Web connection the paper's threat model
identifies (§3.1), consults whatever interceptors (censors) sit on the
client's path at each stage, accumulates a timing breakdown, and returns a
:class:`~repro.netsim.errors.FetchOutcome`.
"""

from __future__ import annotations

import numpy as np

from repro.netsim.dns import (
    DNS_TIMEOUT_PENALTY_MS,
    DNSAction,
    DNSResolver,
    INJECTED_SINKHOLE_IP,
)
from repro.netsim.errors import FailureKind, FailureStage, FetchOutcome
from repro.netsim.http import HTTPAction, HTTPExchangeModel
from repro.netsim.latency import LinkQuality
from repro.netsim.tcp import TCPAction, TCPConnectionModel
from repro.web.server import WebUniverse
from repro.web.url import URL


class Network:
    """The simulated Internet connecting clients to Web servers."""

    def __init__(
        self,
        universe: WebUniverse,
        dns_resolver: DNSResolver | None = None,
        tcp_model: TCPConnectionModel | None = None,
        http_model: HTTPExchangeModel | None = None,
    ) -> None:
        self.universe = universe
        self.dns = dns_resolver or DNSResolver(universe)
        self.tcp = tcp_model or TCPConnectionModel()
        self.http = http_model or HTTPExchangeModel()

    # ------------------------------------------------------------------
    def fetch(
        self,
        url: URL | str,
        link: LinkQuality,
        rng: np.random.Generator,
        interceptors=(),
    ) -> FetchOutcome:
        """Fetch ``url`` over ``link`` with ``interceptors`` on the path."""
        parsed = url if isinstance(url, URL) else URL.parse(url)
        interceptors = tuple(interceptors)
        elapsed = 0.0

        # --- Stage 1: DNS -------------------------------------------------
        dns_result = self.dns.resolve(parsed.host, interceptors)
        elapsed += link.sample_rtt_ms(rng)
        if dns_result.action is DNSAction.TIMEOUT:
            return FetchOutcome.failure(
                parsed,
                FailureStage.DNS,
                FailureKind.DNS_TIMEOUT,
                elapsed + DNS_TIMEOUT_PENALTY_MS,
                censor_interfered=True,
            )
        if dns_result.action is DNSAction.NXDOMAIN:
            interfered = self.dns.authoritative_ip(parsed.host) is not None
            return FetchOutcome.failure(
                parsed,
                FailureStage.DNS,
                FailureKind.DNS_NXDOMAIN,
                elapsed,
                censor_interfered=interfered,
            )
        resolved_ip = dns_result.ip_address
        dns_hijacked = dns_result.action is DNSAction.INJECT

        # --- Stage 2: TCP -------------------------------------------------
        tcp_result = self.tcp.connect(resolved_ip, parsed.host, link, rng, interceptors)
        elapsed += tcp_result.elapsed_ms
        if not tcp_result.connected:
            if tcp_result.action is TCPAction.RESET:
                kind = FailureKind.TCP_RESET
            elif tcp_result.action is TCPAction.DROP:
                kind = FailureKind.TCP_TIMEOUT
            else:
                kind = FailureKind.TCP_TIMEOUT
            return FetchOutcome.failure(
                parsed,
                FailureStage.TCP,
                kind,
                elapsed,
                resolved_ip=resolved_ip,
                censor_interfered=tcp_result.action is not TCPAction.PASS,
            )

        # --- Stage 3: HTTP ------------------------------------------------
        if dns_hijacked or resolved_ip == INJECTED_SINKHOLE_IP:
            server = None
        else:
            server = self.universe.server_for_ip(resolved_ip)
        http_result = self.http.exchange(parsed, server, link, rng, interceptors)
        elapsed += http_result.elapsed_ms

        censor_acted = dns_hijacked or http_result.action is not HTTPAction.PASS

        if not http_result.completed:
            if http_result.action is HTTPAction.RESET:
                kind = FailureKind.HTTP_RESET
            elif http_result.action is HTTPAction.DROP:
                kind = FailureKind.HTTP_TIMEOUT
            elif server is None and not dns_hijacked:
                kind = FailureKind.SERVER_OFFLINE
            else:
                kind = FailureKind.HTTP_TIMEOUT
            return FetchOutcome.failure(
                parsed,
                FailureStage.HTTP,
                kind,
                elapsed,
                resolved_ip=resolved_ip,
                censor_interfered=censor_acted,
            )

        response = http_result.response
        if response is None:
            return FetchOutcome.failure(
                parsed,
                FailureStage.HTTP,
                FailureKind.HTTP_TIMEOUT,
                elapsed,
                resolved_ip=resolved_ip,
                censor_interfered=censor_acted,
            )
        if response.is_block_page:
            # The request "succeeded" from HTTP's point of view, but the body
            # is the censor's block page, not the requested resource.
            return FetchOutcome.failure(
                parsed,
                FailureStage.CONTENT,
                FailureKind.BLOCK_PAGE,
                elapsed,
                status=response.status,
                response=response,
                resolved_ip=resolved_ip,
                censor_interfered=True,
            )
        if response.status == 404:
            return FetchOutcome.failure(
                parsed,
                FailureStage.HTTP,
                FailureKind.NOT_FOUND,
                elapsed,
                status=404,
                response=response,
                resolved_ip=resolved_ip,
                censor_interfered=censor_acted,
            )
        if not response.ok:
            return FetchOutcome.failure(
                parsed,
                FailureStage.HTTP,
                FailureKind.HTTP_ERROR_STATUS,
                elapsed,
                status=response.status,
                response=response,
                resolved_ip=resolved_ip,
                censor_interfered=censor_acted,
            )
        return FetchOutcome.success(
            parsed,
            response,
            elapsed,
            resolved_ip=resolved_ip,
            censor_interfered=censor_acted or http_result.action is HTTPAction.THROTTLE,
        )
