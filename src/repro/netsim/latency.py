"""Link-quality and latency models.

Each client has a link to the wider Internet characterised by a round-trip
time, jitter, packet-loss rate, and downstream bandwidth.  The inline-frame
task (paper §4.3.2, Fig. 7) depends on these numbers directly: it decides a
page loaded by comparing the load time of a cached versus uncached image, so
the simulator needs realistic spreads of RTT and transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def exponential_from_uniform(mean, u):
    """Inverse-CDF exponential sample(s) with the given ``mean``.

    Accepts scalars or numpy arrays; the batched campaign runner uses this to
    derive jitter for thousands of fetches from pre-drawn uniforms with the
    exact same formula its scalar reference path uses.
    """
    return -mean * np.log1p(-u)


def rtt_from_uniform(rtt_ms, jitter_ms, u):
    """RTT sample(s) matching :meth:`LinkQuality.sample_rtt_ms`'s model.

    ``rtt + Exp(jitter)`` clamped to at least 1 ms, computed from a uniform
    draw so scalar and vectorized callers produce bit-identical values.
    """
    jitter = np.where(jitter_ms > 0, exponential_from_uniform(jitter_ms, u), 0.0)
    return np.maximum(1.0, rtt_ms + jitter)


@dataclass(frozen=True)
class LinkQuality:
    """Network quality of a client's access link."""

    rtt_ms: float
    jitter_ms: float = 5.0
    loss_rate: float = 0.0
    bandwidth_kbps: float = 8000.0

    def __post_init__(self) -> None:
        if self.rtt_ms < 0 or self.jitter_ms < 0:
            raise ValueError("RTT and jitter must be non-negative")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        if self.bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")

    # ------------------------------------------------------------------
    def sample_rtt_ms(self, rng: np.random.Generator) -> float:
        """One round-trip time sample with jitter applied."""
        jitter = rng.exponential(self.jitter_ms) if self.jitter_ms > 0 else 0.0
        return max(1.0, self.rtt_ms + jitter)

    def transfer_time_ms(self, size_bytes: int) -> float:
        """Time to transfer ``size_bytes`` at this link's bandwidth."""
        bytes_per_ms = self.bandwidth_kbps * 1000.0 / 8.0 / 1000.0
        return size_bytes / bytes_per_ms

    def packet_lost(self, rng: np.random.Generator) -> bool:
        """Whether a given exchange is disrupted by packet loss."""
        return bool(rng.random() < self.loss_rate)

    # ------------------------------------------------------------------
    # Presets used by the population substrate
    # ------------------------------------------------------------------
    @classmethod
    def broadband(cls) -> "LinkQuality":
        """A typical residential broadband connection."""
        return cls(rtt_ms=60.0, jitter_ms=8.0, loss_rate=0.005, bandwidth_kbps=20000.0)

    @classmethod
    def mobile(cls) -> "LinkQuality":
        """A mobile/cellular connection: higher RTT and loss."""
        return cls(rtt_ms=140.0, jitter_ms=30.0, loss_rate=0.02, bandwidth_kbps=4000.0)

    @classmethod
    def unreliable(cls) -> "LinkQuality":
        """A congested or unreliable connection (drives the paper's ~5% false
        positives from India, §7.1)."""
        return cls(rtt_ms=220.0, jitter_ms=60.0, loss_rate=0.05, bandwidth_kbps=1500.0)

    @classmethod
    def campus(cls) -> "LinkQuality":
        """A well-connected academic network."""
        return cls(rtt_ms=25.0, jitter_ms=3.0, loss_rate=0.001, bandwidth_kbps=100000.0)

    @classmethod
    def local(cls) -> "LinkQuality":
        """Same local network as the server (the paper's Fig. 7 outliers)."""
        return cls(rtt_ms=2.0, jitter_ms=1.0, loss_rate=0.0, bandwidth_kbps=500000.0)
