"""DNS resolution with censor interposition hooks.

Web filtering frequently happens at the DNS stage (paper §3.1): the censor
answers a lookup with NXDOMAIN, injects a bogus address, or lets the query
time out.  The resolver below answers from the simulated Web universe's
authoritative records, after giving any on-path censor the chance to act.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.web.server import WebUniverse


class DNSAction(enum.Enum):
    """What an on-path interceptor does to a DNS query."""

    PASS = "pass"
    NXDOMAIN = "nxdomain"
    INJECT = "inject"
    TIMEOUT = "timeout"


@dataclass(frozen=True)
class DNSResult:
    """Outcome of a DNS lookup."""

    action: DNSAction
    ip_address: str | None

    @property
    def resolved(self) -> bool:
        return self.ip_address is not None and self.action in (DNSAction.PASS, DNSAction.INJECT)


#: Address returned by injecting censors; no real server listens there.
INJECTED_SINKHOLE_IP = "203.0.113.113"

#: Extra wait (ms) a client spends before declaring a DNS query timed out.
DNS_TIMEOUT_PENALTY_MS = 5000.0


class DNSResolver:
    """Resolves hostnames against the simulated universe's records."""

    def __init__(self, universe: WebUniverse) -> None:
        self._universe = universe
        self._extra_records: dict[str, str] = {}

    def add_record(self, host: str, ip_address: str) -> None:
        """Add a static A record (used for infrastructure hosts in tests)."""
        self._extra_records[host.lower()] = ip_address

    def authoritative_ip(self, host: str) -> str | None:
        """The true IP for ``host``, ignoring any censorship."""
        host = host.lower()
        if host in self._extra_records:
            return self._extra_records[host]
        return self._universe.ip_for_host(host)

    def resolve(self, host: str, interceptors=()) -> DNSResult:
        """Resolve ``host``, letting each interceptor act on the query.

        Interceptors are consulted in path order; the first one that does
        anything other than ``PASS`` determines the result, mirroring how the
        nearest censor on the path answers first.
        """
        for interceptor in interceptors:
            action = interceptor.intercept_dns(host)
            if action is DNSAction.NXDOMAIN:
                return DNSResult(DNSAction.NXDOMAIN, None)
            if action is DNSAction.TIMEOUT:
                return DNSResult(DNSAction.TIMEOUT, None)
            if action is DNSAction.INJECT:
                return DNSResult(DNSAction.INJECT, INJECTED_SINKHOLE_IP)
        ip_address = self.authoritative_ip(host)
        if ip_address is None:
            return DNSResult(DNSAction.NXDOMAIN, None)
        return DNSResult(DNSAction.PASS, ip_address)
