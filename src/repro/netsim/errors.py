"""Failure taxonomy and fetch outcomes.

The paper's threat model (§3.1) locates Web filtering at three stages of a
Web connection — the DNS lookup, the TCP connection, and the HTTP exchange —
and its testbed (§7.1) emulates seven concrete mechanisms across those
stages.  Ordinary (non-censorship) failures happen at the same stages, which
is exactly why Encore needs statistical inference to separate the two; the
taxonomy below covers both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.web.server import HTTPResponse
from repro.web.url import URL


class FailureStage(enum.Enum):
    """The stage of the fetch pipeline at which a fetch failed."""

    NONE = "none"
    DNS = "dns"
    TCP = "tcp"
    HTTP = "http"
    CONTENT = "content"


class FailureKind(enum.Enum):
    """What exactly went wrong (or ``OK`` if nothing did)."""

    OK = "ok"
    DNS_NXDOMAIN = "dns_nxdomain"
    DNS_TIMEOUT = "dns_timeout"
    DNS_HIJACKED = "dns_hijacked"
    TCP_TIMEOUT = "tcp_timeout"
    TCP_RESET = "tcp_reset"
    HTTP_TIMEOUT = "http_timeout"
    HTTP_RESET = "http_reset"
    HTTP_ERROR_STATUS = "http_error_status"
    BLOCK_PAGE = "block_page"
    SERVER_OFFLINE = "server_offline"
    NOT_FOUND = "not_found"
    TRANSIENT_LOSS = "transient_loss"

    @property
    def is_failure(self) -> bool:
        return self is not FailureKind.OK


@dataclass(frozen=True)
class FetchOutcome:
    """The result of attempting to fetch a URL over the simulated network.

    ``censor_interfered`` is ground-truth metadata recorded by the simulator
    for evaluation purposes only; nothing in the measurement path (browser,
    tasks, inference) reads it, because a real client cannot observe it.
    """

    url: URL
    ok: bool
    status: int
    stage_failed: FailureStage
    failure_kind: FailureKind
    elapsed_ms: float
    size_bytes: int = 0
    response: HTTPResponse | None = None
    resolved_ip: str | None = None
    censor_interfered: bool = False

    @property
    def succeeded_with_content(self) -> bool:
        """True if the fetch returned a 2xx response with a body."""
        return self.ok and self.response is not None and self.response.ok

    @property
    def looks_like_block_page(self) -> bool:
        """True if the returned content was a censor-injected block page."""
        return self.response is not None and self.response.is_block_page

    @classmethod
    def success(
        cls,
        url: URL,
        response: HTTPResponse,
        elapsed_ms: float,
        resolved_ip: str | None = None,
        censor_interfered: bool = False,
    ) -> "FetchOutcome":
        """Build a successful outcome for ``response``."""
        return cls(
            url=url,
            ok=True,
            status=response.status,
            stage_failed=FailureStage.NONE,
            failure_kind=FailureKind.OK,
            elapsed_ms=elapsed_ms,
            size_bytes=response.size_bytes,
            response=response,
            resolved_ip=resolved_ip,
            censor_interfered=censor_interfered,
        )

    @classmethod
    def failure(
        cls,
        url: URL,
        stage: FailureStage,
        kind: FailureKind,
        elapsed_ms: float,
        status: int = 0,
        response: HTTPResponse | None = None,
        resolved_ip: str | None = None,
        censor_interfered: bool = False,
    ) -> "FetchOutcome":
        """Build a failed outcome."""
        return cls(
            url=url,
            ok=False,
            status=status,
            stage_failed=stage,
            failure_kind=kind,
            elapsed_ms=elapsed_ms,
            size_bytes=response.size_bytes if response else 0,
            response=response,
            resolved_ip=resolved_ip,
            censor_interfered=censor_interfered,
        )
