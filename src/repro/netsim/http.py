"""HTTP request/response exchange with censor interposition.

HTTP-layer censors inspect the request (URL, Host header, keywords) and
either drop it, reset the connection, substitute a block page, or throttle
the transfer.  This module performs the exchange against the destination
server and applies whichever action an on-path interceptor chooses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.netsim.latency import LinkQuality
from repro.web.server import HTTPResponse, WebServer
from repro.web.url import URL


class HTTPAction(enum.Enum):
    """What an on-path interceptor does to an HTTP exchange."""

    PASS = "pass"
    DROP = "drop"
    RESET = "reset"
    BLOCK_PAGE = "block_page"
    THROTTLE = "throttle"


@dataclass(frozen=True)
class HTTPExchangeResult:
    """Outcome of an HTTP request/response exchange."""

    completed: bool
    action: HTTPAction
    response: HTTPResponse | None
    elapsed_ms: float


#: How long a client waits for a response before giving up.
REQUEST_TIMEOUT_MS = 30000.0

#: Throughput multiplier applied by throttling censors.
THROTTLE_FACTOR = 40.0

#: Probability that a request disrupted by packet loss times out entirely.
LOSS_GIVEUP_PROBABILITY = 0.2


class HTTPExchangeModel:
    """Performs an HTTP exchange over an established connection."""

    def __init__(self, timeout_ms: float = REQUEST_TIMEOUT_MS) -> None:
        self.timeout_ms = timeout_ms

    def exchange(
        self,
        url: URL,
        server: WebServer | None,
        link: LinkQuality,
        rng: np.random.Generator,
        interceptors=(),
    ) -> HTTPExchangeResult:
        """Send the request for ``url`` and collect the response."""
        for interceptor in interceptors:
            action = interceptor.intercept_http(url)
            if action is HTTPAction.DROP:
                return HTTPExchangeResult(False, HTTPAction.DROP, None, self.timeout_ms)
            if action is HTTPAction.RESET:
                return HTTPExchangeResult(
                    False, HTTPAction.RESET, None, link.sample_rtt_ms(rng)
                )
            if action is HTTPAction.BLOCK_PAGE:
                response = HTTPResponse.block_page()
                elapsed = link.sample_rtt_ms(rng) + link.transfer_time_ms(response.size_bytes)
                return HTTPExchangeResult(True, HTTPAction.BLOCK_PAGE, response, elapsed)
            if action is HTTPAction.THROTTLE:
                if server is None:
                    return HTTPExchangeResult(False, HTTPAction.THROTTLE, None, self.timeout_ms)
                response = server.handle(url)
                elapsed = (
                    link.sample_rtt_ms(rng)
                    + link.transfer_time_ms(response.size_bytes) * THROTTLE_FACTOR
                )
                if elapsed >= self.timeout_ms:
                    return HTTPExchangeResult(
                        False, HTTPAction.THROTTLE, None, self.timeout_ms
                    )
                return HTTPExchangeResult(True, HTTPAction.THROTTLE, response, elapsed)

        if server is None:
            # The connection went to an address nobody answers on (e.g. a
            # DNS-injected sinkhole); the request eventually times out.
            return HTTPExchangeResult(False, HTTPAction.PASS, None, self.timeout_ms)

        if link.packet_lost(rng) and rng.random() < LOSS_GIVEUP_PROBABILITY:
            return HTTPExchangeResult(False, HTTPAction.PASS, None, self.timeout_ms)

        response = server.handle(url)
        elapsed = link.sample_rtt_ms(rng) + link.transfer_time_ms(response.size_bytes)
        return HTTPExchangeResult(True, HTTPAction.PASS, response, elapsed)
