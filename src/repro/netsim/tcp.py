"""TCP connection establishment with censor interposition.

Censors that filter by IP address or by SYN inspection act at this stage:
they silently drop packets (the connection times out) or forge RST segments
(the connection is reset immediately).  Ordinary packet loss also shows up
here as an occasional timeout, which is one source of Encore's false
positives.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.netsim.latency import LinkQuality


class TCPAction(enum.Enum):
    """What an on-path interceptor does to a TCP connection attempt."""

    PASS = "pass"
    DROP = "drop"
    RESET = "reset"


@dataclass(frozen=True)
class TCPConnectResult:
    """Outcome of a connection attempt."""

    connected: bool
    action: TCPAction
    elapsed_ms: float


#: How long a client waits before declaring a silently-dropped connection dead.
CONNECT_TIMEOUT_MS = 21000.0

#: Probability that a handshake disrupted by packet loss gives up entirely
#: rather than retransmitting.
LOSS_GIVEUP_PROBABILITY = 0.3

#: Upper bound (ms) of the uniformly-distributed retransmission penalty added
#: to a handshake that recovered from packet loss.
RETRANSMIT_PENALTY_MAX_MS = 3000.0


class TCPConnectionModel:
    """Models the three-way handshake over a client link."""

    def __init__(self, timeout_ms: float = CONNECT_TIMEOUT_MS) -> None:
        self.timeout_ms = timeout_ms

    def connect(
        self,
        ip_address: str,
        host: str,
        link: LinkQuality,
        rng: np.random.Generator,
        interceptors=(),
    ) -> TCPConnectResult:
        """Attempt to open a connection to ``ip_address``.

        Interceptors see both the destination address and the intended host
        (SNI / Host-based filtering); the first non-PASS action wins.
        """
        for interceptor in interceptors:
            action = interceptor.intercept_tcp(ip_address, host)
            if action is TCPAction.DROP:
                return TCPConnectResult(False, TCPAction.DROP, self.timeout_ms)
            if action is TCPAction.RESET:
                # A forged RST arrives within roughly one RTT.
                return TCPConnectResult(False, TCPAction.RESET, link.sample_rtt_ms(rng))

        # Transient loss during the handshake: retransmissions add latency and
        # occasionally the attempt gives up entirely.
        if link.packet_lost(rng):
            if rng.random() < LOSS_GIVEUP_PROBABILITY:
                return TCPConnectResult(False, TCPAction.PASS, self.timeout_ms)
            retransmit_penalty = RETRANSMIT_PENALTY_MAX_MS * float(rng.random())
            return TCPConnectResult(
                True, TCPAction.PASS, link.sample_rtt_ms(rng) + retransmit_penalty
            )
        return TCPConnectResult(True, TCPAction.PASS, link.sample_rtt_ms(rng))
