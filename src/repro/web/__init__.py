"""Simulated Web substrate.

This package models the slice of the Web that Encore interacts with: URLs and
origins, Web resources (images, style sheets, scripts, pages), sites and a
synthetic site generator, a Web server, HTTP Archive (HAR) recording, a
headless browser used by the measurement pipeline, and a search engine used
for URL-pattern expansion.
"""

from repro.web.url import URL, Origin, URLPattern
from repro.web.resources import ContentType, Resource
from repro.web.sites import Site, SiteGenerator, SiteProfile
from repro.web.server import WebServer, WebUniverse, HTTPResponse
from repro.web.har import HAR, HAREntry
from repro.web.headless import HeadlessBrowser
from repro.web.search import SearchEngine

__all__ = [
    "URL",
    "Origin",
    "URLPattern",
    "ContentType",
    "Resource",
    "Site",
    "SiteGenerator",
    "SiteProfile",
    "WebServer",
    "WebUniverse",
    "HTTPResponse",
    "HAR",
    "HAREntry",
    "HeadlessBrowser",
    "SearchEngine",
]
