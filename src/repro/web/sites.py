"""Sites and the synthetic site generator.

The paper's feasibility analysis (§6.1, Figs. 4–6) crawls 178 potentially
censored domains and asks, per domain, how many images of which sizes they
host, how heavy their pages are, and how many cacheable images each page
embeds.  We cannot crawl the real Web offline, so this module builds a
synthetic Web whose per-domain and per-page distributions are calibrated to
the shapes the paper reports:

* ~70% of domains embed at least one image; >60% host images that fit in a
  single packet; about a third host hundreds of sub-1 KB images (Fig. 4);
* page weights spread roughly evenly over 0–2 MB with a long tail, and more
  than half of pages exceed 0.5 MB (Fig. 5);
* ~70% of pages embed at least one cacheable image and half embed five or
  more, but only ~30% of pages that weigh at most 100 KB do (Fig. 6).

Every draw flows through an explicit :class:`numpy.random.Generator`, so the
generated universe is reproducible from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.web.resources import ContentType, KILOBYTE, MEGABYTE, Resource
from repro.web.url import URL


@dataclass
class SiteProfile:
    """Sampled per-domain characteristics that drive site generation."""

    domain: str
    category: str = "uncategorised"
    has_favicon: bool = True
    hosts_images: bool = True
    image_pool_size: int = 40
    small_image_fraction: float = 0.7
    cacheable_image_fraction: float = 0.75
    page_count: int = 60
    text_only_page_fraction: float = 0.2
    uses_nosniff: bool = False
    has_stylesheets: bool = True
    side_effect_url_fraction: float = 0.05


@dataclass
class Site:
    """A single Web site: a domain plus the resources it hosts."""

    domain: str
    category: str = "uncategorised"
    resources: dict[str, Resource] = field(default_factory=dict)
    page_urls: list[URL] = field(default_factory=list)

    def add(self, resource: Resource) -> Resource:
        """Register ``resource`` on this site and return it."""
        if resource.url.host != self.domain and not resource.url.host.endswith(
            "." + self.domain
        ):
            raise ValueError(
                f"resource {resource.url} does not belong to domain {self.domain}"
            )
        self.resources[str(resource.url)] = resource
        if resource.is_page:
            self.page_urls.append(resource.url)
        return resource

    def lookup(self, url: URL | str) -> Resource | None:
        """Return the resource served at ``url``, or None for a 404."""
        return self.resources.get(str(url) if isinstance(url, URL) else url)

    @property
    def pages(self) -> list[Resource]:
        """All HTML pages hosted on this site."""
        return [self.resources[str(u)] for u in self.page_urls]

    @property
    def images(self) -> list[Resource]:
        """All images hosted on this site."""
        return [r for r in self.resources.values() if r.is_image]

    @property
    def favicon_url(self) -> URL | None:
        """The site's favicon URL, if it hosts one."""
        url = URL.parse(f"http://{self.domain}/favicon.ico")
        return url if str(url) in self.resources else None

    def images_at_most(self, limit_bytes: int) -> list[Resource]:
        """Images no larger than ``limit_bytes`` (used for Fig. 4)."""
        return [r for r in self.images if r.size_bytes <= limit_bytes]

    def resolver(self) -> Callable[[URL], Resource | None]:
        """A URL -> Resource resolver restricted to this site."""
        return self.lookup


class SiteGenerator:
    """Generates synthetic sites with paper-calibrated distributions."""

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        if isinstance(rng, np.random.Generator):
            self._rng = rng
        else:
            self._rng = np.random.default_rng(rng)

    # ------------------------------------------------------------------
    # Profiles
    # ------------------------------------------------------------------
    def sample_profile(self, domain: str, category: str = "uncategorised") -> SiteProfile:
        """Sample a :class:`SiteProfile` for ``domain``.

        The branching probabilities below are what produce the Fig. 4–6
        shapes; see the module docstring for the targets.
        """
        rng = self._rng
        # Major social-media sites are always image-rich and always expose a
        # favicon; the detection experiments (§7.2) depend on that.
        is_major_site = category == "social_media"
        hosts_images = is_major_site or rng.random() < 0.66
        if hosts_images:
            # About half of image-hosting domains (a third of all domains)
            # host hundreds of small images; the rest host a modest pool.
            if is_major_site or rng.random() < 0.48:
                image_pool_size = int(rng.integers(200, 1800))
            else:
                image_pool_size = int(rng.integers(3, 80))
            if not is_major_site and rng.random() < 0.15:
                # Some image-hosting domains serve only large photography.
                small_image_fraction = float(rng.uniform(0.0, 0.05))
            else:
                small_image_fraction = float(np.clip(rng.normal(0.72, 0.15), 0.1, 0.98))
        else:
            image_pool_size = 0
            small_image_fraction = 0.0
        if hosts_images:
            has_favicon = is_major_site or rng.random() < 0.92
        else:
            has_favicon = rng.random() < 0.10
        if not is_major_site and rng.random() < 0.06:
            # Some sites disable caching on all their images.
            cacheable_image_fraction = float(rng.uniform(0.0, 0.1))
        else:
            cacheable_image_fraction = float(np.clip(rng.normal(0.80, 0.08), 0.3, 0.98))
        return SiteProfile(
            domain=domain,
            category=category,
            has_favicon=has_favicon,
            hosts_images=hosts_images,
            image_pool_size=image_pool_size,
            small_image_fraction=small_image_fraction,
            cacheable_image_fraction=cacheable_image_fraction,
            page_count=int(rng.integers(30, 120)),
            text_only_page_fraction=float(np.clip(rng.normal(0.13, 0.05), 0.0, 0.5)),
            uses_nosniff=rng.random() < 0.35,
            has_stylesheets=rng.random() < 0.9,
            side_effect_url_fraction=float(np.clip(rng.normal(0.05, 0.03), 0.0, 0.3)),
        )

    # ------------------------------------------------------------------
    # Sites
    # ------------------------------------------------------------------
    def generate_site(
        self, domain: str, category: str = "uncategorised", profile: SiteProfile | None = None
    ) -> Site:
        """Generate a full synthetic :class:`Site` for ``domain``."""
        rng = self._rng
        profile = profile or self.sample_profile(domain, category)
        site = Site(domain=domain, category=category)
        base = URL.parse(f"http://{domain}/")

        if profile.has_favicon:
            site.add(
                Resource(
                    url=base.with_path("/favicon.ico"),
                    content_type=ContentType.IMAGE,
                    size_bytes=int(rng.integers(200, 1000)),
                    cacheable=True,
                    cache_ttl_s=86400,
                )
            )

        image_pool = self._generate_image_pool(site, base, profile)
        stylesheet_pool = self._generate_stylesheets(site, base, profile)
        script_pool = self._generate_scripts(site, base, profile)
        self._generate_pages(site, base, profile, image_pool, stylesheet_pool, script_pool)
        return site

    def generate_universe(
        self, domains: Mapping[str, str] | Iterable[str]
    ) -> dict[str, Site]:
        """Generate a site per domain.

        ``domains`` is either an iterable of domain names or a mapping of
        domain name to category label.
        """
        if isinstance(domains, Mapping):
            items = list(domains.items())
        else:
            items = [(d, "uncategorised") for d in domains]
        return {domain: self.generate_site(domain, category) for domain, category in items}

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _generate_image_pool(
        self, site: Site, base: URL, profile: SiteProfile
    ) -> list[Resource]:
        rng = self._rng
        pool: list[Resource] = []
        for index in range(profile.image_pool_size):
            if rng.random() < profile.small_image_fraction:
                # Icons, sprites, thumbnails: overwhelmingly under a few KB.
                size = int(np.clip(rng.lognormal(mean=6.3, sigma=0.7), 120, 5 * KILOBYTE))
            else:
                # Photos and banners.
                size = int(np.clip(rng.lognormal(mean=10.5, sigma=0.9), 5 * KILOBYTE, 900 * KILOBYTE))
            resource = Resource(
                url=base.with_path(f"/static/img/{index}.png"),
                content_type=ContentType.IMAGE,
                size_bytes=size,
                cacheable=rng.random() < profile.cacheable_image_fraction,
                cache_ttl_s=int(rng.integers(600, 7 * 86400)),
            )
            pool.append(site.add(resource))
        return pool

    def _generate_stylesheets(
        self, site: Site, base: URL, profile: SiteProfile
    ) -> list[Resource]:
        rng = self._rng
        if not profile.has_stylesheets:
            return []
        pool: list[Resource] = []
        for index in range(int(rng.integers(1, 6))):
            resource = Resource(
                url=base.with_path(f"/static/css/style{index}.css"),
                content_type=ContentType.STYLESHEET,
                size_bytes=int(rng.integers(1 * KILOBYTE, 80 * KILOBYTE)),
                cacheable=True,
                cache_ttl_s=86400,
            )
            pool.append(site.add(resource))
        return pool

    def _generate_scripts(
        self, site: Site, base: URL, profile: SiteProfile
    ) -> list[Resource]:
        rng = self._rng
        pool: list[Resource] = []
        for index in range(int(rng.integers(1, 8))):
            resource = Resource(
                url=base.with_path(f"/static/js/app{index}.js"),
                content_type=ContentType.SCRIPT,
                size_bytes=int(rng.integers(2 * KILOBYTE, 200 * KILOBYTE)),
                cacheable=True,
                cache_ttl_s=86400,
                nosniff=profile.uses_nosniff,
            )
            pool.append(site.add(resource))
        return pool

    def _generate_pages(
        self,
        site: Site,
        base: URL,
        profile: SiteProfile,
        image_pool: list[Resource],
        stylesheet_pool: list[Resource],
        script_pool: list[Resource],
    ) -> None:
        rng = self._rng
        favicon = site.favicon_url
        for index in range(profile.page_count):
            path = "/" if index == 0 else f"/pages/article-{index}.html"
            text_only = rng.random() < profile.text_only_page_fraction
            if text_only:
                target_weight = int(rng.integers(5 * KILOBYTE, 90 * KILOBYTE))
            else:
                # Spread page weights roughly evenly over 0–2 MB, with a
                # 10% long tail above 2 MB (paper Fig. 5).
                if rng.random() < 0.10:
                    target_weight = int(rng.uniform(2 * MEGABYTE, 8 * MEGABYTE))
                else:
                    target_weight = int(rng.uniform(120 * KILOBYTE, 2 * MEGABYTE))

            html_size = int(rng.integers(4 * KILOBYTE, 70 * KILOBYTE))
            embedded: list[URL] = []
            weight = html_size

            # Browsers fetch the favicon alongside the home page; deeper pages
            # usually find it already cached, so only the home page's HAR
            # records it.
            if favicon is not None and index == 0:
                embedded.append(favicon)

            if stylesheet_pool and not text_only:
                sheet = stylesheet_pool[int(rng.integers(0, len(stylesheet_pool)))]
                embedded.append(sheet.url)
                weight += sheet.size_bytes
            if script_pool and not text_only:
                script = script_pool[int(rng.integers(0, len(script_pool)))]
                embedded.append(script.url)
                weight += script.size_bytes

            if image_pool and not text_only:
                # Fill the page with images until we approach the target
                # weight; this yields "half of pages cache five or more
                # images" once cacheability is applied (Fig. 6).  Candidate
                # images are drawn as a random permutation so each is embedded
                # at most once.
                order = rng.permutation(len(image_pool))
                for pool_index in order:
                    if weight >= target_weight:
                        break
                    image = image_pool[int(pool_index)]
                    embedded.append(image.url)
                    weight += image.size_bytes
                # Heavy pages carry page-specific hero photography beyond the
                # shared pool; this is what pushes page weights toward the
                # paper's 0–2 MB spread (Fig. 5).
                hero_index = 0
                while weight < target_weight and hero_index < 12:
                    hero_size = int(
                        np.clip(rng.lognormal(mean=11.8, sigma=0.6), 30 * KILOBYTE, 1500 * KILOBYTE)
                    )
                    hero = Resource(
                        url=base.with_path(f"/static/img/page{index}-hero{hero_index}.jpg"),
                        content_type=ContentType.IMAGE,
                        size_bytes=hero_size,
                        cacheable=rng.random() < profile.cacheable_image_fraction,
                        cache_ttl_s=int(rng.integers(600, 7 * 86400)),
                    )
                    site.add(hero)
                    embedded.append(hero.url)
                    weight += hero.size_bytes
                    hero_index += 1
            elif image_pool and text_only and rng.random() < 0.35:
                image = image_pool[int(rng.integers(0, len(image_pool)))]
                embedded.append(image.url)
                weight += image.size_bytes
            elif not image_pool and not text_only:
                # Image-less sites still ship heavy non-image assets (fonts,
                # bundled data, archives), so their pages contribute to the
                # same 0-2 MB weight spread without affecting image counts.
                asset_index = 0
                while weight < target_weight and asset_index < 12:
                    asset_size = int(
                        np.clip(rng.lognormal(mean=11.8, sigma=0.6), 30 * KILOBYTE, 1500 * KILOBYTE)
                    )
                    asset = Resource(
                        url=base.with_path(f"/static/assets/page{index}-asset{asset_index}.bin"),
                        content_type=ContentType.OTHER,
                        size_bytes=asset_size,
                        cacheable=rng.random() < 0.5,
                        cache_ttl_s=int(rng.integers(600, 7 * 86400)),
                    )
                    site.add(asset)
                    embedded.append(asset.url)
                    weight += asset.size_bytes
                    asset_index += 1

            page = Resource(
                url=base.with_path(path),
                content_type=ContentType.HTML,
                size_bytes=html_size,
                cacheable=False,
                has_side_effects=rng.random() < profile.side_effect_url_fraction,
                embedded_urls=tuple(embedded),
            )
            site.add(page)
