"""Simulated search engine used for URL-pattern expansion.

The Pattern Expander (paper §5.2) turns a URL pattern such as "everything on
foo.com" into a concrete sample of URLs by scraping site-restricted search
results (the ``site:`` operator) from a popular search engine, capped at 50
results per pattern.  This class provides the same interface over the
simulated :class:`~repro.web.server.WebUniverse`.
"""

from __future__ import annotations

import numpy as np

from repro.web.server import WebUniverse
from repro.web.url import URL, URLPattern


class SearchEngine:
    """Site-restricted search over the simulated Web."""

    def __init__(
        self, universe: WebUniverse, rng: np.random.Generator | int | None = None
    ) -> None:
        self._universe = universe
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def site_search(self, domain: str, limit: int = 50) -> list[URL]:
        """Return up to ``limit`` page URLs indexed under ``domain``.

        The search engine only indexes HTML pages (as real engines do); the
        home page, when present, always ranks first, and the remaining pages
        are a random-but-deterministic sample of the site's pages, modelling
        the fact that a ``site:`` query surfaces an arbitrary subset of a
        large site.
        """
        site = self._universe.site(domain)
        if site is None:
            return []
        pages = list(site.page_urls)
        if not pages:
            return []
        home = [u for u in pages if u.path == "/"]
        rest = [u for u in pages if u.path != "/"]
        order = self._rng.permutation(len(rest))
        ranked = home + [rest[i] for i in order]
        return ranked[:limit]

    def expand_pattern(self, pattern: URLPattern, limit: int = 50) -> list[URL]:
        """Expand ``pattern`` into concrete URLs (the Pattern Expander step).

        Exact patterns are returned as-is; domain and prefix patterns are
        expanded through site-restricted search and filtered to URLs that the
        pattern actually matches.
        """
        if pattern.is_trivial():
            return [URL.parse(pattern.value)]
        candidates = self.site_search(pattern.anchor_domain, limit=limit)
        return [url for url in candidates if pattern.matches(url)][:limit]

    def is_indexed(self, domain: str) -> bool:
        """True if the engine has any pages indexed for ``domain``."""
        return bool(self.site_search(domain, limit=1))
