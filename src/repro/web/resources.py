"""Web resource model.

A :class:`Resource` is anything a Web server can return for a URL: an HTML
page, an image, a style sheet, a script, or opaque media.  Encore's task
generator (paper §5.2) decides which measurement-task types can test a
resource by inspecting exactly the attributes modelled here: content type,
size, cacheability headers, MIME-sniffing protection, and — for pages — the
set of embedded resources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

from repro.web.url import URL

KILOBYTE = 1024
MEGABYTE = 1024 * 1024

#: Maximum size of a TCP payload Encore considers deliverable "in one packet"
#: when arguing about single-packet images (paper Fig. 4 discussion).
SINGLE_PACKET_BYTES = 1460


class ContentType(enum.Enum):
    """Coarse content types, matching what the Task Generator inspects."""

    HTML = "text/html"
    IMAGE = "image/png"
    STYLESHEET = "text/css"
    SCRIPT = "application/javascript"
    VIDEO = "video/mp4"
    FLASH = "application/x-shockwave-flash"
    FONT = "font/woff2"
    JSON = "application/json"
    OTHER = "application/octet-stream"

    @property
    def is_page(self) -> bool:
        return self is ContentType.HTML

    @property
    def is_renderable_media(self) -> bool:
        """True for content a browser renders without executing it."""
        return self in (ContentType.IMAGE, ContentType.VIDEO, ContentType.FONT)


@dataclass
class Resource:
    """A single Web resource hosted at a URL.

    Attributes:
        url: where the resource lives.
        content_type: coarse MIME classification.
        size_bytes: transfer size of the resource body.
        cacheable: whether response headers allow browser caching.
        cache_ttl_s: freshness lifetime when cacheable.
        nosniff: whether the server sends ``X-Content-Type-Options: nosniff``.
        valid_syntax: whether the body parses as its advertised type (matters
            for the script task type: an invalid script still fires ``onload``
            on Chrome if the HTTP status was 200).
        has_side_effects: whether fetching the URL mutates server state
            (paper §4.2 requires tasks to avoid such URLs).
        embedded_urls: for HTML pages, the URLs the page references.
    """

    url: URL
    content_type: ContentType
    size_bytes: int
    cacheable: bool = False
    cache_ttl_s: int = 0
    nosniff: bool = False
    valid_syntax: bool = True
    has_side_effects: bool = False
    embedded_urls: tuple[URL, ...] = ()

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("resource size must be non-negative")
        if self.cacheable and self.cache_ttl_s <= 0:
            # A cacheable resource with no TTL behaves as a session cache entry.
            self.cache_ttl_s = 3600
        if self.embedded_urls and not self.content_type.is_page:
            raise ValueError("only HTML pages may embed other resources")
        self.embedded_urls = tuple(self.embedded_urls)

    # ------------------------------------------------------------------
    # Predicates used by the Task Generator (paper Table 1 / §5.2)
    # ------------------------------------------------------------------
    @property
    def is_image(self) -> bool:
        return self.content_type is ContentType.IMAGE

    @property
    def is_stylesheet(self) -> bool:
        return self.content_type is ContentType.STYLESHEET

    @property
    def is_script(self) -> bool:
        return self.content_type is ContentType.SCRIPT

    @property
    def is_page(self) -> bool:
        return self.content_type.is_page

    def is_small_image(self, limit_bytes: int = KILOBYTE) -> bool:
        """True if the resource is an image no larger than ``limit_bytes``."""
        return self.is_image and self.size_bytes <= limit_bytes

    def fits_single_packet(self) -> bool:
        """True if the resource body fits in a single TCP segment."""
        return self.size_bytes <= SINGLE_PACKET_BYTES

    @property
    def is_heavy_media(self) -> bool:
        """True for flash/video objects the Task Generator always rejects."""
        return self.content_type in (ContentType.VIDEO, ContentType.FLASH)

    def describe(self) -> str:
        """A short human-readable description used in logs and reports."""
        return (
            f"{self.content_type.name.lower()} {self.url} "
            f"({self.size_bytes} B{', cacheable' if self.cacheable else ''})"
        )


def total_page_weight(page: Resource, resolver) -> int:
    """Total bytes a browser transfers to render ``page``.

    ``resolver`` maps a :class:`URL` to the :class:`Resource` it serves (or
    ``None`` if unknown). The page's own size is included, matching how the
    paper computes "page size" for Fig. 5 (the sum of sizes of all objects a
    page loads).
    """
    if not page.is_page:
        raise ValueError("total_page_weight requires an HTML page")
    total = page.size_bytes
    for url in page.embedded_urls:
        resource = resolver(url)
        if resource is not None:
            total += resource.size_bytes
    return total


def embedded_resources(page: Resource, resolver) -> list[Resource]:
    """Resolve and return the resources a page embeds, skipping unknown URLs."""
    if not page.is_page:
        raise ValueError("embedded_resources requires an HTML page")
    found: list[Resource] = []
    for url in page.embedded_urls:
        resource = resolver(url)
        if resource is not None:
            found.append(resource)
    return found


def cacheable_images(resources: Iterable[Resource]) -> list[Resource]:
    """Filter ``resources`` down to cacheable images (paper Fig. 6)."""
    return [r for r in resources if r.is_image and r.cacheable]
