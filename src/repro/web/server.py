"""Simulated Web servers and the universe of sites.

The :class:`WebUniverse` is the registry of every site that exists in a
simulation: the potentially censored measurement targets, the origin sites
that host Encore, and Encore's own coordination / collection servers.  A
:class:`WebServer` answers HTTP requests for one or more sites, returning an
:class:`HTTPResponse` that carries the headers Encore's tasks care about
(status, content type, caching, ``nosniff``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.web.resources import ContentType, Resource
from repro.web.sites import Site
from repro.web.url import URL


@dataclass(frozen=True)
class HTTPResponse:
    """An HTTP response as observed by a browser."""

    status: int
    content_type: ContentType | None
    size_bytes: int
    cacheable: bool = False
    cache_ttl_s: int = 0
    nosniff: bool = False
    resource: Resource | None = None
    is_block_page: bool = False

    @property
    def ok(self) -> bool:
        """True for a 2xx response."""
        return 200 <= self.status < 300

    @classmethod
    def not_found(cls) -> "HTTPResponse":
        """A 404 response with a small HTML error body."""
        return cls(status=404, content_type=ContentType.HTML, size_bytes=512)

    @classmethod
    def block_page(cls, size_bytes: int = 2048) -> "HTTPResponse":
        """A censor-injected block page (status 200 but substituted content)."""
        return cls(
            status=200,
            content_type=ContentType.HTML,
            size_bytes=size_bytes,
            is_block_page=True,
        )

    @classmethod
    def for_resource(cls, resource: Resource) -> "HTTPResponse":
        """A 200 response serving ``resource``."""
        return cls(
            status=200,
            content_type=resource.content_type,
            size_bytes=resource.size_bytes,
            cacheable=resource.cacheable,
            cache_ttl_s=resource.cache_ttl_s,
            nosniff=resource.nosniff,
            resource=resource,
        )


class WebServer:
    """Serves the resources of one or more sites.

    A server also has an IP address, which the censorship substrate uses for
    IP-based blocking.
    """

    def __init__(self, ip_address: str, sites: Iterable[Site] | None = None) -> None:
        self.ip_address = ip_address
        self._sites: dict[str, Site] = {}
        self.online = True
        for site in sites or ():
            self.host_site(site)

    def host_site(self, site: Site) -> None:
        """Start serving ``site`` from this server."""
        self._sites[site.domain] = site

    @property
    def domains(self) -> list[str]:
        """Domains served by this server."""
        return sorted(self._sites)

    def site_for_host(self, host: str) -> Site | None:
        """Return the site matching ``host`` (exact or subdomain match)."""
        if host in self._sites:
            return self._sites[host]
        for domain, site in self._sites.items():
            if host.endswith("." + domain):
                return site
        return None

    def handle(self, url: URL) -> HTTPResponse:
        """Answer an HTTP request for ``url``."""
        if not self.online:
            return HTTPResponse(status=503, content_type=ContentType.HTML, size_bytes=256)
        site = self.site_for_host(url.host)
        if site is None:
            return HTTPResponse.not_found()
        resource = site.lookup(url)
        if resource is None:
            return HTTPResponse.not_found()
        return HTTPResponse.for_resource(resource)


class WebUniverse:
    """The full set of sites and servers that exist in a simulation."""

    def __init__(self) -> None:
        self._sites: dict[str, Site] = {}
        self._servers: dict[str, WebServer] = {}
        self._domain_to_ip: dict[str, str] = {}
        self._next_ip_suffix = 1

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _allocate_ip(self) -> str:
        suffix = self._next_ip_suffix
        self._next_ip_suffix += 1
        return f"198.51.{suffix // 256}.{suffix % 256}"

    def add_site(self, site: Site, ip_address: str | None = None) -> WebServer:
        """Register ``site``, hosting it on a (possibly new) server."""
        if site.domain in self._sites:
            raise ValueError(f"domain {site.domain} already registered")
        ip_address = ip_address or self._allocate_ip()
        server = self._servers.get(ip_address)
        if server is None:
            server = WebServer(ip_address)
            self._servers[ip_address] = server
        server.host_site(site)
        self._sites[site.domain] = site
        self._domain_to_ip[site.domain] = ip_address
        return server

    def add_sites(self, sites: Iterable[Site]) -> None:
        """Register several sites, each on its own server."""
        for site in sites:
            self.add_site(site)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __contains__(self, domain: str) -> bool:
        return self._resolve_domain(domain) is not None

    def __iter__(self) -> Iterator[Site]:
        return iter(self._sites.values())

    def __len__(self) -> int:
        return len(self._sites)

    @property
    def domains(self) -> list[str]:
        return sorted(self._sites)

    def _resolve_domain(self, host: str) -> str | None:
        if host in self._sites:
            return host
        for domain in self._sites:
            if host.endswith("." + domain):
                return domain
        return None

    def site(self, domain: str) -> Site | None:
        """The site registered for ``domain`` (or a parent domain)."""
        resolved = self._resolve_domain(domain)
        return self._sites.get(resolved) if resolved else None

    def ip_for_host(self, host: str) -> str | None:
        """The IP address serving ``host``, or None if the host is unknown."""
        resolved = self._resolve_domain(host)
        return self._domain_to_ip.get(resolved) if resolved else None

    def server_for_ip(self, ip_address: str) -> WebServer | None:
        """The server listening at ``ip_address``."""
        return self._servers.get(ip_address)

    def server_for_host(self, host: str) -> WebServer | None:
        """The server hosting ``host``."""
        ip_address = self.ip_for_host(host)
        return self._servers.get(ip_address) if ip_address else None

    def lookup_resource(self, url: URL) -> Resource | None:
        """Resolve ``url`` to the resource it serves without any censorship."""
        site = self.site(url.host)
        return site.lookup(url) if site else None

    def resolver(self):
        """A URL -> Resource resolver over the whole universe."""
        return self.lookup_resource

    def take_offline(self, domain: str) -> None:
        """Mark the server hosting ``domain`` as offline (site outage)."""
        server = self.server_for_host(domain)
        if server is None:
            raise KeyError(f"unknown domain {domain}")
        server.online = False

    def bring_online(self, domain: str) -> None:
        """Bring the server hosting ``domain`` back online."""
        server = self.server_for_host(domain)
        if server is None:
            raise KeyError(f"unknown domain {domain}")
        server.online = True
