"""Headless browser used by the measurement pipeline (PhantomJS analogue).

The Target Fetcher (paper §5.2) renders each candidate URL in a headless
browser hosted at an *uncensored* vantage point (the authors used servers at
Georgia Tech) and records a HAR file.  This class renders pages directly
against the :class:`~repro.web.server.WebUniverse`, bypassing any censors,
which matches the paper's assumption that the crawl vantage is unfiltered.
"""

from __future__ import annotations

import numpy as np

from repro.web.har import HAR, HAREntry
from repro.web.server import WebUniverse
from repro.web.url import URL


class HeadlessBrowser:
    """Renders pages against the simulated Web and records HAR files."""

    def __init__(
        self,
        universe: WebUniverse,
        rng: np.random.Generator | int | None = None,
        base_rtt_ms: float = 40.0,
        bandwidth_bytes_per_ms: float = 1250.0,
    ) -> None:
        self._universe = universe
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._base_rtt_ms = base_rtt_ms
        self._bandwidth_bytes_per_ms = bandwidth_bytes_per_ms

    # ------------------------------------------------------------------
    def _fetch_time_ms(self, size_bytes: int) -> float:
        """A simple latency + transfer-time model for crawl-side fetches."""
        rtt = self._base_rtt_ms * (1.0 + 0.2 * float(self._rng.random()))
        transfer = size_bytes / self._bandwidth_bytes_per_ms
        return rtt + transfer

    def render(self, url: URL | str) -> HAR:
        """Render ``url`` and return the recorded :class:`HAR`.

        If the URL does not resolve to a page, the HAR records the failure
        with the appropriate status and no entries; the Task Generator skips
        such HARs.
        """
        page_url = url if isinstance(url, URL) else URL.parse(url)
        server = self._universe.server_for_host(page_url.host)
        if server is None:
            return HAR(page_url=page_url, page_status=0)
        response = server.handle(page_url)
        har = HAR(
            page_url=page_url,
            page_status=response.status,
            page_has_side_effects=bool(
                response.resource is not None and response.resource.has_side_effects
            ),
        )
        if not response.ok or response.resource is None:
            return har
        page = response.resource
        har.add(HAREntry.from_resource(page, self._fetch_time_ms(page.size_bytes)))
        if not page.is_page:
            return har
        for embedded_url in page.embedded_urls:
            embedded_server = self._universe.server_for_host(embedded_url.host)
            if embedded_server is None:
                har.add(
                    HAREntry(
                        url=embedded_url,
                        status=0,
                        content_type=None,
                        size_bytes=0,
                        time_ms=self._base_rtt_ms,
                    )
                )
                continue
            embedded_response = embedded_server.handle(embedded_url)
            if embedded_response.ok and embedded_response.resource is not None:
                har.add(
                    HAREntry.from_resource(
                        embedded_response.resource,
                        self._fetch_time_ms(embedded_response.size_bytes),
                    )
                )
            else:
                har.add(
                    HAREntry(
                        url=embedded_url,
                        status=embedded_response.status,
                        content_type=embedded_response.content_type,
                        size_bytes=embedded_response.size_bytes,
                        time_ms=self._fetch_time_ms(embedded_response.size_bytes),
                    )
                )
        return har

    def render_many(self, urls) -> list[HAR]:
        """Render every URL in ``urls`` and return the HARs in order."""
        return [self.render(url) for url in urls]
