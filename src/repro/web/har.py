"""HTTP Archive (HAR) model.

The paper's Target Fetcher (§5.2, Fig. 3) renders each candidate URL in a
headless browser and records a HAR file: the set of resources the page loads,
their sizes, timings, and the headers of each request and response.  The Task
Generator then reads those HARs to decide which measurement-task types can
test each resource.  This module models the subset of the HAR 1.2 format that
the Task Generator needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.web.resources import ContentType, Resource
from repro.web.url import URL


@dataclass(frozen=True)
class HAREntry:
    """One request/response pair recorded while rendering a page."""

    url: URL
    status: int
    content_type: ContentType | None
    size_bytes: int
    time_ms: float
    cacheable: bool = False
    nosniff: bool = False

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def is_image(self) -> bool:
        return self.content_type is ContentType.IMAGE

    @property
    def is_cacheable_image(self) -> bool:
        return self.is_image and self.cacheable

    @classmethod
    def from_resource(cls, resource: Resource, time_ms: float) -> "HAREntry":
        """Build an entry from a successfully fetched resource."""
        return cls(
            url=resource.url,
            status=200,
            content_type=resource.content_type,
            size_bytes=resource.size_bytes,
            time_ms=time_ms,
            cacheable=resource.cacheable,
            nosniff=resource.nosniff,
        )


@dataclass
class HAR:
    """A recorded page load: the page URL plus every entry fetched for it."""

    page_url: URL
    entries: list[HAREntry] = field(default_factory=list)
    page_status: int = 200
    page_has_side_effects: bool = False

    def add(self, entry: HAREntry) -> None:
        self.entries.append(entry)

    @property
    def ok(self) -> bool:
        """True if the page itself loaded successfully."""
        return 200 <= self.page_status < 300

    @property
    def total_size_bytes(self) -> int:
        """Sum of all object sizes — the paper's "page size" (Fig. 5)."""
        return sum(entry.size_bytes for entry in self.entries)

    @property
    def total_time_ms(self) -> float:
        return sum(entry.time_ms for entry in self.entries)

    @property
    def images(self) -> list[HAREntry]:
        return [entry for entry in self.entries if entry.is_image]

    @property
    def cacheable_images(self) -> list[HAREntry]:
        """Cacheable images, excluding the page's own entry (Fig. 6)."""
        return [entry for entry in self.entries if entry.is_cacheable_image]

    def images_at_most(self, limit_bytes: int) -> list[HAREntry]:
        return [entry for entry in self.images if entry.size_bytes <= limit_bytes]

    def entries_of_type(self, content_type: ContentType) -> list[HAREntry]:
        return [entry for entry in self.entries if entry.content_type is content_type]

    def loads_heavy_media(self) -> bool:
        """True if the page loads flash or video objects (Task Generator rejects these)."""
        return any(
            entry.content_type in (ContentType.FLASH, ContentType.VIDEO)
            for entry in self.entries
        )


def merge_domain_images(hars: Iterable[HAR]) -> dict[str, HAREntry]:
    """Collect the distinct images observed across ``hars``, keyed by URL.

    Used to compute per-domain image counts for Fig. 4: the same icon embedded
    by fifty pages counts once.
    """
    images: dict[str, HAREntry] = {}
    for har in hars:
        for entry in har.images:
            images.setdefault(str(entry.url), entry)
    return images
