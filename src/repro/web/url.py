"""URL, origin, and URL-pattern models.

Encore reasons about three granularities of Web identifiers:

* a full :class:`URL` (scheme, host, port, path, query);
* an :class:`Origin` (scheme, host, port) — the unit that browsers'
  same-origin policy compares (paper §3.2);
* a :class:`URLPattern` — either a single URL, an entire domain, or a URL
  prefix — the unit in which measurement targets are specified (paper §5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

_DEFAULT_PORTS = {"http": 80, "https": 443}


class URLError(ValueError):
    """Raised when a string cannot be parsed as a URL."""


@dataclass(frozen=True)
class Origin:
    """A Web origin as defined by the same-origin policy: scheme, host, port."""

    scheme: str
    host: str
    port: int

    def __str__(self) -> str:
        default = _DEFAULT_PORTS.get(self.scheme)
        if default == self.port:
            return f"{self.scheme}://{self.host}"
        return f"{self.scheme}://{self.host}:{self.port}"

    def same_origin(self, other: "Origin") -> bool:
        """Return True if ``other`` is the same origin (scheme, host, port)."""
        return (
            self.scheme == other.scheme
            and self.host == other.host
            and self.port == other.port
        )


@dataclass(frozen=True)
class URL:
    """A parsed URL.

    Only the parts Encore needs are modelled: scheme, host, port, path and
    query string. Fragments are dropped at parse time because they never reach
    the network.
    """

    scheme: str
    host: str
    port: int
    path: str = "/"
    query: str = ""

    @classmethod
    def parse(cls, raw: str, default_scheme: str = "http") -> "URL":
        """Parse ``raw`` into a :class:`URL`.

        Accepts scheme-relative URLs (``//host/path``), which the paper's
        measurement snippets use so that tasks inherit the page's scheme.
        """
        if not raw or not isinstance(raw, str):
            raise URLError(f"not a URL: {raw!r}")
        text = raw.strip()
        if text.startswith("//"):
            text = f"{default_scheme}:{text}"
        if "://" in text:
            scheme, rest = text.split("://", 1)
        else:
            scheme, rest = default_scheme, text
        scheme = scheme.lower()
        if scheme not in ("http", "https"):
            raise URLError(f"unsupported scheme in {raw!r}")
        rest = rest.split("#", 1)[0]
        if "/" in rest:
            hostport, pathquery = rest.split("/", 1)
            pathquery = "/" + pathquery
        else:
            hostport, pathquery = rest, "/"
        if not hostport:
            raise URLError(f"missing host in {raw!r}")
        if ":" in hostport:
            host, port_text = hostport.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError as exc:
                raise URLError(f"bad port in {raw!r}") from exc
        else:
            host, port = hostport, _DEFAULT_PORTS[scheme]
        if "?" in pathquery:
            path, query = pathquery.split("?", 1)
        else:
            path, query = pathquery, ""
        host = host.lower()
        if not host or host.startswith(".") or host.endswith("."):
            raise URLError(f"bad host in {raw!r}")
        return cls(scheme=scheme, host=host, port=port, path=path or "/", query=query)

    @property
    def origin(self) -> Origin:
        """The URL's origin (scheme, host, port)."""
        return Origin(self.scheme, self.host, self.port)

    @property
    def domain(self) -> str:
        """The registered domain, approximated as the last two host labels."""
        labels = self.host.split(".")
        if len(labels) <= 2:
            return self.host
        return ".".join(labels[-2:])

    def __str__(self) -> str:
        base = f"{self.origin}{self.path}"
        if self.query:
            return f"{base}?{self.query}"
        return base

    def with_path(self, path: str, query: str = "") -> "URL":
        """Return a copy of this URL with a different path (and query)."""
        if not path.startswith("/"):
            path = "/" + path
        return URL(self.scheme, self.host, self.port, path, query)

    def is_cross_origin(self, other: "URL") -> bool:
        """Return True if ``other`` lives on a different origin than this URL."""
        return not self.origin.same_origin(other.origin)


@dataclass(frozen=True)
class URLPattern:
    """A measurement-target pattern (paper §5.1).

    Patterns come in three kinds:

    * ``exact`` — a single URL;
    * ``domain`` — every URL whose host equals the domain or is a subdomain;
    * ``prefix`` — every URL that starts with the given prefix.
    """

    kind: str
    value: str
    category: str = "uncategorised"

    _KINDS = ("exact", "domain", "prefix")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown pattern kind {self.kind!r}")
        if not self.value:
            raise ValueError("empty pattern value")

    @classmethod
    def exact(cls, url: str, category: str = "uncategorised") -> "URLPattern":
        """Pattern matching a single URL."""
        return cls("exact", str(URL.parse(url)), category)

    @classmethod
    def domain(cls, domain: str, category: str = "uncategorised") -> "URLPattern":
        """Pattern matching every URL hosted on ``domain`` or its subdomains."""
        return cls("domain", domain.lower().strip("."), category)

    @classmethod
    def prefix(cls, prefix: str, category: str = "uncategorised") -> "URLPattern":
        """Pattern matching every URL that begins with ``prefix``."""
        return cls("prefix", str(URL.parse(prefix)), category)

    def matches(self, url: URL | str) -> bool:
        """Return True if ``url`` falls inside this pattern."""
        parsed = url if isinstance(url, URL) else URL.parse(url)
        if self.kind == "exact":
            return str(parsed) == self.value
        if self.kind == "domain":
            host = parsed.host
            return host == self.value or host.endswith("." + self.value)
        prefix = self.value
        return str(parsed).startswith(prefix)

    @property
    def anchor_domain(self) -> str:
        """The domain this pattern is anchored to (used for site: expansion)."""
        if self.kind == "domain":
            return self.value
        return URL.parse(self.value).host

    def is_trivial(self) -> bool:
        """True if the pattern already denotes a single URL (no expansion needed)."""
        return self.kind == "exact"

    def __str__(self) -> str:
        return f"{self.kind}:{self.value}"
