"""Synthetic "high value" measurement-target list.

The paper's feasibility analysis (§6.1) uses "a list of domains and URLs that
are 'high value' for censorship measurement according to Herdict and its
partners", containing "over 200 URL patterns, of which only 178 were online"
at analysis time.  Most entries are either likely filtering targets (human
rights, press freedom) or sites whose filtering would cause substantial
disruption (major social media).  This module generates a deterministic
synthetic list with the same size and category mix; a handful of domains are
fixed by name because the country censor presets reference them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.url import URLPattern

#: Size of the full curated list and the online subset (paper §6.1).
TOTAL_PATTERNS = 204
ONLINE_PATTERNS = 178


@dataclass(frozen=True)
class TargetListEntry:
    """One entry of the high-value list."""

    pattern: URLPattern
    online: bool

    @property
    def domain(self) -> str:
        return self.pattern.anchor_domain

    @property
    def category(self) -> str:
        return self.pattern.category


#: Domains that other parts of the reproduction reference by name: the three
#: the paper actually measured (§7.2) and the targets of the country censor
#: presets.
HIGH_VALUE_DOMAINS: dict[str, str] = {
    "facebook.com": "social_media",
    "twitter.com": "social_media",
    "youtube.com": "social_media",
    "pressfreedom-intl.org": "press_freedom",
    "rights-watch.org": "human_rights",
    "blasphemy-report.org": "religious_content",
    "circumvention-tools.net": "circumvention",
    "independent-journal.net": "independent_news",
    "northern-news.org": "independent_news",
    "filesharing-index.net": "file_sharing",
}

#: Category mix for the synthetic remainder of the list (weights sum to 1).
_CATEGORY_MIX: list[tuple[str, float]] = [
    ("human_rights", 0.22),
    ("press_freedom", 0.16),
    ("independent_news", 0.18),
    ("political_opposition", 0.12),
    ("circumvention", 0.08),
    ("social_media", 0.06),
    ("religious_content", 0.06),
    ("lgbt_rights", 0.05),
    ("file_sharing", 0.04),
    ("blogging_platform", 0.03),
]

_TLD_BY_CATEGORY = {
    "human_rights": "org",
    "press_freedom": "org",
    "independent_news": "net",
    "political_opposition": "org",
    "circumvention": "net",
    "social_media": "com",
    "religious_content": "org",
    "lgbt_rights": "org",
    "file_sharing": "net",
    "blogging_platform": "com",
}


def _synthetic_domains(count: int) -> list[tuple[str, str]]:
    """Deterministically named (domain, category) pairs for the list body."""
    # Round-robin over categories proportionally to the mix so the composition
    # is stable regardless of count.
    expanded: list[str] = []
    for category, weight in _CATEGORY_MIX:
        expanded.extend([category] * max(1, round(weight * 100)))
    domains: list[tuple[str, str]] = []
    per_category_counter: dict[str, int] = {}
    index = 0
    while len(domains) < count:
        category = expanded[index % len(expanded)]
        index += 1
        serial = per_category_counter.get(category, 0)
        per_category_counter[category] = serial + 1
        tld = _TLD_BY_CATEGORY[category]
        domain = f"{category.replace('_', '-')}-{serial:03d}.{tld}"
        domains.append((domain, category))
    return domains


def build_high_value_list(
    total: int = TOTAL_PATTERNS, online: int = ONLINE_PATTERNS
) -> list[TargetListEntry]:
    """Build the synthetic high-value target list.

    The first ``online`` entries are marked online (reachable in the simulated
    universe); the remainder model the paper's stale list entries whose sites
    had gone offline by analysis time.
    """
    if online > total:
        raise ValueError("online count cannot exceed total count")
    named = list(HIGH_VALUE_DOMAINS.items())
    synthetic_needed = total - len(named)
    domains = named + _synthetic_domains(synthetic_needed)
    entries: list[TargetListEntry] = []
    for position, (domain, category) in enumerate(domains[:total]):
        entries.append(
            TargetListEntry(
                pattern=URLPattern.domain(domain, category=category),
                online=position < online,
            )
        )
    return entries


def online_domains(entries: list[TargetListEntry] | None = None) -> dict[str, str]:
    """Mapping of online domain -> category, for building the simulated Web."""
    entries = entries if entries is not None else build_high_value_list()
    return {entry.domain: entry.category for entry in entries if entry.online}
