"""Country metadata used by the client-population substrate.

The numbers below are calibrated to what the paper reports rather than to any
external dataset: visit shares reproduce the §6.2 demographics of a typical
origin site (US-dominant, ~16% of visits from countries with well-known Web
filtering) and the §7 measurement-volume ordering (at least 1,000
measurements from China, India, the United Kingdom, and Brazil; more than 100
from Egypt, South Korea, Iran, Pakistan, Turkey, and Saudi Arabia), while the
link-quality mixes drive realistic failure noise (e.g. India's unreliable
connectivity behind the ~5% false-positive rate of §7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.latency import LinkQuality


@dataclass(frozen=True)
class CountryProfile:
    """Static per-country characteristics."""

    code: str
    name: str
    visit_share: float
    well_known_filtering: bool = False
    #: Mix of link-quality presets clients in this country draw from,
    #: as (preset name, probability) pairs summing to 1.
    link_mix: tuple[tuple[str, float], ...] = (("broadband", 0.7), ("mobile", 0.3))

    def link_presets(self) -> list[tuple[LinkQuality, float]]:
        """Resolve the link mix into concrete :class:`LinkQuality` presets."""
        factories = {
            "broadband": LinkQuality.broadband,
            "mobile": LinkQuality.mobile,
            "unreliable": LinkQuality.unreliable,
            "campus": LinkQuality.campus,
            "local": LinkQuality.local,
        }
        return [(factories[name](), prob) for name, prob in self.link_mix]


_RELIABLE = (("broadband", 0.75), ("mobile", 0.2), ("campus", 0.05))
_MIXED = (("broadband", 0.5), ("mobile", 0.4), ("unreliable", 0.1))
_UNRELIABLE = (("broadband", 0.25), ("mobile", 0.4), ("unreliable", 0.35))

#: Named countries with explicit calibrated shares.  ``well_known_filtering``
#: marks the countries the paper cites as having well-known Web filtering
#: policies (§6.2: India, China, Pakistan, the UK, South Korea) plus the
#: countries whose filtering §7 discusses.
_NAMED_COUNTRIES: list[CountryProfile] = [
    CountryProfile("US", "United States", 0.400, False, _RELIABLE),
    CountryProfile("IN", "India", 0.052, True, _UNRELIABLE),
    CountryProfile("CN", "China", 0.050, True, _MIXED),
    CountryProfile("GB", "United Kingdom", 0.040, True, _RELIABLE),
    CountryProfile("BR", "Brazil", 0.038, False, _MIXED),
    CountryProfile("DE", "Germany", 0.030, False, _RELIABLE),
    CountryProfile("CA", "Canada", 0.028, False, _RELIABLE),
    CountryProfile("FR", "France", 0.022, False, _RELIABLE),
    CountryProfile("JP", "Japan", 0.020, False, _RELIABLE),
    CountryProfile("AU", "Australia", 0.018, False, _RELIABLE),
    CountryProfile("KR", "South Korea", 0.016, True, _RELIABLE),
    CountryProfile("PK", "Pakistan", 0.015, True, _UNRELIABLE),
    CountryProfile("RU", "Russia", 0.015, True, _MIXED),
    CountryProfile("IR", "Iran", 0.012, True, _MIXED),
    CountryProfile("EG", "Egypt", 0.011, True, _UNRELIABLE),
    CountryProfile("TR", "Turkey", 0.011, True, _MIXED),
    CountryProfile("SA", "Saudi Arabia", 0.010, True, _RELIABLE),
    CountryProfile("NL", "Netherlands", 0.010, False, _RELIABLE),
    CountryProfile("IT", "Italy", 0.010, False, _RELIABLE),
    CountryProfile("ES", "Spain", 0.010, False, _RELIABLE),
    CountryProfile("MX", "Mexico", 0.009, False, _MIXED),
    CountryProfile("ID", "Indonesia", 0.009, True, _UNRELIABLE),
    CountryProfile("NG", "Nigeria", 0.008, False, _UNRELIABLE),
    CountryProfile("VN", "Vietnam", 0.008, True, _MIXED),
    CountryProfile("TH", "Thailand", 0.007, True, _MIXED),
    CountryProfile("PL", "Poland", 0.007, False, _RELIABLE),
    CountryProfile("SE", "Sweden", 0.006, False, _RELIABLE),
    CountryProfile("AR", "Argentina", 0.006, False, _MIXED),
    CountryProfile("ZA", "South Africa", 0.005, False, _MIXED),
    CountryProfile("MY", "Malaysia", 0.005, True, _MIXED),
]

#: Total number of countries the campaign observes (paper §7: 170 countries).
TOTAL_COUNTRIES = 170


def _long_tail_countries() -> list[CountryProfile]:
    """Synthetic small countries filling out the long tail to 170 total."""
    remaining = TOTAL_COUNTRIES - len(_NAMED_COUNTRIES)
    named_share = sum(c.visit_share for c in _NAMED_COUNTRIES)
    tail_share = max(0.0, 1.0 - named_share)
    per_country = tail_share / remaining
    tail = []
    for index in range(remaining):
        code = f"X{index:02d}"
        tail.append(
            CountryProfile(
                code=code,
                name=f"Long-tail country {index}",
                visit_share=per_country,
                well_known_filtering=False,
                link_mix=_MIXED,
            )
        )
    return tail


_ALL_COUNTRIES: list[CountryProfile] = _NAMED_COUNTRIES + _long_tail_countries()
_BY_CODE: dict[str, CountryProfile] = {c.code: c for c in _ALL_COUNTRIES}


def all_countries() -> list[CountryProfile]:
    """Every country in the model (named + long tail), 170 in total."""
    return list(_ALL_COUNTRIES)


def country(code: str) -> CountryProfile:
    """The profile for ``code``; raises KeyError for unknown codes."""
    return _BY_CODE[code]


#: The five countries §6.2 names when computing the "16% of visitors reside
#: in countries with well-known Web filtering policies" statistic.
SECTION_62_FILTERING_CODES = frozenset({"IN", "CN", "PK", "GB", "KR"})


def filtering_country_codes() -> set[str]:
    """Codes of countries with well-known Web filtering policies."""
    return {c.code for c in _ALL_COUNTRIES if c.well_known_filtering}


def visit_share_distribution() -> tuple[list[str], list[float]]:
    """(codes, normalised shares) for sampling a visitor's country."""
    codes = [c.code for c in _ALL_COUNTRIES]
    shares = [c.visit_share for c in _ALL_COUNTRIES]
    total = sum(shares)
    return codes, [s / total for s in shares]
