"""Datasets: the synthetic target list and country metadata.

The paper seeds Encore with a curated list of "high value" URL patterns from
Herdict and its partners (§5.1, §6.1) and reports measurements across 170
countries (§7).  Neither dataset can ship here, so this package generates
deterministic synthetic equivalents with the same sizes and category mixes.
"""

from repro.datasets.countries import (
    CountryProfile,
    all_countries,
    country,
    filtering_country_codes,
    visit_share_distribution,
)
from repro.datasets.herdict import HIGH_VALUE_DOMAINS, TargetListEntry, build_high_value_list

__all__ = [
    "CountryProfile",
    "all_countries",
    "country",
    "filtering_country_codes",
    "visit_share_distribution",
    "HIGH_VALUE_DOMAINS",
    "TargetListEntry",
    "build_high_value_list",
]
