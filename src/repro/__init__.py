"""repro: a reproduction of Encore (Burnett & Feamster, SIGCOMM 2015).

Encore measures Web censorship by inducing unmodified browsers to issue
cross-origin requests to potentially filtered resources and observing the
side channels browsers leave open (image ``onload``/``onerror``, style-sheet
effects, cache timing, Chrome's script semantics).  This package implements
the full system — measurement tasks, the task-generation pipeline,
scheduling, coordination and collection servers, and the statistical
filtering-detection algorithm — together with the simulated substrates the
offline reproduction needs: a synthetic Web, a network stack with censors, a
browser model, and a global client population.

Quick start::

    from repro import EncoreDeployment

    deployment = EncoreDeployment.detection_experiment(seed=1, visits=2000)
    result = deployment.run_campaign()
    report = result.detect()
    for detection in report.detections:
        print(detection.domain, detection.country_code, detection.p_value)
"""

from repro.core import (
    BinomialFilteringDetector,
    CampaignConfig,
    CampaignResult,
    CollectionServer,
    CoordinationServer,
    EncoreDeployment,
    FilteringDetection,
    Measurement,
    MeasurementTask,
    Scheduler,
    TargetList,
    TaskGenerationLimits,
    TaskGenerationPipeline,
    TaskOutcome,
    TaskPool,
    TaskResult,
    TaskType,
    execute_task,
)
from repro.population.world import World, WorldConfig

__version__ = "0.1.0"

__all__ = [
    "BinomialFilteringDetector",
    "CampaignConfig",
    "CampaignResult",
    "CollectionServer",
    "CoordinationServer",
    "EncoreDeployment",
    "FilteringDetection",
    "Measurement",
    "MeasurementTask",
    "Scheduler",
    "TargetList",
    "TaskGenerationLimits",
    "TaskGenerationPipeline",
    "TaskOutcome",
    "TaskPool",
    "TaskResult",
    "TaskType",
    "execute_task",
    "World",
    "WorldConfig",
    "__version__",
]
