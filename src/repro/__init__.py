"""repro: a reproduction of Encore (Burnett & Feamster, SIGCOMM 2015).

Encore measures Web censorship by inducing unmodified browsers to issue
cross-origin requests to potentially filtered resources and observing the
side channels browsers leave open (image ``onload``/``onerror``, style-sheet
effects, cache timing, Chrome's script semantics).  This package implements
the full system — measurement tasks, the task-generation pipeline,
scheduling, coordination and collection servers, and the statistical
filtering-detection algorithm — together with the simulated substrates the
offline reproduction needs: a synthetic Web, a network stack with censors, a
browser model, and a global client population.

Measurements are stored columnar: the collection server keeps the corpus in
a struct-of-arrays :class:`~repro.core.store.MeasurementStore` (optionally
spilling column segments to disk via ``CampaignConfig.max_rows_in_memory``),
and the analysis queries it with vectorized selections and grouped
reductions instead of looping over row lists.

Quick start::

    from repro import EncoreDeployment

    deployment = EncoreDeployment.detection_experiment(seed=1, visits=2000)
    result = deployment.run_campaign()
    report = result.detect()
    for detection in report.detections:
        print(detection.domain, detection.country_code, detection.p_value)

    # Columnar queries over the collected corpus (no row materialization):
    store = result.collection.store
    pakistan = store.select(domain="youtube.com", country_code="PK")
    print(pakistan.count, pakistan.success_rate)
    for (domain, country), (n, ok) in store.query().as_dict().items():
        print(domain, country, n, ok)

Longitudinal monitoring — the paper's headline workload — runs a campaign
as epochs over simulated days against a scripted time-varying censor policy
and detects censorship onsets/offsets online::

    from repro import LongitudinalConfig, PolicyTimeline

    timeline = PolicyTimeline().onset(6, "DE", "facebook.com")
    result = deployment.run_longitudinal(timeline, LongitudinalConfig(epochs=20))
    for event in result.events():          # vectorized CUSUM change points
        print(event.kind, event.domain, event.country_code, event.detection_lag)
    print(result.timeline_report().format())
"""

from repro.censor.policy import PolicyTimeline
from repro.core import (
    BinomialFilteringDetector,
    CampaignConfig,
    CampaignResult,
    CensorshipEvent,
    CollectionServer,
    CoordinationServer,
    CusumChangePointDetector,
    EncoreDeployment,
    FilteringDetection,
    LongitudinalConfig,
    LongitudinalResult,
    Measurement,
    MeasurementStore,
    MeasurementTask,
    Scheduler,
    TargetList,
    TaskGenerationLimits,
    TaskGenerationPipeline,
    TaskOutcome,
    TaskPool,
    TaskResult,
    TaskType,
    TimingCusumDetector,
    execute_task,
)
from repro.population.world import World, WorldConfig

__version__ = "0.1.0"

__all__ = [
    "BinomialFilteringDetector",
    "CampaignConfig",
    "CampaignResult",
    "CensorshipEvent",
    "CollectionServer",
    "CoordinationServer",
    "CusumChangePointDetector",
    "EncoreDeployment",
    "FilteringDetection",
    "LongitudinalConfig",
    "LongitudinalResult",
    "Measurement",
    "PolicyTimeline",
    "MeasurementStore",
    "MeasurementTask",
    "Scheduler",
    "TargetList",
    "TaskGenerationLimits",
    "TaskGenerationPipeline",
    "TaskOutcome",
    "TaskPool",
    "TaskResult",
    "TaskType",
    "TimingCusumDetector",
    "execute_task",
    "World",
    "WorldConfig",
    "__version__",
]
