"""Load/error events observable from the embedding page.

Browsers expose ``onload`` / ``onerror`` callbacks on embedded elements; the
absence of either (for mechanisms such as iframes) is itself an outcome that
measurement tasks must handle (paper §4.2, second requirement).
"""

from __future__ import annotations

import enum


class LoadEvent(enum.Enum):
    """The event an embedded element fires, as seen by the origin page."""

    LOAD = "load"
    ERROR = "error"
    NONE = "none"

    @property
    def succeeded(self) -> bool:
        return self is LoadEvent.LOAD

    @property
    def failed(self) -> bool:
        return self is LoadEvent.ERROR
