"""The browser engine: fetching, caching, rendering, embedding semantics.

:class:`Browser` is the client-side half of the simulation.  Measurement
tasks (``repro.core.tasks``) are expressed in terms of the primitives below —
``load_image``, ``load_stylesheet``, ``load_script``, ``render_page``, and
``iframe_probe`` — whose feedback semantics mirror what real browsers expose
to an embedding page (paper §3.2, §4.3, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.browser.cache import BrowserCache
from repro.browser.events import LoadEvent
from repro.browser.profiles import BrowserProfile
from repro.netsim.errors import FetchOutcome
from repro.netsim.latency import LinkQuality
from repro.netsim.network import Network
from repro.web.resources import ContentType
from repro.web.url import URL

#: Rendering an already-cached image takes a handful of milliseconds.
CACHED_RENDER_MIN_MS = 1.0
CACHED_RENDER_MAX_MS = 15.0


@dataclass(frozen=True)
class ResourceLoad:
    """Outcome of loading one resource, as observable by page JavaScript."""

    url: URL
    event: LoadEvent
    elapsed_ms: float
    from_cache: bool = False
    outcome: FetchOutcome | None = None

    @property
    def succeeded(self) -> bool:
        return self.event is LoadEvent.LOAD


@dataclass(frozen=True)
class StyleLoad:
    """Outcome of loading a style sheet and probing its effect."""

    url: URL
    applied: bool
    conclusive: bool
    elapsed_ms: float
    outcome: FetchOutcome | None = None


@dataclass
class PageLoad:
    """Outcome of rendering an entire page (used by the iframe task)."""

    url: URL
    ok: bool
    elapsed_ms: float
    resources_loaded: list[ResourceLoad] = field(default_factory=list)

    @property
    def loaded_urls(self) -> set[str]:
        return {str(load.url) for load in self.resources_loaded if load.succeeded}


@dataclass(frozen=True)
class IframeProbe:
    """Outcome of the iframe + cached-image-probe measurement primitive."""

    page_url: URL
    probe_url: URL
    probe_time_ms: float
    iframe_elapsed_ms: float
    probe_event: LoadEvent


class Browser:
    """A simulated browser belonging to one client."""

    def __init__(
        self,
        profile: BrowserProfile,
        link: LinkQuality,
        network: Network,
        rng: np.random.Generator,
        interceptors=(),
        now_s: float = 0.0,
    ) -> None:
        self.profile = profile
        self.link = link
        self.network = network
        self.rng = rng
        self.interceptors = tuple(interceptors)
        self.cache = BrowserCache()
        self.now_s = now_s

    # ------------------------------------------------------------------
    # Low-level fetch with caching
    # ------------------------------------------------------------------
    def _advance(self, elapsed_ms: float) -> None:
        self.now_s += elapsed_ms / 1000.0

    def _cached_render_time_ms(self) -> float:
        span = CACHED_RENDER_MAX_MS - CACHED_RENDER_MIN_MS
        return CACHED_RENDER_MIN_MS + span * float(self.rng.random())

    def fetch(self, url: URL | str, use_cache: bool = True) -> tuple[FetchOutcome | None, bool, float]:
        """Fetch ``url``; returns (outcome, from_cache, elapsed_ms).

        A cache hit short-circuits the network entirely and returns
        ``(None, True, render_time)``.
        """
        parsed = url if isinstance(url, URL) else URL.parse(url)
        if use_cache:
            entry = self.cache.lookup(parsed, self.now_s)
            if entry is not None:
                elapsed = self._cached_render_time_ms()
                self._advance(elapsed)
                return None, True, elapsed
        outcome = self.network.fetch(parsed, self.link, self.rng, self.interceptors)
        self._advance(outcome.elapsed_ms)
        if outcome.succeeded_with_content and outcome.response.cacheable:
            self.cache.store(
                parsed, outcome.response.size_bytes, outcome.response.cache_ttl_s, self.now_s
            )
        return outcome, False, outcome.elapsed_ms

    # ------------------------------------------------------------------
    # Embedding primitives (what measurement tasks call)
    # ------------------------------------------------------------------
    def load_image(self, url: URL | str, use_cache: bool = True) -> ResourceLoad:
        """Embed an image with ``<img>`` and report onload/onerror.

        ``onload`` fires only if the body both arrived and rendered as an
        image, so a censor's block page (HTML served with status 200) still
        produces ``onerror`` — the property that makes the image task's
        feedback explicit (paper §4.3.1).
        """
        parsed = url if isinstance(url, URL) else URL.parse(url)
        outcome, from_cache, elapsed = self.fetch(parsed, use_cache=use_cache)
        if from_cache:
            return ResourceLoad(parsed, LoadEvent.LOAD, elapsed, from_cache=True)
        if not self.profile.reports_image_events:
            return ResourceLoad(parsed, LoadEvent.NONE, elapsed, outcome=outcome)
        renders = (
            outcome.succeeded_with_content
            and outcome.response.content_type is ContentType.IMAGE
            and not outcome.looks_like_block_page
        )
        event = LoadEvent.LOAD if renders else LoadEvent.ERROR
        return ResourceLoad(parsed, event, elapsed, outcome=outcome)

    def load_stylesheet(self, url: URL | str) -> StyleLoad:
        """Load a style sheet in a sandboxed iframe and probe its effect.

        The task checks ``getComputedStyle`` on a probe element; the check is
        conclusive only on browsers where that introspection is reliable.
        An empty sheet applies no rules, so it cannot be verified (Table 1:
        "only non-empty style sheets").
        """
        parsed = url if isinstance(url, URL) else URL.parse(url)
        outcome, from_cache, elapsed = self.fetch(parsed)
        if not self.profile.supports_computed_style_check:
            return StyleLoad(parsed, applied=False, conclusive=False, elapsed_ms=elapsed, outcome=outcome)
        if from_cache:
            return StyleLoad(parsed, applied=True, conclusive=True, elapsed_ms=elapsed)
        applied = (
            outcome.succeeded_with_content
            and outcome.response.content_type is ContentType.STYLESHEET
            and not outcome.looks_like_block_page
            and outcome.response.size_bytes > 0
        )
        return StyleLoad(parsed, applied=applied, conclusive=True, elapsed_ms=elapsed, outcome=outcome)

    def load_script(self, url: URL | str) -> ResourceLoad:
        """Embed a resource with ``<script>`` and report onload/onerror.

        Chrome fires ``onload`` whenever the fetch completed with HTTP 200,
        regardless of whether the body is valid JavaScript (paper §4.3.2);
        other browsers fire ``onload`` only when the body executes as a
        script.  Note the Chrome semantics mean a censor's block page (served
        with status 200) is indistinguishable from success for this task
        type — a fidelity the soundness analysis cares about.
        """
        parsed = url if isinstance(url, URL) else URL.parse(url)
        outcome, from_cache, elapsed = self.fetch(parsed)
        if from_cache:
            return ResourceLoad(parsed, LoadEvent.LOAD, elapsed, from_cache=True)
        if self.profile.script_onload_on_any_200:
            # Chrome cannot tell a censor's block page from the real resource:
            # any HTTP 200 response fires onload, even substituted content.
            loaded = outcome.status == 200 and outcome.response is not None
        else:
            loaded = (
                outcome.succeeded_with_content
                and outcome.response.content_type is ContentType.SCRIPT
                and outcome.response.resource is not None
                and outcome.response.resource.valid_syntax
                and not outcome.looks_like_block_page
            )
        event = LoadEvent.LOAD if loaded else LoadEvent.ERROR
        return ResourceLoad(parsed, event, elapsed, outcome=outcome)

    def render_page(self, url: URL | str, use_cache: bool = True) -> PageLoad:
        """Fetch a page and everything it embeds (what an iframe does)."""
        parsed = url if isinstance(url, URL) else URL.parse(url)
        outcome, from_cache, elapsed = self.fetch(parsed, use_cache=use_cache)
        page_load = PageLoad(url=parsed, ok=False, elapsed_ms=elapsed)
        if from_cache:
            page_load.ok = True
            return page_load
        if not outcome.succeeded_with_content or outcome.looks_like_block_page:
            return page_load
        resource = outcome.response.resource
        if resource is None or not resource.is_page:
            return page_load
        page_load.ok = True
        for embedded_url in resource.embedded_urls:
            sub_outcome, sub_cached, sub_elapsed = self.fetch(embedded_url)
            if sub_cached:
                load = ResourceLoad(embedded_url, LoadEvent.LOAD, sub_elapsed, from_cache=True)
            else:
                succeeded = sub_outcome.succeeded_with_content and not sub_outcome.looks_like_block_page
                load = ResourceLoad(
                    embedded_url,
                    LoadEvent.LOAD if succeeded else LoadEvent.ERROR,
                    sub_elapsed,
                    outcome=sub_outcome,
                )
            page_load.resources_loaded.append(load)
            page_load.elapsed_ms += sub_elapsed
        return page_load

    def iframe_probe(self, page_url: URL | str, probe_image_url: URL | str) -> IframeProbe:
        """Load ``page_url`` in a hidden iframe, then time ``probe_image_url``.

        The iframe provides no load/error feedback across origins; instead
        the task measures how long the probe image (an image the page embeds)
        takes to load afterwards.  If the page loaded, the image is in cache
        and renders within a few milliseconds (paper §4.3.2, Fig. 7).
        """
        page = page_url if isinstance(page_url, URL) else URL.parse(page_url)
        probe = probe_image_url if isinstance(probe_image_url, URL) else URL.parse(probe_image_url)
        page_load = self.render_page(page)
        probe_load = self.load_image(probe)
        return IframeProbe(
            page_url=page,
            probe_url=probe,
            probe_time_ms=probe_load.elapsed_ms,
            iframe_elapsed_ms=page_load.elapsed_ms,
            probe_event=probe_load.event,
        )
