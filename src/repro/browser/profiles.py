"""Browser families and their measurement-relevant policies.

The paper's task scheduler must know which browser a client runs because the
script task type only works on Chrome (§4.3.2, Table 1): Chrome fires
``onload`` for a cross-origin ``<script>`` whenever the fetch returned HTTP
200, even when the body is not JavaScript, provided the server's ``nosniff``
header stops other execution.  Other browsers only fire ``onload`` when the
body actually evaluates as a script.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class BrowserFamily(enum.Enum):
    """Browser families the client population runs."""

    CHROME = "chrome"
    FIREFOX = "firefox"
    SAFARI = "safari"
    INTERNET_EXPLORER = "internet_explorer"
    OPERA = "opera"
    MOBILE_OTHER = "mobile_other"


#: Approximate market shares used when sampling a population (circa 2014,
#: when the paper's measurements were collected).
MARKET_SHARE: dict[BrowserFamily, float] = {
    BrowserFamily.CHROME: 0.48,
    BrowserFamily.FIREFOX: 0.18,
    BrowserFamily.SAFARI: 0.14,
    BrowserFamily.INTERNET_EXPLORER: 0.12,
    BrowserFamily.OPERA: 0.03,
    BrowserFamily.MOBILE_OTHER: 0.05,
}


@dataclass(frozen=True)
class BrowserProfile:
    """Per-browser capabilities that affect measurement tasks."""

    family: BrowserFamily
    #: Chrome fires script onload on any HTTP 200 (respecting nosniff).
    script_onload_on_any_200: bool
    #: Whether getComputedStyle-based style-sheet verification is reliable.
    supports_computed_style_check: bool = True
    #: Whether the browser runs JavaScript at all (tasks need it).
    javascript_enabled: bool = True
    #: Whether cross-origin image onload/onerror events are reported.
    reports_image_events: bool = True

    @property
    def supports_script_task(self) -> bool:
        """Only browsers with Chrome's 200-status semantics can run the script
        task safely and informatively (paper Table 1)."""
        return self.script_onload_on_any_200 and self.javascript_enabled

    @classmethod
    def for_family(cls, family: BrowserFamily) -> "BrowserProfile":
        """The default capability profile for a browser family."""
        return cls(
            family=family,
            script_onload_on_any_200=(family is BrowserFamily.CHROME),
            supports_computed_style_check=family is not BrowserFamily.MOBILE_OTHER,
            javascript_enabled=True,
            reports_image_events=True,
        )

    @classmethod
    def chrome(cls) -> "BrowserProfile":
        return cls.for_family(BrowserFamily.CHROME)

    @classmethod
    def firefox(cls) -> "BrowserProfile":
        return cls.for_family(BrowserFamily.FIREFOX)


def sample_profile(rng: np.random.Generator) -> BrowserProfile:
    """Sample a browser profile according to market share."""
    families = list(MARKET_SHARE)
    shares = np.array([MARKET_SHARE[f] for f in families], dtype=float)
    shares = shares / shares.sum()
    index = int(rng.choice(len(families), p=shares))
    return BrowserProfile.for_family(families[index])
