"""Browser cache model.

The inline-frame measurement task (paper §4.3.2) infers whether a page loaded
by timing a subsequent fetch of an image that page embeds: if the image is in
the browser cache, it renders within a few milliseconds.  That makes the
cache a first-class part of the measurement semantics rather than a mere
performance optimisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.web.url import URL


@dataclass
class CacheEntry:
    """A cached response body."""

    url: str
    size_bytes: int
    stored_at_s: float
    expires_at_s: float

    def fresh(self, now_s: float) -> bool:
        return now_s < self.expires_at_s


class BrowserCache:
    """A freshness-based browser cache keyed by URL."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries <= 0:
            raise ValueError("cache must allow at least one entry")
        self._entries: dict[str, CacheEntry] = {}
        self._max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, url: URL | str) -> bool:
        return str(url) in self._entries

    def store(self, url: URL | str, size_bytes: int, ttl_s: int, now_s: float) -> None:
        """Cache a response for ``ttl_s`` seconds."""
        if ttl_s <= 0:
            return
        key = str(url)
        if len(self._entries) >= self._max_entries and key not in self._entries:
            # Evict the entry closest to expiry; simple but deterministic.
            oldest = min(self._entries.values(), key=lambda e: e.expires_at_s)
            del self._entries[oldest.url]
        self._entries[key] = CacheEntry(
            url=key,
            size_bytes=size_bytes,
            stored_at_s=now_s,
            expires_at_s=now_s + ttl_s,
        )

    def lookup(self, url: URL | str, now_s: float) -> CacheEntry | None:
        """Return a fresh cache entry for ``url`` or None (recording hit/miss)."""
        key = str(url)
        entry = self._entries.get(key)
        if entry is None or not entry.fresh(now_s):
            if entry is not None:
                del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def is_cached(self, url: URL | str, now_s: float) -> bool:
        """True if ``url`` is cached and fresh, without recording a hit."""
        entry = self._entries.get(str(url))
        return entry is not None and entry.fresh(now_s)

    def evict(self, url: URL | str) -> None:
        self._entries.pop(str(url), None)

    def clear(self) -> None:
        self._entries.clear()
