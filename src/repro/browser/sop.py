"""Same-origin policy and cross-origin embedding rules.

Browsers restrict cross-origin *reads* from scripts (blocking AJAX without
CORS), but generally allow cross-origin *embedding* of images, style sheets,
scripts, and iframes (paper §3.2).  Each embedding mechanism leaks a
different amount of information back to the embedding page, which is the
side channel Encore exploits.
"""

from __future__ import annotations

import enum

from repro.web.url import Origin, URL


class EmbeddingMechanism(enum.Enum):
    """The ways a page can pull in a cross-origin resource."""

    IMG_TAG = "img"
    STYLESHEET_LINK = "stylesheet"
    SCRIPT_TAG = "script"
    IFRAME = "iframe"
    XHR = "xhr"
    EMBED = "embed"


#: Whether each mechanism may load cross-origin resources at all, absent
#: explicit CORS headers.  XHR is the notable exception (paper §4.2: "Tasks
#: cannot use XMLHttpRequest ... because default Cross-origin Resource
#: Sharing settings prevent such requests").
_CROSS_ORIGIN_ALLOWED: dict[EmbeddingMechanism, bool] = {
    EmbeddingMechanism.IMG_TAG: True,
    EmbeddingMechanism.STYLESHEET_LINK: True,
    EmbeddingMechanism.SCRIPT_TAG: True,
    EmbeddingMechanism.IFRAME: True,
    EmbeddingMechanism.EMBED: True,
    EmbeddingMechanism.XHR: False,
}

#: Whether the mechanism gives the embedding page explicit load/error
#: feedback (Table 1's "limitations" column in condensed form).
_EXPLICIT_FEEDBACK: dict[EmbeddingMechanism, bool] = {
    EmbeddingMechanism.IMG_TAG: True,
    EmbeddingMechanism.STYLESHEET_LINK: True,
    EmbeddingMechanism.SCRIPT_TAG: True,
    EmbeddingMechanism.IFRAME: False,
    EmbeddingMechanism.EMBED: False,
    EmbeddingMechanism.XHR: True,
}


def is_cross_origin(page_origin: Origin | URL, resource_url: URL) -> bool:
    """True if ``resource_url`` is cross-origin with respect to the page."""
    origin = page_origin.origin if isinstance(page_origin, URL) else page_origin
    return not origin.same_origin(resource_url.origin)


def embedding_allowed(mechanism: EmbeddingMechanism, cross_origin: bool) -> bool:
    """Whether a browser permits the given embedding.

    Same-origin embedding is always allowed; cross-origin embedding is
    allowed for every mechanism except plain XHR.
    """
    if not cross_origin:
        return True
    return _CROSS_ORIGIN_ALLOWED[mechanism]


def gives_explicit_feedback(mechanism: EmbeddingMechanism) -> bool:
    """Whether the embedding page gets an unambiguous load/error signal."""
    return _EXPLICIT_FEEDBACK[mechanism]


def usable_for_measurement(mechanism: EmbeddingMechanism, cross_origin: bool = True) -> bool:
    """Whether Encore can use the mechanism for a measurement task.

    A mechanism must both be permitted across origins and provide some
    feedback channel; iframes qualify despite lacking explicit feedback
    because the cache-timing side channel substitutes for it (paper §4.3.2).
    """
    if not embedding_allowed(mechanism, cross_origin):
        return False
    if mechanism is EmbeddingMechanism.IFRAME:
        return True
    return gives_explicit_feedback(mechanism)
