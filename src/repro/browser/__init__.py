"""Client browser substrate.

Encore runs inside unmodified Web browsers, so the fidelity of this package
is what makes the measurement-task semantics meaningful: the same-origin
policy and which cross-origin embeddings it allows (paper §3.2), per-family
differences such as Chrome's script ``onload`` behaviour (§4.3.2), the
browser cache that the inline-frame task's timing side channel relies on, and
page rendering.
"""

from repro.browser.profiles import BrowserFamily, BrowserProfile, sample_profile
from repro.browser.sop import EmbeddingMechanism, embedding_allowed, is_cross_origin
from repro.browser.cache import BrowserCache
from repro.browser.events import LoadEvent
from repro.browser.engine import Browser, PageLoad

__all__ = [
    "BrowserFamily",
    "BrowserProfile",
    "sample_profile",
    "EmbeddingMechanism",
    "embedding_allowed",
    "is_cross_origin",
    "BrowserCache",
    "LoadEvent",
    "Browser",
    "PageLoad",
]
