"""Longitudinal quality suites: onset/offset detection and per-country accuracy.

Each suite scripts a :class:`~repro.censor.policy.PolicyTimeline`, runs the
longitudinal engine over a compact pinned-country deployment (the same
scale the tier-1 longitudinal tests use — dense enough daily coverage that
the CUSUM crosses within a couple of days of a real change), grades the
events with :func:`~repro.analysis.reports.build_timeline_report`, and
reduces the scorecard to the QUALITY fields via
:meth:`~repro.analysis.reports.TimelineReport.quality_summary`.
"""

from __future__ import annotations

from repro.analysis.reports import TimelineReport
from repro.censor.policy import PolicyTimeline
from repro.core.longitudinal import LongitudinalConfig
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.obs.trace import NULL_TRACER
from repro.population.world import World, WorldConfig
from repro.scenarios.base import Scenario, register

#: The compact deployment every longitudinal suite runs: one small world,
#: every visitor pinned to the suite's country so the scripted (domain,
#: country) cells get dense daily coverage.
TARGET_DOMAINS = ("facebook.com", "youtube.com", "twitter.com")


def pinned_deployment(
    world_seed: int,
    campaign_seed: int,
    country_code: str,
    favicons_only: bool = True,
) -> EncoreDeployment:
    world = World(
        WorldConfig(
            seed=world_seed,
            target_list_total=30,
            target_list_online=24,
            origin_site_count=4,
        )
    )
    config = CampaignConfig(
        visits=200,
        include_testbed=False,
        favicons_only=favicons_only,
        target_domains=TARGET_DOMAINS,
        seed=campaign_seed,
        country_code=country_code,
    )
    return EncoreDeployment(world, config)


def _graded_run(
    timeline: PolicyTimeline,
    *,
    world_seed: int,
    campaign_seed: int,
    country_code: str,
    epochs: int,
    tracer,
) -> TimelineReport:
    deployment = pinned_deployment(world_seed, campaign_seed, country_code)
    config = LongitudinalConfig(
        epochs=epochs,
        visits_per_epoch=200,
        tracer=tracer if tracer is not NULL_TRACER else None,
    )
    return deployment.run_longitudinal(timeline, config).timeline_report()


# ----------------------------------------------------------------------
# onset-smoke: the CI fast lane's gate — one onset, ten epochs
# ----------------------------------------------------------------------
def run_onset_smoke(tracer=NULL_TRACER) -> dict:
    timeline = PolicyTimeline().onset(4, "DE", "facebook.com")
    report = _graded_run(
        timeline,
        world_seed=7,
        campaign_seed=11,
        country_code="DE",
        epochs=10,
        tracer=tracer,
    )
    return report.quality_summary()


# ----------------------------------------------------------------------
# onset-offset: the paper's headline longitudinal story, graded end to end
# ----------------------------------------------------------------------
def run_onset_offset(tracer=NULL_TRACER) -> dict:
    timeline = (
        PolicyTimeline()
        .onset(6, "DE", "facebook.com")
        .offset(14, "DE", "facebook.com")
    )
    report = _graded_run(
        timeline,
        world_seed=7,
        campaign_seed=11,
        country_code="DE",
        epochs=20,
        tracer=tracer,
    )
    return report.quality_summary()


# ----------------------------------------------------------------------
# multi-country: per-country detection accuracy across network qualities
# ----------------------------------------------------------------------
#: (country, domain, onset day, offset day | None) — countries chosen
#: *without* preset censorship of the target domains (a preset block would
#: flatten the scripted transition), spanning reliable (DE, FR) and mixed
#: (BR) network-quality mixes so per-country accuracy actually differs.
MULTI_COUNTRY_SCRIPT = (
    ("DE", "facebook.com", 5, 13),
    ("FR", "twitter.com", 7, 15),
    ("BR", "youtube.com", 9, None),
)


def run_multi_country(tracer=NULL_TRACER) -> dict:
    per_country: dict[str, dict] = {}
    combined = TimelineReport()
    for index, (country, domain, onset_day, offset_day) in enumerate(
        MULTI_COUNTRY_SCRIPT
    ):
        timeline = PolicyTimeline().onset(onset_day, country, domain)
        if offset_day is not None:
            timeline.offset(offset_day, country, domain)
        report = _graded_run(
            timeline,
            world_seed=7 + index,
            campaign_seed=11 + index,
            country_code=country,
            epochs=18,
            tracer=tracer,
        )
        per_country[country] = report.quality_summary()
        combined.matches.extend(report.matches)
        combined.false_events.extend(report.false_events)
    quality = combined.quality_summary()
    quality["countries"] = len(per_country)
    quality["per_country"] = per_country
    return quality


register(
    Scenario(
        name="onset-smoke",
        description="one scripted DE onset over ten epochs — the fast-lane gate",
        seed=11,
        kind="longitudinal",
        build=run_onset_smoke,
        smoke=True,
    )
)
register(
    Scenario(
        name="onset-offset",
        description="scripted DE block + unblock of facebook.com, graded by CUSUM lag",
        seed=11,
        kind="longitudinal",
        build=run_onset_offset,
    )
)
register(
    Scenario(
        name="multi-country",
        description="per-country onset/offset accuracy across DE/FR/BR network mixes",
        seed=11,
        kind="longitudinal",
        build=run_multi_country,
    )
)
