"""Scenario-suite harness: detection quality as trend-gated CI artifacts.

Front door::

    python -m repro.scenarios list
    python -m repro.scenarios run <suite|all> [--json] [--out DIR] [--trace DIR]
    python -m repro.scenarios diff <before> <after> [--json]

Each registered suite (see :mod:`repro.scenarios.base`) composes the
existing engines end to end against scripted ground truth and reduces the
outcome to one deterministic ``QUALITY_<suite>.json`` artifact that
``benchmarks/check_quality.py`` trend-gates in CI.
"""

from repro.scenarios.base import (
    QUALITY_SCHEMA,
    Scenario,
    get_suite,
    quality_diff,
    quality_filename,
    quality_payload,
    register,
    registered_suites,
)
from repro.scenarios.runner import (
    ScenarioOutcome,
    resolve_names,
    run_suite,
    run_suites,
)

__all__ = [
    "QUALITY_SCHEMA",
    "Scenario",
    "ScenarioOutcome",
    "get_suite",
    "quality_diff",
    "quality_filename",
    "quality_payload",
    "register",
    "registered_suites",
    "resolve_names",
    "run_suite",
    "run_suites",
]
