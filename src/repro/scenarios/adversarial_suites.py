"""Adversarial quality suites: §8 poisoning budgets against the defences.

Both suites run an honest detection campaign, then drive an
:class:`~repro.core.robustness.AdversarySweep` budget grid over it on the
columnar store path (inline executor — deterministic and 1-core friendly)
and reduce the per-budget verdicts to attack-success rates:

* ``poisoning-grid`` *fabricates* censorship of a pair the honest campaign
  does not flag, asking how large a submission/identity budget must grow
  before the naive detector — and then the reputation-filtered detector —
  reports the invented block.
* ``masking-attack`` floods success reports over a detection the honest
  campaign *genuinely makes*, asking when the detection disappears and
  whether reputation filtering restores it.
"""

from __future__ import annotations

from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.robustness import AdversarySweep
from repro.obs.trace import NULL_TRACER
from repro.population.world import World, WorldConfig
from repro.scenarios.base import Scenario, register
from repro.scenarios.longitudinal_suites import TARGET_DOMAINS


def _honest_campaign(world_seed: int, campaign_seed: int, visits: int):
    world = World(
        WorldConfig(
            seed=world_seed,
            target_list_total=30,
            target_list_online=24,
            origin_site_count=4,
        )
    )
    config = CampaignConfig(
        visits=visits,
        include_testbed=False,
        favicons_only=True,
        target_domains=TARGET_DOMAINS,
        seed=campaign_seed,
    )
    return EncoreDeployment(world, config).run_campaign()


def _sweep_quality(
    result,
    target: tuple[str, str],
    budgets: list[tuple[int, int]],
    *,
    fabricate_blocking: bool,
    seed: int,
    tracer,
) -> dict:
    sweep = AdversarySweep(
        fabricate_blocking=fabricate_blocking,
        executor="inline",
        seed=seed,
        tracer=tracer if tracer is not NULL_TRACER else None,
    )
    cells = sweep.run(result.collection, *target, budgets)
    naive_wins = [cell for cell in cells if cell.attack_succeeded_naive]
    defended_wins = [cell for cell in cells if cell.attack_succeeded_defended]
    return {
        "target_domain": target[0],
        "target_country": target[1],
        "fabricate_blocking": fabricate_blocking,
        "honest_detection": target in result.detect().detected_pairs(),
        "budgets": len(cells),
        "false_alarms": 0,  # sweeps script no transitions; present for the gate
        "attack_success_rate_naive": round(len(naive_wins) / len(cells), 6),
        "attack_success_rate_defended": round(len(defended_wins) / len(cells), 6),
        "min_budget_naive": min(
            (cell.submissions for cell in naive_wins), default=None
        ),
        "min_budget_defended": min(
            (cell.submissions for cell in defended_wins), default=None
        ),
        "cells": [
            {
                "submissions": cell.submissions,
                "identities": cell.identities,
                "naive": cell.attack_succeeded_naive,
                "defended": cell.attack_succeeded_defended,
                "dropped_rate_limited": cell.dropped_rate_limited,
                "dropped_low_reputation": cell.dropped_low_reputation,
            }
            for cell in cells
        ],
    }


# ----------------------------------------------------------------------
# poisoning-grid: invent a block of a pair the honest campaign is clean on
# ----------------------------------------------------------------------
def run_poisoning_grid(tracer=NULL_TRACER) -> dict:
    result = _honest_campaign(world_seed=7, campaign_seed=11, visits=2500)
    return _sweep_quality(
        result,
        ("facebook.com", "DE"),
        [(100, 4), (400, 8), (1600, 32)],
        fabricate_blocking=True,
        seed=5,
        tracer=tracer,
    )


# ----------------------------------------------------------------------
# masking-attack: hide a detection the honest campaign genuinely makes
# ----------------------------------------------------------------------
def run_masking_attack(tracer=NULL_TRACER) -> dict:
    # The session-test configuration: (youtube.com, PK) is a preset block
    # this campaign genuinely detects, so masking has something to hide.
    result = _honest_campaign(world_seed=7, campaign_seed=11, visits=4000)
    return _sweep_quality(
        result,
        ("youtube.com", "PK"),
        [(50, 2), (200, 8), (600, 24)],
        fabricate_blocking=False,
        seed=9,
        tracer=tracer,
    )


register(
    Scenario(
        name="poisoning-grid",
        description="fabrication budget grid: when does an invented block fool the defences",
        seed=5,
        kind="adversarial",
        build=run_poisoning_grid,
    )
)
register(
    Scenario(
        name="masking-attack",
        description="success-flood budget grid over a real (youtube.com, PK) detection",
        seed=9,
        kind="adversarial",
        build=run_masking_attack,
    )
)
