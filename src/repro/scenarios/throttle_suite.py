"""Throttle quality suite: the censorship signature success rates cannot see.

Bandwidth throttling completes every fetch, so the success-rate CUSUM stays
silent while the per-day ``elapsed_ms`` quantiles shift by the throttle
factor.  This suite scripts a throttle onset and offset, runs the
longitudinal engine with full-size image fetches (``favicons_only=False``
makes the slowdown seconds-scale, the same configuration the tier-1 timing
tests use), grades the :class:`~repro.core.inference.TimingCusumDetector`
events with :func:`~repro.analysis.reports.build_throttle_report`, and
additionally records how many events the success-rate detector emitted —
its expected silence is part of the suite's quality contract.
"""

from __future__ import annotations

from repro.censor.policy import PolicyTimeline
from repro.core.longitudinal import LongitudinalConfig
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.obs.trace import NULL_TRACER
from repro.population.world import World, WorldConfig
from repro.scenarios.base import Scenario, register
from repro.scenarios.longitudinal_suites import TARGET_DOMAINS

THROTTLE_DAY = 5
RELEASE_DAY = 13
EPOCHS = 20


def run_throttle(tracer=NULL_TRACER) -> dict:
    world = World(
        WorldConfig(
            seed=7, target_list_total=30, target_list_online=24, origin_site_count=4
        )
    )
    config = CampaignConfig(
        visits=200,
        include_testbed=False,
        favicons_only=False,
        target_domains=TARGET_DOMAINS,
        seed=31,
        country_code="DE",
    )
    deployment = EncoreDeployment(world, config)
    timeline = (
        PolicyTimeline()
        .throttle(THROTTLE_DAY, "DE", "facebook.com")
        .offset(RELEASE_DAY, "DE", "facebook.com")
    )
    result = deployment.run_longitudinal(
        timeline,
        LongitudinalConfig(
            epochs=EPOCHS,
            visits_per_epoch=200,
            tracer=tracer if tracer is not NULL_TRACER else None,
        ),
    )
    quality = result.throttle_report().quality_summary()
    # Throttled fetches complete, so the success-rate detector must stay
    # silent; any event here is a cross-detector false alarm.
    quality["success_rate_events"] = len(result.events())
    return quality


register(
    Scenario(
        name="throttle",
        description="scripted DE throttle + release of facebook.com, graded by timing CUSUM",
        seed=31,
        kind="throttle",
        build=run_throttle,
    )
)
