"""Execute registered scenario suites and write their QUALITY artifacts.

One suite run is: resolve the :class:`~repro.scenarios.base.Scenario`, run
its composition under a ``scenario`` span (suite-level telemetry rides the
PR 8 tracer — ``NULL_TRACER`` by default, so untraced runs pay nothing and
the observer-effect ban holds), wrap the returned metrics in the
``repro-quality/1`` payload, and — when an output directory is given —
write ``QUALITY_<suite>.json`` through the sanctioned atomic writer.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.core.shard import write_json_atomic
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_TRACER, TRACE_FILENAME, Tracer
from repro.scenarios.base import (
    get_suite,
    quality_filename,
    quality_payload,
    registered_suites,
)


@dataclass(frozen=True)
class ScenarioOutcome:
    """One executed suite: its payload and where (if anywhere) it landed."""

    suite: str
    payload: dict
    path: Path | None


def resolve_names(selector: str) -> tuple[str, ...]:
    """Suite names for a CLI selector: a suite name, or ``"all"``."""
    if selector == "all":
        return registered_suites()
    return (get_suite(selector).name,)


def run_suite(name: str, out_dir: str | Path | None = None, tracer=NULL_TRACER) -> ScenarioOutcome:
    """Run one registered suite; write its artifact when ``out_dir`` is set."""
    scenario = get_suite(name)
    with tracer.span(
        "scenario", suite=scenario.name, kind=scenario.kind, seed=scenario.seed
    ):
        quality = scenario.build(tracer)
    get_registry().counter("scenarios.suites_run").add(1)
    payload = quality_payload(scenario, quality)
    path = None
    if out_dir is not None:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = write_json_atomic(directory / quality_filename(scenario.name), payload)
    return ScenarioOutcome(suite=scenario.name, payload=payload, path=path)


def run_suites(
    selector: str,
    out_dir: str | Path | None = None,
    trace_dir: str | Path | None = None,
) -> list[ScenarioOutcome]:
    """Run a selector's suites in registry order; one merged trace stream."""
    names = resolve_names(selector)
    tracer = (
        Tracer(Path(trace_dir) / TRACE_FILENAME)
        if trace_dir is not None
        else NULL_TRACER
    )
    outcomes: list[ScenarioOutcome] = []
    try:
        for name in names:
            outcomes.append(run_suite(name, out_dir=out_dir, tracer=tracer))
    finally:
        tracer.record_metrics(scope="campaign")
        tracer.close()
    return outcomes


def render_outcomes(outcomes: list[ScenarioOutcome]) -> str:
    """Human-readable per-suite quality listing (scalar fields only)."""
    lines: list[str] = []
    for outcome in outcomes:
        quality = outcome.payload.get("quality", {})
        lines.append(f"{outcome.suite} [{outcome.payload.get('kind')}]:")
        for field, value in quality.items():
            if isinstance(value, (dict, list)):
                continue
            lines.append(f"  {field} = {value}")
        if outcome.path is not None:
            lines.append(f"  -> {outcome.path}")
    return "\n".join(lines)
