"""CLI front door for the scenario-suite harness.

Exit codes: 0 success, 1 operational failure (unknown suite, unreadable
artifact), 2 usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.scenarios.base import get_suite, quality_diff, registered_suites
from repro.scenarios.runner import render_outcomes, run_suites


def _cmd_list(args: argparse.Namespace) -> int:
    rows = []
    for name in registered_suites():
        scenario = get_suite(name)
        rows.append(
            {
                "suite": scenario.name,
                "kind": scenario.kind,
                "seed": scenario.seed,
                "smoke": scenario.smoke,
                "description": scenario.description,
            }
        )
    if args.json:
        print(json.dumps({"suites": rows}, indent=2, sort_keys=True))
    else:
        for row in rows:
            smoke = " [smoke]" if row["smoke"] else ""
            print(f"{row['suite']} ({row['kind']}, seed {row['seed']}){smoke}")
            print(f"  {row['description']}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        outcomes = run_suites(args.suite, out_dir=args.out, trace_dir=args.trace)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    if args.json:
        print(
            json.dumps(
                {"suites": [outcome.payload for outcome in outcomes]},
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(render_outcomes(outcomes))
    return 0


def _load_payload(path: Path) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _diff_pairs(before: Path, after: Path) -> list[tuple[Path, Path]]:
    """File/file, or directory/directory matched on QUALITY_*.json names."""
    if before.is_dir() != after.is_dir():
        raise ValueError("diff arguments must both be files or both directories")
    if not before.is_dir():
        return [(before, after)]
    names = sorted(
        {p.name for p in before.glob("QUALITY_*.json")}
        & {p.name for p in after.glob("QUALITY_*.json")}
    )
    if not names:
        raise ValueError("no QUALITY_*.json names common to both directories")
    return [(before / name, after / name) for name in names]


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        pairs = _diff_pairs(Path(args.before), Path(args.after))
        diffs = [
            quality_diff(_load_payload(b), _load_payload(a)) for b, a in pairs
        ]
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({"diffs": diffs}, indent=2, sort_keys=True))
        return 0
    for diff in diffs:
        print(f"{diff['suite']}:")
        if not diff["changed"]:
            print("  (no quality changes)")
            continue
        for name in diff["changed"]:
            entry = diff["fields"][name]
            delta = entry.get("delta")
            suffix = f" (delta {delta:+g})" if isinstance(delta, (int, float)) else ""
            print(f"  {name}: {entry['before']} -> {entry['after']}{suffix}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Run seeded scenario suites and emit QUALITY artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered suites")
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(func=_cmd_list)

    p_run = sub.add_parser("run", help="run one suite, or 'all'")
    p_run.add_argument("suite", help="suite name or 'all'")
    p_run.add_argument("--json", action="store_true", help="print payloads as JSON")
    p_run.add_argument("--out", default=None, help="write QUALITY_<suite>.json here")
    p_run.add_argument("--trace", default=None, help="write a trace stream here")
    p_run.set_defaults(func=_cmd_run)

    p_diff = sub.add_parser("diff", help="compare two QUALITY artifacts or dirs")
    p_diff.add_argument("before")
    p_diff.add_argument("after")
    p_diff.add_argument("--json", action="store_true")
    p_diff.set_defaults(func=_cmd_diff)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
