"""The scenario-suite registry and the QUALITY artifact schema.

A *scenario suite* is a named, seeded, end-to-end composition of existing
engines — a longitudinal campaign against a scripted
:class:`~repro.censor.policy.PolicyTimeline`, an
:class:`~repro.core.robustness.AdversarySweep` over an honest campaign —
that reduces to one dict of **quality metrics**: how fast and how
accurately the detectors recovered the scripted ground truth (detection-lag
CDFs, false alarms, miss rates, attack success).  Suites register here and
are executed through :mod:`repro.scenarios.runner` (front door:
``python -m repro.scenarios run <suite|all>``).

Every suite's report is wrapped by :func:`quality_payload` into the
``repro-quality/1`` schema and written as ``QUALITY_<suite>.json`` via the
sanctioned atomic writer.  The payloads carry **no timestamps or
durations** — only seeded, deterministic detection quality — so a suite's
artifact is byte-identical run to run (a property the tests pin under
:class:`~repro.obs.clock.FrozenClock`) and ``benchmarks/check_quality.py``
can trend-gate the fields exactly like ``check_regression.py`` gates the
BENCH speedups.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

#: Schema tag stamped into every QUALITY artifact.
QUALITY_SCHEMA = "repro-quality/1"

#: Suite names are kebab-case: they become artifact filenames and CLI args.
_NAME_RE = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")

_REGISTRY: dict[str, "Scenario"] = {}
_LOADED = False


@dataclass(frozen=True)
class Scenario:
    """One registered suite: identity, seed, and the composition to run."""

    #: Kebab-case suite name (CLI selector and artifact filename stem).
    name: str
    #: One-line catalog entry (also embedded in the QUALITY payload).
    description: str
    #: The seed the composition derives every campaign/world/sweep seed from.
    seed: int
    #: Workload family: ``"longitudinal"``, ``"throttle"``, or ``"adversarial"``.
    kind: str
    #: Runs the composition; receives a tracer (``NULL_TRACER`` by default)
    #: and returns the suite's quality metric dict.
    build: Callable[..., dict]
    #: Small enough for the CI fast lane's smoke gate.
    smoke: bool = False


def register(scenario: Scenario) -> Scenario:
    """Add a suite to the registry (suite modules call this at import)."""
    if not _NAME_RE.match(scenario.name):
        raise ValueError(f"scenario suite names are kebab-case: {scenario.name!r}")
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario suite {scenario.name!r} registered twice")
    _REGISTRY[scenario.name] = scenario
    return scenario


def _load_suites() -> None:
    """Import the suite modules for their registration side effects."""
    global _LOADED
    if _LOADED:
        return
    from repro.scenarios import (  # noqa: F401  (imported for registration)
        adversarial_suites,
        longitudinal_suites,
        throttle_suite,
    )

    _LOADED = True


def registered_suites() -> tuple[str, ...]:
    """Every registered suite name, sorted — the ``run all`` order."""
    _load_suites()
    return tuple(sorted(_REGISTRY))


def get_suite(name: str) -> Scenario:
    _load_suites()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario suite {name!r} (registered: {known})")


def quality_filename(suite: str) -> str:
    """The artifact filename one suite's quality report is written under."""
    return f"QUALITY_{suite}.json"


def quality_payload(scenario: Scenario, quality: dict) -> dict:
    """Wrap a suite's metrics in the versioned QUALITY artifact schema.

    Deliberately timestamp-free: the payload must be byte-identical across
    runs of the same suite + seed, so it carries only identity fields and
    the seeded quality metrics.
    """
    return {
        "schema": QUALITY_SCHEMA,
        "suite": scenario.name,
        "kind": scenario.kind,
        "seed": scenario.seed,
        "description": scenario.description,
        "quality": quality,
    }


def quality_diff(before: dict, after: dict) -> dict:
    """Field-by-field comparison of two QUALITY payloads (one suite).

    The quality sibling of ``python -m repro.obs diff``: every scalar field
    of the ``quality`` section gets a before/after entry plus a numeric
    ``delta`` where both sides are numbers; ``changed`` lists the fields
    whose value moved, so a reviewer can scan a PR's quality deltas without
    eyeballing whole artifacts.
    """
    b = before.get("quality", {}) if isinstance(before, dict) else {}
    a = after.get("quality", {}) if isinstance(after, dict) else {}
    fields: dict[str, dict] = {}
    changed: list[str] = []
    for name in sorted(set(b) | set(a)):
        old, new = b.get(name), a.get(name)
        if isinstance(old, (dict, list)) or isinstance(new, (dict, list)):
            continue  # nested detail (per-budget cells etc.) — not trended
        entry: dict[str, object] = {"before": old, "after": new}
        if (
            isinstance(old, (int, float))
            and isinstance(new, (int, float))
            and not isinstance(old, bool)
            and not isinstance(new, bool)
        ):
            entry["delta"] = round(new - old, 6)
        if old != new:
            changed.append(name)
        fields[name] = entry
    return {
        "suite": after.get("suite", before.get("suite")),
        "fields": fields,
        "changed": changed,
    }
