"""Clients: the browsers-and-people that perform Encore measurements.

A :class:`Client` bundles everything the rest of the system needs to know
about one visitor: where they are (country, ISP, IP address), what browser
they run, the quality of their access link, how long they dwell on the origin
page, and whether they are in fact automated crawler traffic (the paper's
§6.2 pilot found ~15% of "visits" were a campus security scanner).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.browser.profiles import BrowserProfile, sample_profile
from repro.datasets.countries import CountryProfile, all_countries, visit_share_distribution
from repro.netsim.latency import LinkQuality
from repro.population.geoip import GeoIPDatabase


@dataclass(frozen=True)
class Client:
    """One visitor of an origin site (a potential measurement vantage point)."""

    client_id: int
    ip_address: str
    country_code: str
    isp: str
    browser: BrowserProfile
    link: LinkQuality
    dwell_time_s: float
    is_automated: bool = False

    @property
    def can_run_task(self) -> bool:
        """Whether this visitor will execute at least one measurement task.

        Automated crawlers do not execute JavaScript (or are filtered out of
        the analysis), and near-instant bounces leave no time for the task
        script to even start; everyone else at least attempts a task (paper
        §6.2: 999 of 1,171 visits attempted one, and nearly all of the rest
        were automated traffic).
        """
        return (not self.is_automated) and self.browser.javascript_enabled and self.dwell_time_s >= 1.0

    @property
    def can_run_multiple_tasks(self) -> bool:
        """Visitors who stay over a minute can run several tasks (paper §6.2)."""
        return self.can_run_task and self.dwell_time_s >= 60.0


class ClientFactory:
    """Samples clients according to the country / browser / link models."""

    #: Fraction of raw visits that are automated traffic (the paper's pilot
    #: saw 1,171 visits of which 999 ran tasks; most of the rest were a
    #: campus security scanner).
    AUTOMATED_FRACTION = 0.145

    def __init__(
        self,
        geoip: GeoIPDatabase | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.geoip = geoip or GeoIPDatabase()
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._ids = itertools.count(1)
        self._codes, self._shares = visit_share_distribution()
        self._profiles: dict[str, CountryProfile] = {c.code: c for c in all_countries()}

    # ------------------------------------------------------------------
    def _sample_country(self) -> CountryProfile:
        index = int(self._rng.choice(len(self._codes), p=self._shares))
        return self._profiles[self._codes[index]]

    def _sample_link(self, profile: CountryProfile) -> LinkQuality:
        presets = profile.link_presets()
        probs = np.array([p for _, p in presets], dtype=float)
        probs = probs / probs.sum()
        index = int(self._rng.choice(len(presets), p=probs))
        return presets[index][0]

    def _sample_dwell_time_s(self) -> float:
        """Dwell-time distribution matching §6.2: ~45% stay >10 s, ~35% >60 s.

        A three-component mixture: bounce (< 10 s), medium (10–60 s), long
        (> 60 s) with weights 0.55 / 0.10 / 0.35.
        """
        roll = self._rng.random()
        if roll < 0.55:
            return float(self._rng.uniform(0.5, 10.0))
        if roll < 0.65:
            return float(self._rng.uniform(10.0, 60.0))
        return float(self._rng.uniform(60.0, 900.0))

    def _sample_isp(self, profile: CountryProfile) -> str:
        index = int(self._rng.integers(1, 5))
        return f"{profile.code.lower()}-isp-{index}"

    # ------------------------------------------------------------------
    def sample_client(self, country_code: str | None = None) -> Client:
        """Sample one visitor, optionally pinned to a country."""
        profile = self._profiles[country_code] if country_code else self._sample_country()
        return Client(
            client_id=next(self._ids),
            ip_address=self.geoip.allocate_ip(profile.code, self._rng),
            country_code=profile.code,
            isp=self._sample_isp(profile),
            browser=sample_profile(self._rng),
            link=self._sample_link(profile),
            dwell_time_s=self._sample_dwell_time_s(),
            is_automated=bool(self._rng.random() < self.AUTOMATED_FRACTION),
        )

    def sample_clients(self, count: int, country_code: str | None = None) -> list[Client]:
        """Sample ``count`` visitors."""
        return [self.sample_client(country_code) for _ in range(count)]
