"""Clients: the browsers-and-people that perform Encore measurements.

A :class:`Client` bundles everything the rest of the system needs to know
about one visitor: where they are (country, ISP, IP address), what browser
they run, the quality of their access link, how long they dwell on the origin
page, and whether they are in fact automated crawler traffic (the paper's
§6.2 pilot found ~15% of "visits" were a campus security scanner).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.browser.profiles import MARKET_SHARE, BrowserProfile, sample_profile
from repro.datasets.countries import CountryProfile, all_countries, visit_share_distribution
from repro.netsim.latency import LinkQuality
from repro.population.geoip import GeoIPDatabase


@dataclass(frozen=True)
class Client:
    """One visitor of an origin site (a potential measurement vantage point)."""

    client_id: int
    ip_address: str
    country_code: str
    isp: str
    browser: BrowserProfile
    link: LinkQuality
    dwell_time_s: float
    is_automated: bool = False

    @property
    def can_run_task(self) -> bool:
        """Whether this visitor will execute at least one measurement task.

        Automated crawlers do not execute JavaScript (or are filtered out of
        the analysis), and near-instant bounces leave no time for the task
        script to even start; everyone else at least attempts a task (paper
        §6.2: 999 of 1,171 visits attempted one, and nearly all of the rest
        were automated traffic).
        """
        return (not self.is_automated) and self.browser.javascript_enabled and self.dwell_time_s >= 1.0

    @property
    def can_run_multiple_tasks(self) -> bool:
        """Visitors who stay over a minute can run several tasks (paper §6.2)."""
        return self.can_run_task and self.dwell_time_s >= 60.0


@dataclass
class ClientBatch:
    """A vectorized batch of sampled clients.

    Column arrays describe every visitor of a batch at once (what the batched
    campaign runner consumes); :meth:`client` materializes an individual
    :class:`Client` on demand with exactly the same attributes the scalar
    sampling path would have produced from the same draws.
    """

    client_ids: np.ndarray
    country_codes: list[str]
    ip_addresses: list[str]
    isp_indices: np.ndarray
    browser_profiles: list[BrowserProfile]
    browser_indices: np.ndarray
    links: list[LinkQuality]
    link_indices: np.ndarray
    dwell_times_s: np.ndarray
    automated: np.ndarray
    #: Per-visit link parameters, used by the vectorized fetch engine.
    rtt_ms: np.ndarray = field(default=None)
    jitter_ms: np.ndarray = field(default=None)
    loss_rate: np.ndarray = field(default=None)
    bandwidth_kbps: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.rtt_ms is None:
            self.rtt_ms = np.array([l.rtt_ms for l in self.links], dtype=float)[self.link_indices]
            self.jitter_ms = np.array([l.jitter_ms for l in self.links], dtype=float)[self.link_indices]
            self.loss_rate = np.array([l.loss_rate for l in self.links], dtype=float)[self.link_indices]
            self.bandwidth_kbps = np.array(
                [l.bandwidth_kbps for l in self.links], dtype=float
            )[self.link_indices]

    def __len__(self) -> int:
        return len(self.ip_addresses)

    def isp(self, index: int) -> str:
        return f"{self.country_codes[index].lower()}-isp-{self.isp_indices[index]}"

    def browser(self, index: int) -> BrowserProfile:
        return self.browser_profiles[self.browser_indices[index]]

    def client(self, index: int) -> Client:
        return Client(
            client_id=int(self.client_ids[index]),
            ip_address=self.ip_addresses[index],
            country_code=self.country_codes[index],
            isp=self.isp(index),
            browser=self.browser(index),
            link=self.links[self.link_indices[index]],
            dwell_time_s=float(self.dwell_times_s[index]),
            is_automated=bool(self.automated[index]),
        )

    def clients(self) -> list[Client]:
        return [self.client(i) for i in range(len(self))]

    def slice(self, start: int, stop: int) -> "ClientBatch":
        """A view of visitors ``[start, stop)`` as a smaller batch.

        The shared lookup tables (browser profiles, link presets) are reused;
        only the per-visitor columns are sliced, so the campaign runner can
        carve a planning block into batch-sized parts without resampling.
        """
        return ClientBatch(
            client_ids=self.client_ids[start:stop],
            country_codes=self.country_codes[start:stop],
            ip_addresses=self.ip_addresses[start:stop],
            isp_indices=self.isp_indices[start:stop],
            browser_profiles=self.browser_profiles,
            browser_indices=self.browser_indices[start:stop],
            links=self.links,
            link_indices=self.link_indices[start:stop],
            dwell_times_s=self.dwell_times_s[start:stop],
            automated=self.automated[start:stop],
            rtt_ms=self.rtt_ms[start:stop],
            jitter_ms=self.jitter_ms[start:stop],
            loss_rate=self.loss_rate[start:stop],
            bandwidth_kbps=self.bandwidth_kbps[start:stop],
        )


class ClientFactory:
    """Samples clients according to the country / browser / link models."""

    #: Fraction of raw visits that are automated traffic (the paper's pilot
    #: saw 1,171 visits of which 999 ran tasks; most of the rest were a
    #: campus security scanner).
    AUTOMATED_FRACTION = 0.145

    def __init__(
        self,
        geoip: GeoIPDatabase | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.geoip = geoip or GeoIPDatabase()
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._ids = itertools.count(1)
        #: Spawned lazily on the first sample_batch call (one per field).
        self._field_rngs: list[np.random.Generator] | None = None
        self._codes, self._shares = visit_share_distribution()
        self._profiles: dict[str, CountryProfile] = {c.code: c for c in all_countries()}
        # --- Lookup tables for vectorized batch sampling -------------------
        self._shares_array = np.asarray(self._shares, dtype=float)
        self._code_index = {code: i for i, code in enumerate(self._codes)}
        self._browser_families = list(MARKET_SHARE)
        browser_shares = np.array([MARKET_SHARE[f] for f in self._browser_families], dtype=float)
        self._browser_shares = browser_shares / browser_shares.sum()
        self._browser_profiles = [BrowserProfile.for_family(f) for f in self._browser_families]
        # Distinct link mixes (there are only a handful across all countries):
        # mix tuple -> (mix id, preset index offsets, cumulative probabilities).
        self._link_presets: list[LinkQuality] = []
        self._mix_ids: dict[tuple, int] = {}
        self._mix_offsets: list[np.ndarray] = []
        self._mix_cdfs: list[np.ndarray] = []
        self._country_mix_id = np.empty(len(self._codes), dtype=np.int64)
        for i, code in enumerate(self._codes):
            mix = self._profiles[code].link_mix
            mix_id = self._mix_ids.get(mix)
            if mix_id is None:
                mix_id = len(self._mix_ids)
                self._mix_ids[mix] = mix_id
                presets = self._profiles[code].link_presets()
                offsets = []
                for preset, _ in presets:
                    offsets.append(len(self._link_presets))
                    self._link_presets.append(preset)
                probs = np.array([p for _, p in presets], dtype=float)
                self._mix_offsets.append(np.asarray(offsets, dtype=np.int64))
                self._mix_cdfs.append(np.cumsum(probs / probs.sum()))
            self._country_mix_id[i] = mix_id

    # ------------------------------------------------------------------
    def _sample_country(self) -> CountryProfile:
        index = int(self._rng.choice(len(self._codes), p=self._shares))
        return self._profiles[self._codes[index]]

    def _sample_link(self, profile: CountryProfile) -> LinkQuality:
        presets = profile.link_presets()
        probs = np.array([p for _, p in presets], dtype=float)
        probs = probs / probs.sum()
        index = int(self._rng.choice(len(presets), p=probs))
        return presets[index][0]

    def _sample_dwell_time_s(self) -> float:
        """Dwell-time distribution matching §6.2: ~45% stay >10 s, ~35% >60 s.

        A three-component mixture: bounce (< 10 s), medium (10–60 s), long
        (> 60 s) with weights 0.55 / 0.10 / 0.35.
        """
        roll = self._rng.random()
        if roll < 0.55:
            return float(self._rng.uniform(0.5, 10.0))
        if roll < 0.65:
            return float(self._rng.uniform(10.0, 60.0))
        return float(self._rng.uniform(60.0, 900.0))

    def _sample_isp(self, profile: CountryProfile) -> str:
        index = int(self._rng.integers(1, 5))
        return f"{profile.code.lower()}-isp-{index}"

    # ------------------------------------------------------------------
    def sample_client(self, country_code: str | None = None) -> Client:
        """Sample one visitor, optionally pinned to a country."""
        profile = self._profiles[country_code] if country_code else self._sample_country()
        return Client(
            client_id=next(self._ids),
            ip_address=self.geoip.allocate_ip(profile.code, self._rng),
            country_code=profile.code,
            isp=self._sample_isp(profile),
            browser=sample_profile(self._rng),
            link=self._sample_link(profile),
            dwell_time_s=self._sample_dwell_time_s(),
            is_automated=bool(self._rng.random() < self.AUTOMATED_FRACTION),
        )

    def sample_clients(self, count: int, country_code: str | None = None) -> list[Client]:
        """Sample ``count`` visitors."""
        return [self.sample_client(country_code) for _ in range(count)]

    @property
    def batch_sampling_started(self) -> bool:
        """Whether any batch has been sampled (its field streams consumed)."""
        return self._field_rngs is not None

    # ------------------------------------------------------------------
    def sample_batch(
        self,
        count: int,
        country_code: str | None = None,
        *,
        rng: np.random.Generator | None = None,
        first_id: int | None = None,
        host_base: int | None = None,
    ) -> ClientBatch:
        """Sample ``count`` visitors at once with vectorized draws.

        Field distributions are identical to :meth:`sample_client`'s (same
        country shares, link mixes, dwell mixture, browser market shares, and
        automated-traffic fraction); each field is drawn as one bulk RNG call
        instead of ``count`` scalar calls, which is where the batched
        campaign runner gets most of its sampling speedup.

        With the default arguments the factory's own sequential streams and
        counters are consumed, so successive batches continue one campaign-
        long client sequence.  The block-keyed campaign planner instead
        passes an explicit ``rng`` (field streams are spawned from it, the
        factory state is untouched), ``first_id`` (client ids numbered from
        the block's first visit), and ``host_base`` (IP addresses taken at
        the visitors' *global visit indices* inside each country's space via
        :meth:`GeoIPDatabase.ips_at`) — which together make the batch a pure
        function of its arguments, the property process-sharded campaigns
        are built on.
        """
        if rng is not None:
            (country_rng, isp_rng, browser_rng, link_rng,
             roll_rng, span_rng, automated_rng) = rng.spawn(7)
        else:
            if self._field_rngs is None:
                # One independent stream per sampled field.  Consuming each
                # field's stream sequentially makes a campaign's client sequence
                # a function of the seed alone, not of how visits are chunked
                # into batches (checkpoint/resume relies on this).
                self._field_rngs = self._rng.spawn(7)
            (country_rng, isp_rng, browser_rng, link_rng,
             roll_rng, span_rng, automated_rng) = self._field_rngs
        if country_code is not None:
            country_idx = np.full(count, self._code_index[country_code], dtype=np.int64)
        else:
            country_idx = country_rng.choice(len(self._codes), size=count, p=self._shares_array)
        codes = [self._codes[i] for i in country_idx]

        # IPs: either allocate per country in visit order, advancing the same
        # GeoIP counters the scalar path uses, or (with ``host_base``) read
        # the addresses at the visitors' global visit indices without
        # touching shared state.
        ips: list[str | None] = [None] * count
        for code_id in np.unique(country_idx):
            where = np.flatnonzero(country_idx == code_id)
            if host_base is not None:
                allocated = self.geoip.ips_at(
                    self._codes[code_id], (host_base + where).tolist()
                )
            else:
                allocated = self.geoip.allocate_ips(self._codes[code_id], len(where))
            for position, address in zip(where, allocated):
                ips[position] = address

        isp_idx = isp_rng.integers(1, 5, size=count)
        browser_idx = browser_rng.choice(
            len(self._browser_families), size=count, p=self._browser_shares
        )

        # Link quality: group by link mix and pick within each mix's CDF.
        mix_ids = self._country_mix_id[country_idx]
        link_u = link_rng.random(count)
        link_idx = np.empty(count, dtype=np.int64)
        for mix_id in np.unique(mix_ids):
            where = mix_ids == mix_id
            cdf = self._mix_cdfs[mix_id]
            picks = np.minimum(np.searchsorted(cdf, link_u[where], side="right"), len(cdf) - 1)
            link_idx[where] = self._mix_offsets[mix_id][picks]

        # Dwell times: the same three-component mixture as _sample_dwell_time_s.
        rolls = roll_rng.random(count)
        span_u = span_rng.random(count)
        dwell = np.select(
            [rolls < 0.55, rolls < 0.65],
            [0.5 + span_u * (10.0 - 0.5), 10.0 + span_u * (60.0 - 10.0)],
            default=60.0 + span_u * (900.0 - 60.0),
        )
        automated = automated_rng.random(count) < self.AUTOMATED_FRACTION
        if first_id is not None:
            ids = np.arange(first_id, first_id + count, dtype=np.int64)
        else:
            ids = np.fromiter(itertools.islice(self._ids, count), dtype=np.int64, count=count)

        return ClientBatch(
            client_ids=ids,
            country_codes=codes,
            ip_addresses=ips,
            isp_indices=isp_idx,
            browser_profiles=self._browser_profiles,
            browser_indices=browser_idx,
            links=self._link_presets,
            link_indices=link_idx,
            dwell_times_s=dwell,
            automated=automated,
        )
