"""The world model: everything a simulated Encore deployment runs inside.

A :class:`World` wires the substrates together: the synthetic Web (target
sites generated from the high-value list, origin sites, Encore's own
infrastructure domains), the network and DNS, the per-country censors, the
GeoIP database, the client factory, and the crawl-side tools (search engine
and headless browser).  Experiments, examples, and benchmarks all start by
building a ``World`` from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.browser.engine import Browser
from repro.censor.censors import CountryCensorship, build_country_censors
from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy
from repro.datasets.herdict import TargetListEntry, build_high_value_list, online_domains
from repro.netsim.network import Network
from repro.population.clients import Client, ClientFactory
from repro.population.geoip import GeoIPDatabase
from repro.web.headless import HeadlessBrowser
from repro.web.search import SearchEngine
from repro.web.server import WebUniverse
from repro.web.sites import Site, SiteGenerator
from repro.web.url import URL


#: Domains of Encore's own infrastructure.  The adversary of §3.1 may block
#: these to suppress measurement collection, which the robustness experiments
#: exercise.
COORDINATION_DOMAIN = "coordinator.encore-measurement.org"
COLLECTION_DOMAIN = "collector.encore-measurement.org"


@dataclass
class WorldConfig:
    """Parameters controlling world construction."""

    seed: int = 0
    #: How many origin sites host the Encore snippet.  The paper reports at
    #: least 17 volunteer deployments (§7).
    origin_site_count: int = 17
    #: Total / online sizes of the high-value target list (§6.1).
    target_list_total: int = 204
    target_list_online: int = 178
    #: Extra blocked domains per country, merged into the censor presets.
    extra_censored_domains: dict[str, list[str]] = field(default_factory=dict)
    #: Scripted censorship posture currently in force, per country:
    #: ``{country_code: {domain: "block" | "throttle"}}``.  The longitudinal
    #: engine swings this between epochs (and calls
    #: :meth:`World.refresh_timeline_censors`); keeping it in the config —
    #: JSON-serializable — means sharded workers that rebuild the world from
    #: the pickled config enforce the same epoch policy, and the campaign
    #: signature covers it.
    timeline_rules: dict[str, dict[str, str]] = field(default_factory=dict)
    #: Mechanism (by :class:`FilteringMechanism` value) timeline *block*
    #: rules are enforced with; throttle rules always use throttling.
    timeline_block_mechanism: str = "http_block_page"


class World:
    """A fully wired simulation environment."""

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        self.rng = np.random.default_rng(self.config.seed)

        # --- Target list and the simulated Web ---------------------------
        self.target_entries: list[TargetListEntry] = build_high_value_list(
            total=self.config.target_list_total, online=self.config.target_list_online
        )
        self.universe = WebUniverse()
        generator = SiteGenerator(rng=np.random.default_rng(self.config.seed + 1))
        self.target_sites = generator.generate_universe(online_domains(self.target_entries))
        self.universe.add_sites(self.target_sites.values())

        # --- Encore infrastructure and origin sites -----------------------
        self.origin_domains: list[str] = [
            f"origin-{index:02d}.example.edu" for index in range(self.config.origin_site_count)
        ]
        origin_generator = SiteGenerator(rng=np.random.default_rng(self.config.seed + 2))
        for domain in self.origin_domains:
            self.universe.add_site(origin_generator.generate_site(domain, category="origin"))
        self.universe.add_site(self._infrastructure_site(COORDINATION_DOMAIN))
        self.universe.add_site(self._infrastructure_site(COLLECTION_DOMAIN))

        # --- Network, censors, population ---------------------------------
        self.network = Network(self.universe)
        self.censors: dict[str, CountryCensorship] = build_country_censors(
            self.config.extra_censored_domains
        )
        self.geoip = GeoIPDatabase()
        self.clients = ClientFactory(geoip=self.geoip, rng=np.random.default_rng(self.config.seed + 3))
        if self.config.timeline_rules:
            self.refresh_timeline_censors()

        # --- Crawl-side tools ---------------------------------------------
        self.search = SearchEngine(self.universe, rng=np.random.default_rng(self.config.seed + 4))
        self.headless = HeadlessBrowser(self.universe, rng=np.random.default_rng(self.config.seed + 5))

        #: Interceptors applied to every client regardless of country
        #: (used to attach the §7.1 testbed censors).
        self.global_interceptors: list = []

    # ------------------------------------------------------------------
    @staticmethod
    def _infrastructure_site(domain: str) -> Site:
        """A minimal site for Encore's coordination / collection servers."""
        from repro.web.resources import ContentType, Resource

        site = Site(domain=domain, category="encore_infrastructure")
        base = URL.parse(f"http://{domain}/")
        site.add(
            Resource(
                url=base.with_path("/task.js"),
                content_type=ContentType.SCRIPT,
                size_bytes=2 * 1024,
                cacheable=False,
            )
        )
        site.add(
            Resource(
                url=base.with_path("/submit"),
                content_type=ContentType.JSON,
                size_bytes=64,
                cacheable=False,
            )
        )
        site.add(
            Resource(
                url=base.with_path("/"),
                content_type=ContentType.HTML,
                size_bytes=1024,
            )
        )
        return site

    # ------------------------------------------------------------------
    # Censorship plumbing
    # ------------------------------------------------------------------
    def censorship_for(self, country_code: str) -> CountryCensorship:
        """The censorship apparatus of ``country_code`` (possibly empty)."""
        return self.censors.get(country_code, CountryCensorship(country_code=country_code))

    def interceptors_for(self, client: Client) -> tuple:
        """The interceptors on ``client``'s path: country censors + globals."""
        return self.interceptors_for_country(client.country_code)

    def interceptors_for_country(self, country_code: str) -> tuple:
        """The interceptors on the path of any client in ``country_code``."""
        country = self.censorship_for(country_code)
        return tuple(country.interceptors()) + tuple(self.global_interceptors)

    def add_global_interceptor(self, interceptor) -> None:
        """Attach an interceptor to every client's path (e.g. testbed censors)."""
        self.global_interceptors.append(interceptor)

    #: Name suffixes identifying the censors managed by the timeline rules.
    _TIMELINE_BLOCK_SUFFIX = "-timeline-block"
    _TIMELINE_THROTTLE_SUFFIX = "-timeline-throttle"

    def refresh_timeline_censors(self) -> None:
        """Re-derive the per-country timeline censors from ``config.timeline_rules``.

        Each country with scripted rules carries up to two managed censors
        appended after its presets — one enforcing the hard blocks with
        ``config.timeline_block_mechanism``, one throttling — whose
        blacklists are swapped in place via
        :meth:`BlacklistPolicy.replace_domains`, so the interceptor objects
        stay stable across epochs.  Countries whose rules emptied lose their
        managed censors.  Idempotent: calling it twice with the same config
        changes nothing.
        """
        mechanism = FilteringMechanism(self.config.timeline_block_mechanism)
        suffixes = (self._TIMELINE_BLOCK_SUFFIX, self._TIMELINE_THROTTLE_SUFFIX)
        touched = set(self.config.timeline_rules) | {
            code
            for code, country in self.censors.items()
            if any(censor.name.endswith(suffixes) for censor in country.censors)
        }
        for code in sorted(touched):
            rules = self.config.timeline_rules.get(code, {})
            blocked = sorted(d for d, posture in rules.items() if posture == "block")
            throttled = sorted(d for d, posture in rules.items() if posture == "throttle")
            country = self.censors.get(code)
            if country is None:
                if not (blocked or throttled):
                    continue
                country = CountryCensorship(country_code=code)
                self.censors[code] = country
            managed = {
                censor.name: censor
                for censor in country.censors
                if censor.name.endswith(suffixes)
            }
            country.censors[:] = [
                censor for censor in country.censors if censor.name not in managed
            ]
            for domains, suffix, enforce in (
                (blocked, self._TIMELINE_BLOCK_SUFFIX, mechanism),
                (throttled, self._TIMELINE_THROTTLE_SUFFIX, FilteringMechanism.THROTTLING),
            ):
                if not domains:
                    continue
                name = f"{code.lower()}{suffix}"
                censor = managed.get(name) or Censor(
                    name=name, policy=BlacklistPolicy(), mechanism=enforce
                )
                censor.policy.replace_domains(domains)
                country.censors.append(censor)

    # ------------------------------------------------------------------
    # Client plumbing
    # ------------------------------------------------------------------
    def sample_client(self, country_code: str | None = None) -> Client:
        return self.clients.sample_client(country_code)

    def sample_client_batch(
        self,
        count: int,
        country_code: str | None = None,
        *,
        rng=None,
        first_id: int | None = None,
        host_base: int | None = None,
    ):
        """Sample a vectorized :class:`~repro.population.clients.ClientBatch`.

        ``rng``/``first_id``/``host_base`` are the block-keyed sampling
        arguments of :meth:`ClientFactory.sample_batch`: with them the batch
        is a pure function of the arguments and no world state moves.
        """
        return self.clients.sample_batch(
            count, country_code, rng=rng, first_id=first_id, host_base=host_base
        )

    def make_browser(self, client: Client, now_s: float = 0.0) -> Browser:
        """Build the simulated browser a client uses for its visit."""
        return Browser(
            profile=client.browser,
            link=client.link,
            network=self.network,
            rng=self.rng,
            interceptors=self.interceptors_for(client),
            now_s=now_s,
        )

    # ------------------------------------------------------------------
    # Ground truth helpers for evaluation
    # ------------------------------------------------------------------
    def is_filtered_for(self, url: URL | str, country_code: str) -> bool:
        """Ground truth: is ``url`` filtered for clients in ``country_code``?"""
        parsed = url if isinstance(url, URL) else URL.parse(url)
        if self.censorship_for(country_code).would_filter(parsed):
            return True
        return any(
            interceptor.would_filter(parsed)
            for interceptor in self.global_interceptors
            if hasattr(interceptor, "would_filter")
        )

    @property
    def coordination_url(self) -> URL:
        return URL.parse(f"http://{COORDINATION_DOMAIN}/task.js")

    @property
    def collection_url(self) -> URL:
        return URL.parse(f"http://{COLLECTION_DOMAIN}/submit")
