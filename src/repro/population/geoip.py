"""Synthetic IP geolocation database.

The paper uses a standard IP geolocation database (MaxMind GeoLite) to place
each measurement in a country (§7).  The analysis only needs country-level
lookups, so this module allocates deterministic /16-style blocks to each
country and provides forward (country -> fresh IP) and reverse (IP ->
country) mappings.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.countries import all_countries


class GeoIPDatabase:
    """Allocates IP blocks per country and geolocates addresses."""

    #: Number of /16 blocks allocated to each country.  Large enough that the
    #: biggest campaign in the benchmarks never exhausts a country's space.
    BLOCKS_PER_COUNTRY = 4

    def __init__(self) -> None:
        #: "a.b" prefix -> country, filled on first lookup per block.
        self._lookup_cache: dict[str, str] = {}
        self._block_to_country: dict[tuple[int, int], str] = {}
        self._country_to_blocks: dict[str, list[tuple[int, int]]] = {}
        self._next_host: dict[str, int] = {}
        first_octet = 10
        second_octet = 0
        for profile in all_countries():
            blocks = []
            for _ in range(self.BLOCKS_PER_COUNTRY):
                blocks.append((first_octet, second_octet))
                self._block_to_country[(first_octet, second_octet)] = profile.code
                second_octet += 1
                if second_octet == 256:
                    second_octet = 0
                    first_octet += 1
            self._country_to_blocks[profile.code] = blocks
            self._next_host[profile.code] = 0

    # ------------------------------------------------------------------
    def allocate_ip(self, country_code: str, rng: np.random.Generator | None = None) -> str:
        """Allocate a fresh, unique IP address inside ``country_code``'s space."""
        blocks = self._country_to_blocks.get(country_code)
        if not blocks:
            raise KeyError(f"unknown country {country_code!r}")
        host = self._next_host[country_code]
        self._next_host[country_code] = host + 1
        block = blocks[host // 65536 % len(blocks)]
        offset = host % 65536
        return f"{block[0]}.{block[1]}.{offset // 256}.{offset % 256}"

    def allocate_ips(self, country_code: str, count: int) -> list[str]:
        """Allocate ``count`` fresh IP addresses inside ``country_code``'s space.

        Equivalent to ``count`` calls to :meth:`allocate_ip`, advancing the
        same per-country counter; used by the batched campaign runner.
        """
        blocks = self._country_to_blocks.get(country_code)
        if not blocks:
            raise KeyError(f"unknown country {country_code!r}")
        start = self._next_host[country_code]
        self._next_host[country_code] = start + count
        return self._ips_for_hosts(blocks, range(start, start + count))

    def ips_at(self, country_code: str, hosts) -> list[str]:
        """Addresses at explicit host slots of ``country_code``'s space.

        A pure function of ``(country_code, host)`` — no counters move — so
        callers that already own a collision-free host numbering (the block-
        keyed campaign planner uses the global visit index) get addresses
        that are reproducible regardless of which process, or in which
        order, asks.  Hosts beyond the country's space wrap around, exactly
        like the counter-based allocator.
        """
        blocks = self._country_to_blocks.get(country_code)
        if not blocks:
            raise KeyError(f"unknown country {country_code!r}")
        return self._ips_for_hosts(blocks, hosts)

    @staticmethod
    def _ips_for_hosts(blocks: list[tuple[int, int]], hosts) -> list[str]:
        addresses = []
        for host in hosts:
            block = blocks[host // 65536 % len(blocks)]
            offset = host % 65536
            addresses.append(f"{block[0]}.{block[1]}.{offset // 256}.{offset % 256}")
        return addresses

    def lookup(self, ip_address: str) -> str | None:
        """Country code for ``ip_address``, or None for unknown space."""
        return self._lookup_prefix(ip_address.rsplit(".", 2)[0])

    def _lookup_prefix(self, prefix: str) -> str | None:
        """Country for an ``"a.b"`` block prefix (cache-through)."""
        cached = self._lookup_cache.get(prefix)
        if cached is not None:
            return cached
        parts = prefix.split(".")
        if len(parts) != 2:
            return None
        try:
            key = (int(parts[0]), int(parts[1]))
        except ValueError:
            return None
        country = self._block_to_country.get(key)
        if country is not None:
            self._lookup_cache[prefix] = country
        return country

    def lookup_batch(self, ip_addresses) -> list[str | None]:
        """Country codes for many addresses with one vectorized pass.

        Strips each address down to its ``"a.b"`` block prefix with
        vectorized string ops, resolves every *distinct* prefix against the
        allocation table once, and broadcasts the answers back — equivalent
        to (but much cheaper than) calling :meth:`lookup` per address.
        """
        addresses = (
            ip_addresses
            if isinstance(ip_addresses, np.ndarray)
            else np.asarray(ip_addresses, dtype=np.str_)
        )
        if addresses.size == 0:
            return []
        prefixes = np.char.rpartition(np.char.rpartition(addresses, ".")[..., 0], ".")[..., 0]
        # Distinct prefixes are few (a campaign sees a handful of blocks per
        # country); resolve each once through a local memo instead of paying
        # a sort-based unique over the whole batch.
        resolved: dict[str, str | None] = {}
        lookup_prefix = self._lookup_prefix
        out = []
        append = out.append
        for prefix in prefixes.tolist():
            try:
                country = resolved[prefix]
            except KeyError:
                country = resolved[prefix] = lookup_prefix(prefix)
            append(country)
        return out

    def countries(self) -> list[str]:
        return list(self._country_to_blocks)
