"""Origin-site analytics: who visits a participating page (paper §6.2).

The paper estimates who would perform Encore measurements by looking at one
month of Google Analytics data for a professor's home page: 1,171 visits,
mostly from the United States but with more than 10 visitors from each of 10
other countries, 16% of visits from countries with well-known filtering
policies, 999 visits that actually attempted a measurement task, 45% of
visitors staying longer than 10 seconds and 35% longer than a minute.  This
module generates synthetic months of visits with those marginals and computes
the same summary statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.countries import SECTION_62_FILTERING_CODES
from repro.population.clients import Client, ClientFactory


@dataclass(frozen=True)
class AnalyticsVisit:
    """One visit recorded by the origin site's analytics."""

    client: Client
    day_of_month: int

    @property
    def country_code(self) -> str:
        return self.client.country_code

    @property
    def dwell_time_s(self) -> float:
        return self.client.dwell_time_s

    @property
    def attempted_task(self) -> bool:
        return self.client.can_run_task


@dataclass
class AnalyticsMonth:
    """A month of visits plus the §6.2 summary statistics."""

    visits: list[AnalyticsVisit] = field(default_factory=list)

    @property
    def total_visits(self) -> int:
        return len(self.visits)

    @property
    def visits_by_country(self) -> Counter:
        return Counter(v.country_code for v in self.visits)

    @property
    def countries_with_at_least(self) -> dict[int, int]:
        """How many countries contributed at least N visits, for small N."""
        counts = self.visits_by_country
        return {n: sum(1 for c in counts.values() if c >= n) for n in (1, 10, 100)}

    @property
    def filtering_country_fraction(self) -> float:
        """Fraction of visits from the countries §6.2 names as having
        well-known Web filtering policies (India, China, Pakistan, the UK,
        and South Korea)."""
        if not self.visits:
            return 0.0
        return sum(
            1 for v in self.visits if v.country_code in SECTION_62_FILTERING_CODES
        ) / len(self.visits)

    @property
    def task_attempts(self) -> int:
        """Visits that attempted to run a measurement task."""
        return sum(1 for v in self.visits if v.attempted_task)

    @property
    def dwell_over_10s_fraction(self) -> float:
        if not self.visits:
            return 0.0
        return sum(1 for v in self.visits if v.dwell_time_s > 10.0) / len(self.visits)

    @property
    def dwell_over_60s_fraction(self) -> float:
        if not self.visits:
            return 0.0
        return sum(1 for v in self.visits if v.dwell_time_s > 60.0) / len(self.visits)

    def summary(self) -> dict[str, float]:
        """The §6.2 headline numbers in one dictionary."""
        return {
            "total_visits": float(self.total_visits),
            "task_attempts": float(self.task_attempts),
            "filtering_country_fraction": self.filtering_country_fraction,
            "countries_with_10_plus_visits": float(self.countries_with_at_least[10]),
            "dwell_over_10s_fraction": self.dwell_over_10s_fraction,
            "dwell_over_60s_fraction": self.dwell_over_60s_fraction,
        }


class VisitGenerator:
    """Generates synthetic analytics months for an origin site."""

    #: The paper's pilot month (February 2014) saw 1,171 visits.
    DEFAULT_MONTHLY_VISITS = 1171

    def __init__(
        self,
        factory: ClientFactory | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.factory = factory or ClientFactory(rng=self._rng)

    def generate_month(self, visits: int | None = None, days: int = 28) -> AnalyticsMonth:
        """Generate one month of visits (``visits`` defaults to the pilot's 1,171)."""
        visits = visits if visits is not None else self.DEFAULT_MONTHLY_VISITS
        month = AnalyticsMonth()
        for _ in range(visits):
            client = self.factory.sample_client()
            day = int(self._rng.integers(1, days + 1))
            month.visits.append(AnalyticsVisit(client=client, day_of_month=day))
        return month
