"""Client-population substrate.

Encore's vantage points are ordinary visitors of participating origin sites.
This package models those visitors: their countries, ISPs, browsers, access
links, dwell times, and IP addresses; the GeoIP database the analysis uses to
place measurements; the analytics-style visit generator used to reproduce the
paper's §6.2 demographics; and the :class:`~repro.population.world.World`
object that wires the whole simulated environment together.
"""

from repro.population.geoip import GeoIPDatabase
from repro.population.clients import Client, ClientFactory
from repro.population.analytics import AnalyticsMonth, AnalyticsVisit, VisitGenerator
from repro.population.world import World, WorldConfig

__all__ = [
    "GeoIPDatabase",
    "Client",
    "ClientFactory",
    "AnalyticsMonth",
    "AnalyticsVisit",
    "VisitGenerator",
    "World",
    "WorldConfig",
]
