"""The repro-lint rule catalog.

Each rule mechanically enforces one invariant a previous PR established by
hand; ``docs/invariants.md`` maps every rule to the guarantee it protects.
Rules are syntactic (pure AST, no type inference): they are written to be
exhaustive over the idioms this codebase actually uses, and anything
intentionally exempt carries a justified per-line suppression instead of
weakening the rule.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.devtools.engine import META_RULE_IDS, Finding, LintContext, SourceFile

#: np.random attributes that construct independent, seedable generators —
#: everything else on the module shares hidden global state.
_GENERATOR_FACTORIES = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Wall-clock call sites (dotted form).  ``time.perf_counter`` /
#: ``monotonic`` are allowed: durations do not leak into stored rows.
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

_BENCH_JSON_RE = re.compile(r"^BENCH_\w+\.json$")

#: The one module in ``src/repro/`` allowed to touch the wall clock
#: directly: everything else reads time through its Clock indirection so
#: tests can freeze it (see docs/observability.md).
_CLOCK_MODULE = "src/repro/obs/clock.py"


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_with_scope(tree: ast.AST) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Yield every node with the names of its enclosing functions."""
    stack: list[tuple[ast.AST, tuple[str, ...]]] = [(tree, ())]
    while stack:
        node, scope = stack.pop()
        yield node, scope
        child_scope = scope
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_scope = scope + (node.name,)
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_scope))


def _mentions_json(node: ast.AST) -> bool:
    """Whether any string constant in the subtree names a ``.json`` path."""
    return any(
        isinstance(sub, ast.Constant)
        and isinstance(sub.value, str)
        and ".json" in sub.value
        for sub in ast.walk(node)
    )


def _in_src(file: SourceFile) -> bool:
    return file.relpath.startswith("src/repro/")


def _in_core(file: SourceFile) -> bool:
    return file.relpath.startswith("src/repro/core/")


def _in_benchmarks(file: SourceFile) -> bool:
    return file.relpath.startswith("benchmarks/")


class Rule:
    """Base class: subclasses set ``id``/``summary`` and override hooks."""

    id: str = ""
    summary: str = ""

    def applies(self, file: SourceFile) -> bool:
        return True

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, file: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(self.id, file.relpath, getattr(node, "lineno", 1), message)


# ----------------------------------------------------------------------
class RngDisciplineRule(Rule):
    """All randomness must derive from configured seeds (PR 1/3 contract)."""

    id = "rng-discipline"
    summary = (
        "no unseeded/global RNG or wall-clock reads inside src/repro/; "
        "block-planning modules must derive seeds as [seed, tag, epoch, block]"
    )

    #: Modules whose every ``default_rng`` call must take the derived-seed
    #: list: their randomness must be a pure function of the campaign key,
    #: or sharded campaigns stop being row-identical to batch ones.
    BLOCK_KEYED = ("src/repro/core/runner.py", "src/repro/core/shard.py")

    def applies(self, file: SourceFile) -> bool:
        return _in_src(file)

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        block_keyed = file.relpath in self.BLOCK_KEYED
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            file,
                            node,
                            "stdlib `random` shares unseedable global state; "
                            "use np.random.default_rng with a derived seed",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        file,
                        node,
                        "stdlib `random` shares unseedable global state; "
                        "use np.random.default_rng with a derived seed",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_call(file, node, block_keyed)

    def _check_call(
        self, file: SourceFile, node: ast.Call, block_keyed: bool
    ) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted is None:
            return
        if dotted in ("np.random.default_rng", "numpy.random.default_rng"):
            if not node.args and not node.keywords:
                yield self.finding(
                    file,
                    node,
                    "unseeded default_rng() draws from OS entropy; results "
                    "become unreproducible — pass a seed derived from the "
                    "campaign configuration",
                )
            elif block_keyed and not isinstance(node.args[0], ast.List):
                yield self.finding(
                    file,
                    node,
                    "default_rng in block-planning modules must take the "
                    "derived-seed list idiom [seed, tag, epoch, block_index] "
                    "so any process can regenerate any block independently",
                )
        elif dotted.startswith(("np.random.", "numpy.random.")):
            attribute = dotted.rsplit(".", 1)[1]
            if attribute not in _GENERATOR_FACTORIES:
                yield self.finding(
                    file,
                    node,
                    f"module-level np.random.{attribute} mutates the shared "
                    "global generator; draw from an explicitly seeded "
                    "np.random.default_rng instead",
                )
        elif dotted in _WALL_CLOCK:
            if file.relpath == _CLOCK_MODULE:
                return  # the sanctioned Clock implementation itself
            yield self.finding(
                file,
                node,
                f"wall-clock call {dotted}() makes results depend on when "
                "they ran; simulated time must come from campaign "
                "configuration (time.perf_counter is fine for durations)",
            )


# ----------------------------------------------------------------------
class TelemetryHygieneRule(Rule):
    """Telemetry must stay strictly write-only (PR 8 contract).

    Two halves.  First, ``src/repro/`` may reach the stdlib ``time``
    module only through ``repro.obs.clock`` — a direct import reopens the
    wall-clock back door the Clock indirection exists to close (and makes
    the module untestable under ``FrozenClock``).  Second, no value may
    flow *out* of a tracer or metrics registry into non-obs code: the
    moment simulation logic reads telemetry back, traces-on and
    traces-off runs can diverge.  Syntactically, that means method calls
    on telemetry-named receivers must come from the write-only surface.
    """

    id = "telemetry-hygiene"
    summary = (
        "src/repro/ imports time only via repro.obs.clock, and never reads "
        "values back out of tracers or metric registries"
    )

    #: The telemetry write surface: emitting, wiring, and lifecycle.
    #: Anything else on a telemetry object is a read-back.
    WRITE_OK = {
        "span",
        "event",
        "add",
        "inc",
        "observe",
        "set",
        "set_max",
        "record_metrics",
        "counter",
        "gauge",
        "histogram",
        "close",
        "flush",
        "absorb_file",
        "absorb",
        "add_listener",
        "remove_listener",
        "record",
        "emit",
    }

    #: A receiver whose name mentions one of these is treated as a
    #: telemetry object.  Matched against the final identifier segment so
    #: ``self.tracer``, ``metrics_registry``, and ``get_registry()`` all
    #: qualify.
    _TELEMETRY_NAME = re.compile(r"tracer|metric|registry|telemetry", re.IGNORECASE)

    def applies(self, file: SourceFile) -> bool:
        return _in_src(file)

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        # obs/ is the telemetry implementation and devtools/ is tooling
        # that inspects it — neither can leak state into simulation rows.
        exempt_readback = file.relpath.startswith(
            ("src/repro/obs/", "src/repro/devtools/")
        )
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Import):
                if file.relpath == _CLOCK_MODULE:
                    continue
                for alias in node.names:
                    if alias.name == "time" or alias.name.startswith("time."):
                        yield self.finding(
                            file,
                            node,
                            "importing `time` outside repro.obs.clock bypasses "
                            "the Clock indirection, so FrozenClock tests can "
                            "no longer pin this module's timestamps; use "
                            "repro.obs.clock.monotonic / .wall",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and file.relpath != _CLOCK_MODULE:
                    yield self.finding(
                        file,
                        node,
                        "importing from `time` outside repro.obs.clock "
                        "bypasses the Clock indirection; use "
                        "repro.obs.clock.monotonic / .wall",
                    )
            elif isinstance(node, ast.Call) and not exempt_readback:
                finding = self._check_readback(file, node)
                if finding is not None:
                    yield finding

    def _check_readback(self, file: SourceFile, node: ast.Call) -> Finding | None:
        if not isinstance(node.func, ast.Attribute):
            return None
        method = node.func.attr
        if method in self.WRITE_OK:
            return None
        receiver = self._receiver_name(node.func.value)
        if receiver is None or not self._TELEMETRY_NAME.search(receiver):
            return None
        return self.finding(
            file,
            node,
            f"{receiver}.{method}() reads telemetry state back into "
            "simulation code — the observer-effect ban (telemetry is "
            "write-only outside repro.obs) keeps traced and untraced runs "
            "bit-identical",
        )

    @staticmethod
    def _receiver_name(node: ast.AST) -> str | None:
        """Final identifier segment of the receiver expression."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                return dotted.rsplit(".", 1)[-1]
        return None


# ----------------------------------------------------------------------
class AtomicJsonWriteRule(Rule):
    """Every ``.json`` write must go through ``shard.write_json_atomic``."""

    id = "atomic-json-write"
    summary = (
        "no direct json.dump / open(.., 'w') / write_text of .json paths in "
        "src/repro/ outside shard.write_json_atomic"
    )

    #: The one function allowed to touch JSON files directly.
    WRITER = "write_json_atomic"

    def applies(self, file: SourceFile) -> bool:
        return _in_src(file)

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        for node, scope in _walk_with_scope(file.tree):
            if self.WRITER in scope or not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted == "json.dump":
                yield self.finding(
                    file,
                    node,
                    "json.dump writes in place — a crash mid-write leaves a "
                    "truncated checkpoint that readers will trust; route the "
                    "payload through shard.write_json_atomic",
                )
            elif dotted in ("open", "io.open", "os.fdopen") and self._write_mode(node):
                if any(_mentions_json(arg) for arg in node.args + node.keywords):
                    yield self.finding(
                        file,
                        node,
                        "opening a .json path for writing bypasses the "
                        "scratch-file + rename protocol; use "
                        "shard.write_json_atomic",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("write_text", "write_bytes")
                and _mentions_json(node.func.value)
            ):
                yield self.finding(
                    file,
                    node,
                    f"{node.func.attr} onto a .json path is not atomic; use "
                    "shard.write_json_atomic so the file's presence stays a "
                    "trustworthy commit marker",
                )

    @staticmethod
    def _write_mode(node: ast.Call) -> bool:
        candidates = list(node.args[1:2])
        candidates.extend(kw.value for kw in node.keywords if kw.arg == "mode")
        return any(
            isinstance(c, ast.Constant)
            and isinstance(c.value, str)
            and any(flag in c.value for flag in ("w", "a", "x", "+"))
            for c in candidates
        )


# ----------------------------------------------------------------------
class OrderedIterationRule(Rule):
    """Iteration order must be deterministic where it can reach stored rows."""

    id = "ordered-iteration"
    summary = (
        "no iteration over sets or unsorted directory listings in "
        "src/repro/core/"
    )

    _WRAPPERS = {"enumerate", "list", "tuple", "reversed", "iter"}
    _FS_LISTING = {"glob", "rglob", "iterdir"}

    def applies(self, file: SourceFile) -> bool:
        return _in_core(file)

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            sources: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                sources.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                sources.extend(gen.iter for gen in node.generators)
            for source in sources:
                message = self._diagnose(source)
                if message is not None:
                    yield self.finding(file, source, message)

    def _diagnose(self, source: ast.AST) -> str | None:
        node = source
        while (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._WRAPPERS
            and node.args
        ):
            node = node.args[0]
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "sorted":
                return None
            if node.func.id in ("set", "frozenset"):
                return (
                    "iterating a set hands downstream rows a hash-order "
                    "dependent sequence; wrap the iteration in sorted(...)"
                )
        if isinstance(node, (ast.Set, ast.SetComp)):
            return (
                "iterating a set literal has arbitrary order that can leak "
                "into stored rows or manifests; wrap it in sorted(...)"
            )
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted == "os.listdir" or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._FS_LISTING
            ):
                return (
                    "directory listing order is filesystem-dependent; wrap "
                    "the listing in sorted(...) before iterating"
                )
        return None


# ----------------------------------------------------------------------
class ReferencePairingRule(Rule):
    """Every ``*_reference`` scalar path must be pinned by some test."""

    id = "reference-pairing"
    summary = (
        "every *_reference function in src/repro/core/ must be invoked by "
        "at least one test under tests/"
    )

    def applies(self, file: SourceFile) -> bool:
        return _in_core(file)

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        used = ctx.test_referenced_names()
        for node in ast.walk(file.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name.endswith("_reference")
                and node.name not in used
            ):
                yield self.finding(
                    file,
                    node,
                    f"{node.name} is a scalar reference no test invokes — "
                    "the vectorized twin is unpinned; add an equivalence "
                    "test under tests/ (or delete the dead reference)",
                )


# ----------------------------------------------------------------------
class SegmentStreamingRule(Rule):
    """Segment iteration belongs to the store and the query kernel alone.

    The query kernel (PR 9) is the one engine that may walk a store's
    sealed segments and pending chunks: it owns the fold-once watermark,
    the mask offsets, and the spill streaming.  A reduction that re-rolls
    its own segment loop elsewhere silently forks those invariants — it
    rescans history every call and bypasses the incremental fold state —
    so reaching for the segment surface outside ``store.py``/``query.py``
    is a finding, not a style choice.
    """

    id = "segment-streaming"
    summary = (
        "no hand-rolled segment loops outside src/repro/core/store.py and "
        "query.py; express reductions as store.query()/repro.core.query"
    )

    ALLOWED = ("src/repro/core/store.py", "src/repro/core/query.py")
    _ATTRS = ("_segments", "_segment_chunks", "_segment_parts", "load_columns")

    def applies(self, file: SourceFile) -> bool:
        return _in_src(file) and file.relpath not in self.ALLOWED

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Attribute) and node.attr in self._ATTRS:
                yield self.finding(
                    file,
                    node,
                    f"`.{node.attr}` re-rolls a segment loop the query "
                    "kernel already streams (and skips its fold-once "
                    "watermark); express the reduction through "
                    "store.query(...) or a repro.core.query aggregate",
                )


# ----------------------------------------------------------------------
class WorkerPickleSafetyRule(Rule):
    """Work shipped to process pools must survive pickling."""

    id = "worker-pickle-safety"
    summary = (
        "no lambdas, nested functions, or bound methods handed to process "
        "pools or multiprocessing.Process"
    )

    _SUBMITTERS = {"submit", "apply_async"}
    _MAPPERS = {"map", "imap", "imap_unordered", "starmap"}

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        nested = {
            node.name
            for node, scope in _walk_with_scope(file.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and scope
        }
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            candidate = self._work_argument(node)
            if candidate is None:
                continue
            message = self._diagnose(candidate, nested)
            if message is not None:
                yield self.finding(file, candidate, message)

    def _work_argument(self, node: ast.Call) -> ast.AST | None:
        if isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            pool_like = isinstance(receiver, ast.Name) and (
                "pool" in receiver.id.lower() or "executor" in receiver.id.lower()
            )
            if pool_like and node.func.attr in self._SUBMITTERS | self._MAPPERS:
                if node.args:
                    return node.args[0]
        dotted = _dotted(node.func)
        if dotted is not None and dotted.split(".")[-1] == "Process":
            for keyword in node.keywords:
                if keyword.arg == "target":
                    return keyword.value
        return None

    @staticmethod
    def _diagnose(candidate: ast.AST, nested: set[str]) -> str | None:
        if isinstance(candidate, ast.Lambda):
            return (
                "lambdas cannot be pickled to worker processes; hoist the "
                "work into a module-level function"
            )
        if isinstance(candidate, ast.Name) and candidate.id in nested:
            return (
                f"nested function {candidate.id!r} cannot be pickled to "
                "worker processes; hoist it to module level"
            )
        if (
            isinstance(candidate, ast.Attribute)
            and isinstance(candidate.value, ast.Name)
            and candidate.value.id in ("self", "cls")
        ):
            return (
                "bound methods drag the whole instance through pickle (or "
                "fail outright); ship a module-level function plus a "
                "payload dict instead"
            )
        return None


# ----------------------------------------------------------------------
class BenchHygieneRule(Rule):
    """BENCH-writing benchmarks must be slow-marked and regression-gated."""

    id = "bench-hygiene"
    summary = (
        "every benchmarks/test_bench_*.py writing a BENCH_*.json must carry "
        "the slow marker and register its key in check_regression.py"
    )

    def applies(self, file: SourceFile) -> bool:
        return _in_benchmarks(file) and file.name.startswith("test_bench_")

    def check(self, file: SourceFile, ctx: LintContext) -> Iterator[Finding]:
        literals = [
            (node.value, node.lineno)
            for node in ast.walk(file.tree)
            if isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _BENCH_JSON_RE.match(node.value)
        ]
        if not literals:
            return
        registered = ctx.registered_bench_keys()
        for name, line in literals:
            if name not in registered:
                yield Finding(
                    self.id,
                    file.relpath,
                    line,
                    f"{name} is not a RATIO_FIELDS key in "
                    "benchmarks/check_regression.py, so the scheduled "
                    "regression gate will never trend-gate it",
                )
        if not self._slow_marked(file, ctx):
            yield Finding(
                self.id,
                file.relpath,
                literals[0][1],
                "module writes BENCH results but carries no slow marker: it "
                "is exempt from conftest auto-marking (SMOKE_MODULES) and "
                "has no explicit pytest.mark.slow, so the timing assertions "
                "run in the fast CI lane",
            )

    @staticmethod
    def _slow_marked(file: SourceFile, ctx: LintContext) -> bool:
        smoke = ctx.smoke_modules()
        if smoke is not None and file.name not in smoke:
            return True  # conftest auto-marks every non-smoke bench module
        return any(
            _dotted(node) == "pytest.mark.slow" for node in ast.walk(file.tree)
        )


RULES: tuple[Rule, ...] = (
    RngDisciplineRule(),
    TelemetryHygieneRule(),
    AtomicJsonWriteRule(),
    OrderedIterationRule(),
    ReferencePairingRule(),
    SegmentStreamingRule(),
    WorkerPickleSafetyRule(),
    BenchHygieneRule(),
)


def all_rule_ids(rules: Iterable[Rule] = RULES) -> set[str]:
    """Registry rule ids plus the engine's meta rules (for suppressions)."""
    return {rule.id for rule in rules} | set(META_RULE_IDS)
