"""The repro-lint engine: file scanning, suppressions, and rule dispatch.

The engine is deliberately dependency-free (``ast`` + ``re`` only) so the
linter can run first in CI, before any toolchain install beyond Python
itself.  It parses every ``.py`` file under the requested roots once,
attaches per-line suppressions, and hands each file to every registered
rule; cross-file facts (which names the test suite touches, which BENCH
keys the regression gate registers) live on the shared
:class:`LintContext` and are computed lazily, once per run.

Suppression syntax (one line, trailing or standalone)::

    risky_call()  # repro-lint: disable=rule-id -- why this is exempt
    # repro-lint: disable=rule-a,rule-b -- why the next line is exempt
    risky_call()

A standalone suppression comment applies to the next non-comment line; a
trailing one applies to its own line.  The justification after ``--`` is
mandatory, unknown rule ids are rejected, and a suppression that matches
no finding is itself reported (``unused-suppression``) so stale exemptions
cannot linger after the code they excused is gone.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

#: Meta rule ids emitted by the engine itself (not by registry rules).
PARSE_ERROR = "parse-error"
BAD_SUPPRESSION = "bad-suppression"
UNUSED_SUPPRESSION = "unused-suppression"
META_RULE_IDS = (PARSE_ERROR, BAD_SUPPRESSION, UNUSED_SUPPRESSION)

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_\-, ]+?)"
    r"\s*(?:--\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation: where it is and why it matters."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class Suppression:
    """A parsed ``# repro-lint: disable=...`` comment."""

    line: int            # line the comment sits on
    target_line: int     # line whose findings it suppresses
    rules: tuple[str, ...]
    justification: str | None
    used_rules: set[str] = field(default_factory=set)


class SourceFile:
    """One parsed file plus its suppressions, as rules see it."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.parse_failure: str | None = None
        try:
            self.tree: ast.Module | None = ast.parse(text)
        except SyntaxError as error:
            self.tree = None
            self.parse_failure = f"line {error.lineno}: {error.msg}"
        self.suppressions = _parse_suppressions(text, self.lines)
        self._by_target: dict[int, list[Suppression]] = {}
        for suppression in self.suppressions:
            self._by_target.setdefault(suppression.target_line, []).append(suppression)

    @property
    def name(self) -> str:
        return self.path.name

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether a finding of ``rule`` at ``line`` is suppressed (marks use)."""
        hit = False
        for suppression in self._by_target.get(line, ()):
            if rule in suppression.rules:
                suppression.used_rules.add(rule)
                hit = True
        return hit


def _parse_suppressions(text: str, lines: Sequence[str]) -> list[Suppression]:
    """Suppressions from real COMMENT tokens (strings never match)."""
    suppressions = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions  # unparseable files already get a parse-error
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        index, column = token.start
        rules = tuple(
            part.strip() for part in match.group("rules").split(",") if part.strip()
        )
        standalone = lines[index - 1][:column].strip() == ""
        target = _next_code_line(lines, index) if standalone else index
        suppressions.append(
            Suppression(
                line=index,
                target_line=target,
                rules=rules,
                justification=match.group("why"),
            )
        )
    return suppressions


def _next_code_line(lines: Sequence[str], comment_line: int) -> int:
    """The first line after ``comment_line`` that holds code (1-indexed)."""
    for index in range(comment_line, len(lines)):
        stripped = lines[index].strip()
        if stripped and not stripped.startswith("#"):
            return index + 1
    return comment_line


class LintContext:
    """Cross-file facts shared by every rule during one run."""

    def __init__(self, root: Path, files: Sequence[SourceFile]) -> None:
        self.root = root
        self.files = list(files)
        self.by_relpath = {f.relpath: f for f in self.files}
        self._test_names: set[str] | None = None
        self._smoke_modules: set[str] | None = None
        self._bench_keys: set[str] | None = None

    # ------------------------------------------------------------------
    def _benchmark_file(self, name: str) -> SourceFile | None:
        """``benchmarks/<name>`` from the scanned set, else read off disk."""
        scanned = self.by_relpath.get(f"benchmarks/{name}")
        if scanned is not None:
            return scanned
        path = self.root / "benchmarks" / name
        if not path.is_file():
            return None
        return SourceFile(path, f"benchmarks/{name}", path.read_text())

    def test_referenced_names(self) -> set[str]:
        """Every identifier and attribute name the test suite mentions.

        The reference-pairing rule checks ``*_reference`` definitions
        against this set: a name absent here is a scalar reference no test
        ever pins the vectorized path to.
        """
        if self._test_names is None:
            names: set[str] = set()
            tests_dir = self.root / "tests"
            if tests_dir.is_dir():
                for path in sorted(tests_dir.rglob("*.py")):
                    try:
                        tree = ast.parse(path.read_text())
                    except (OSError, SyntaxError):
                        continue
                    for node in ast.walk(tree):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
                        elif isinstance(node, ast.Attribute):
                            names.add(node.attr)
            self._test_names = names
        return self._test_names

    def smoke_modules(self) -> set[str] | None:
        """``SMOKE_MODULES`` from ``benchmarks/conftest.py``, or ``None``.

        ``None`` means there is no conftest auto-marking at all, so every
        BENCH-writing module needs an explicit ``pytest.mark.slow``.
        """
        if self._smoke_modules is None:
            conftest = self._benchmark_file("conftest.py")
            if conftest is None or conftest.tree is None:
                self._smoke_modules = None
            else:
                self._smoke_modules = _string_collection(
                    conftest.tree, "SMOKE_MODULES"
                )
        return self._smoke_modules

    def registered_bench_keys(self) -> set[str]:
        """The ``RATIO_FIELDS`` keys of ``benchmarks/check_regression.py``."""
        if self._bench_keys is None:
            gate = self._benchmark_file("check_regression.py")
            keys: set[str] = set()
            if gate is not None and gate.tree is not None:
                for node in ast.walk(gate.tree):
                    value = _assigned_value(node, "RATIO_FIELDS")
                    if isinstance(value, ast.Dict):
                        for key in value.keys:
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                keys.add(key.value)
            self._bench_keys = keys
        return self._bench_keys


def _assigned_value(node: ast.AST, name: str) -> ast.AST | None:
    """The value assigned to ``name``, covering plain and annotated forms."""
    if isinstance(node, ast.Assign):
        if any(isinstance(t, ast.Name) and t.id == name for t in node.targets):
            return node.value
    elif isinstance(node, ast.AnnAssign):
        if isinstance(node.target, ast.Name) and node.target.id == name:
            return node.value
    return None


def _string_collection(tree: ast.Module, name: str) -> set[str] | None:
    """The string elements of a module-level tuple/list/set named ``name``."""
    for node in tree.body:
        value = _assigned_value(node, name)
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            return {
                element.value
                for element in value.elts
                if isinstance(element, ast.Constant) and isinstance(element.value, str)
            }
    return None


# ----------------------------------------------------------------------
# File collection and the run itself
# ----------------------------------------------------------------------
def iter_python_files(root: Path, targets: Sequence[str | Path]) -> list[Path]:
    """Every ``.py`` file under the targets, sorted, hidden dirs skipped."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for target in targets:
        path = Path(target)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise FileNotFoundError(f"lint target does not exist: {target}")
        for candidate in candidates:
            parts = candidate.relative_to(path.parent if path.is_file() else path).parts
            if any(p.startswith(".") or p == "__pycache__" for p in parts[:-1]):
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_files(root: Path, targets: Sequence[str | Path]) -> list[SourceFile]:
    return [
        SourceFile(path, _relpath(path, root), path.read_text())
        for path in iter_python_files(root, targets)
    ]


def run_lint(
    root: str | Path,
    targets: Sequence[str | Path],
    rules: Iterable | None = None,
) -> tuple[list[Finding], LintContext]:
    """Lint every file under ``targets``; return (findings, context).

    Findings come back sorted by (path, line, rule) so output — and the
    ``--json`` artifact CI uploads — is stable across runs and platforms.
    """
    from repro.devtools.rules import RULES, all_rule_ids

    active = list(RULES if rules is None else rules)
    known_ids = all_rule_ids(active)
    root = Path(root)
    files = load_files(root, targets)
    ctx = LintContext(root, files)
    findings: list[Finding] = []
    for file in files:
        if file.parse_failure is not None:
            findings.append(
                Finding(PARSE_ERROR, file.relpath, 1, file.parse_failure)
            )
            continue
        for rule in active:
            if not rule.applies(file):
                continue
            for finding in rule.check(file, ctx):
                if not file.suppressed(finding.rule, finding.line):
                    findings.append(finding)
        findings.extend(_suppression_findings(file, known_ids))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, ctx


def _suppression_findings(file: SourceFile, known_ids: set[str]) -> list[Finding]:
    """Malformed and unused suppressions, reported after the rules ran."""
    findings = []
    for suppression in file.suppressions:
        unknown = [rule for rule in suppression.rules if rule not in known_ids]
        if unknown:
            findings.append(
                Finding(
                    BAD_SUPPRESSION,
                    file.relpath,
                    suppression.line,
                    f"suppression names unknown rule(s) {', '.join(unknown)}",
                )
            )
            continue
        if not suppression.justification:
            findings.append(
                Finding(
                    BAD_SUPPRESSION,
                    file.relpath,
                    suppression.line,
                    "suppression carries no justification "
                    "(write `# repro-lint: disable=<rule> -- <why>`)",
                )
            )
            continue
        stale = [r for r in suppression.rules if r not in suppression.used_rules]
        if stale:
            findings.append(
                Finding(
                    UNUSED_SUPPRESSION,
                    file.relpath,
                    suppression.line,
                    f"suppression for {', '.join(stale)} matches no finding; "
                    "remove it so exemptions track the code they excuse",
                )
            )
    return findings
