"""repro-lint CLI: ``python -m repro.devtools.lint [paths...]``.

Exit codes: 0 — clean; 1 — findings; 2 — usage error (bad target, bad
flag).  Human output is one ``path:line: [rule] message`` per finding (the
format editors and CI annotations both understand); ``--json`` emits a
machine-readable report instead, which the scheduled CI lane uploads as an
artifact next to the BENCH results.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.devtools.engine import run_lint
from repro.devtools.rules import RULES

DEFAULT_TARGETS = ("src", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "targets",
        nargs="*",
        default=list(DEFAULT_TARGETS),
        help="files or directories to lint (default: src benchmarks)",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root that relative targets, tests/, and "
        "benchmarks/ resolve against (default: the working directory)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit a machine-readable JSON report instead of text",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(f"{rule.id}: {rule.summary}")
        return 0
    try:
        findings, ctx = run_lint(args.root, args.targets)
    except FileNotFoundError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    if args.as_json:
        print(
            json.dumps(
                {
                    "clean": not findings,
                    "files_scanned": len(ctx.files),
                    "rules": sorted(rule.id for rule in RULES),
                    "findings": [finding.to_payload() for finding in findings],
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            plural = "s" if len(findings) != 1 else ""
            print(
                f"repro-lint: {len(findings)} finding{plural} "
                f"in {len(ctx.files)} files"
            )
        else:
            print(
                f"repro-lint: clean ({len(ctx.files)} files, "
                f"{len(RULES)} rules)"
            )
    return 1 if findings else 0


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:  # downstream consumer (e.g. `| head`) hung up
        raise SystemExit(0)
