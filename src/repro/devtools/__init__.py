"""Development tooling: the ``repro-lint`` invariant checker.

Every result this reproduction reports rests on three hand-maintained
contracts:

* **Determinism** — all randomness derives from configured seeds (and, in
  the block-planning modules, from the ``[seed, tag, epoch, block_index]``
  idiom), so sharded campaigns stay row-for-row identical to batch runs.
* **Atomic checkpoints** — every ``.json`` manifest/checkpoint is written
  via :func:`repro.core.shard.write_json_atomic`, so a file's *presence* is
  a trustworthy commit marker across crashes.
* **Equivalence pinning** — every vectorized hot path keeps a scalar
  ``*_reference`` twin that at least one test compares it against.

``python -m repro.devtools.lint src benchmarks`` enforces these (plus
ordering, pickling, and benchmark-hygiene invariants) mechanically with a
dependency-free AST pass; see ``docs/invariants.md`` for the rule catalog
and the suppression syntax.
"""

from repro.devtools.engine import Finding, LintContext, SourceFile, run_lint
from repro.devtools.rules import RULES, all_rule_ids

__all__ = [
    "Finding",
    "LintContext",
    "RULES",
    "SourceFile",
    "all_rule_ids",
    "run_lint",
]
