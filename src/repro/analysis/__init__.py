"""Statistics and reporting helpers used by the experiments and benchmarks."""

from repro.analysis.stats import (
    Ecdf,
    fraction_at_least,
    fraction_at_most,
    summarise_distribution,
)
from repro.analysis.reports import (
    SoundnessReport,
    TaskTypeSoundness,
    TimelineReport,
    TransitionMatch,
    build_soundness_report,
    build_timeline_report,
    format_table,
)

__all__ = [
    "Ecdf",
    "fraction_at_least",
    "fraction_at_most",
    "summarise_distribution",
    "SoundnessReport",
    "TaskTypeSoundness",
    "TimelineReport",
    "TransitionMatch",
    "build_soundness_report",
    "build_timeline_report",
    "format_table",
]
