"""Distribution summaries: ECDFs, quantiles, threshold fractions.

The paper's feasibility figures (Figs. 4–6) are cumulative distribution
functions over per-domain and per-page quantities, and Fig. 7 compares two
load-time distributions.  These helpers compute the same summaries from the
simulated data so the benchmarks can print the series the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def _as_float_array(values: Iterable[float]) -> np.ndarray:
    """Coerce any iterable — numpy column views included — without copying arrays."""
    if isinstance(values, np.ndarray):
        return values.astype(float, copy=False)
    return np.asarray(list(values), dtype=float)


@dataclass
class Ecdf:
    """An empirical cumulative distribution function."""

    values: np.ndarray

    def __init__(self, values: Iterable[float]) -> None:
        self.values = np.sort(_as_float_array(values))

    def __len__(self) -> int:
        return len(self.values)

    def __call__(self, x: float) -> float:
        """P[X <= x] under the empirical distribution."""
        if len(self.values) == 0:
            return 0.0
        return float(np.searchsorted(self.values, x, side="right")) / len(self.values)

    def quantile(self, q: float) -> float:
        """The q-th quantile (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if len(self.values) == 0:
            raise ValueError("empty distribution has no quantiles")
        return float(np.quantile(self.values, q))

    def series(self, points: Sequence[float]) -> list[tuple[float, float]]:
        """(x, CDF(x)) pairs at the given x values — a plottable CDF series."""
        return [(float(x), self(x)) for x in points]

    @property
    def median(self) -> float:
        return self.quantile(0.5)


def fraction_at_most(values: Iterable[float], threshold: float) -> float:
    """Fraction of ``values`` that are <= threshold."""
    array = _as_float_array(values)
    if array.size == 0:
        return 0.0
    return int(np.count_nonzero(array <= threshold)) / array.size


def fraction_at_least(values: Iterable[float], threshold: float) -> float:
    """Fraction of ``values`` that are >= threshold."""
    array = _as_float_array(values)
    if array.size == 0:
        return 0.0
    return int(np.count_nonzero(array >= threshold)) / array.size


def summarise_distribution(values: Iterable[float]) -> dict[str, float]:
    """Median, quartiles, and extremes of a distribution (Fig. 7 style)."""
    array = _as_float_array(values)
    if array.size == 0:
        return {"count": 0.0}
    return {
        "count": float(array.size),
        "min": float(array.min()),
        "p25": float(np.quantile(array, 0.25)),
        "median": float(np.quantile(array, 0.5)),
        "p75": float(np.quantile(array, 0.75)),
        "p90": float(np.quantile(array, 0.9)),
        "max": float(array.max()),
        "mean": float(array.mean()),
    }
