"""Experiment report builders.

These helpers condense raw measurements into the summaries the paper reports:
the per-task-type soundness numbers of §7.1 (false positives and negatives
against the testbed's known ground truth), the longitudinal scorecard that
grades detected censorship onsets/offsets against a scripted
:class:`~repro.censor.policy.PolicyTimeline`, and simple fixed-width tables
the benchmark harness prints so its output reads like the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.censor.policy import PolicyTimeline
from repro.censor.testbed import CensorshipTestbed
from repro.core.collection import Measurement
from repro.core.inference import CensorshipEvent, CusumState
from repro.core.store import TASK_TYPES, MeasurementStore
from repro.core.tasks import TaskOutcome, TaskType


@dataclass
class TaskTypeSoundness:
    """Confusion counts for one task type against testbed ground truth."""

    task_type: TaskType
    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    @property
    def measurements(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def false_positive_rate(self) -> float:
        """Failures reported where no filtering existed (paper: ~5% for images
        from unreliable networks)."""
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def false_negative_rate(self) -> float:
        """Successes reported where filtering existed."""
        denominator = self.false_negatives + self.true_positives
        return self.false_negatives / denominator if denominator else 0.0

    @property
    def detection_rate(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0


@dataclass
class SoundnessReport:
    """Per-task-type soundness plus overall counts (paper §7.1)."""

    per_task_type: dict[TaskType, TaskTypeSoundness] = field(default_factory=dict)

    @property
    def total_measurements(self) -> int:
        return sum(s.measurements for s in self.per_task_type.values())

    def for_type(self, task_type: TaskType) -> TaskTypeSoundness:
        return self.per_task_type.setdefault(task_type, TaskTypeSoundness(task_type))

    def rows(self) -> list[dict[str, object]]:
        """One row per task type, ready for table formatting."""
        return [
            {
                "task_type": stats.task_type.value,
                "measurements": stats.measurements,
                "detection_rate": round(stats.detection_rate, 3),
                "false_positive_rate": round(stats.false_positive_rate, 3),
                "false_negative_rate": round(stats.false_negative_rate, 3),
            }
            for stats in self.per_task_type.values()
        ]


def build_soundness_report(
    measurements: Iterable[Measurement] | MeasurementStore, testbed: CensorshipTestbed
) -> SoundnessReport:
    """Compare testbed measurements against ground truth (paper §7.1).

    Accepts either an iterable of :class:`Measurement` rows or a
    :class:`~repro.core.store.MeasurementStore`, in which case the confusion
    counts come from one vectorized group-by over the store's code columns
    (ground truth is resolved once per *distinct* testbed URL).
    """
    if isinstance(measurements, MeasurementStore):
        return _soundness_from_store(measurements, testbed)
    report = SoundnessReport()
    for m in measurements:
        if not m.target_domain.endswith("encore-testbed.net"):
            continue
        if m.is_automated or m.outcome is TaskOutcome.INCONCLUSIVE:
            continue
        expected_filtered = testbed.expected_filtered(m.target_url.host)
        stats = report.for_type(m.task_type)
        reported_filtered = m.failed
        if expected_filtered and reported_filtered:
            stats.true_positives += 1
        elif expected_filtered and not reported_filtered:
            stats.false_negatives += 1
        elif not expected_filtered and reported_filtered:
            stats.false_positives += 1
        else:
            stats.true_negatives += 1
    return report


def _soundness_from_store(store: MeasurementStore, testbed: CensorshipTestbed) -> SoundnessReport:
    """Columnar confusion counts: one bincount over (task, expected, reported)."""
    report = SoundnessReport()
    selection = store.select(domain_suffix="encore-testbed.net")
    if not len(selection):
        return report
    task = selection.column("task").astype(np.int64)
    url = selection.column("url")
    reported_filtered = selection.failed
    expected_table = np.zeros(len(store.url_values), dtype=bool)
    for code in np.unique(url).tolist():
        expected_table[code] = testbed.expected_filtered(store.url_values[code].host)
    combined = task * 4 + expected_table[url] * 2 + reported_filtered
    counts = np.bincount(combined, minlength=len(TASK_TYPES) * 4)
    for code, task_type in enumerate(TASK_TYPES):
        tn, fp, fn, tp = (int(c) for c in counts[code * 4 : code * 4 + 4])
        if not (tn or fp or fn or tp):
            continue
        stats = report.for_type(task_type)
        stats.true_negatives = tn
        stats.false_positives = fp
        stats.false_negatives = fn
        stats.true_positives = tp
    return report


@dataclass(frozen=True)
class TransitionMatch:
    """One scripted block/unblock transition and the event that detected it."""

    day: int
    country_code: str
    domain: str
    kind: str
    event: CensorshipEvent | None = None

    @property
    def detected(self) -> bool:
        return self.event is not None

    @property
    def detection_lag(self) -> int | None:
        """Days between the scripted change and its detection (None if missed)."""
        return None if self.event is None else self.event.detected_day - self.day

    @property
    def change_day_error(self) -> int | None:
        """How far the CUSUM change-point estimate landed from the scripted day."""
        return None if self.event is None else self.event.change_day - self.day


@dataclass
class TimelineReport:
    """How well the change-point detector recovered a scripted timeline.

    One :class:`TransitionMatch` per effective hard-block transition of the
    ground-truth :class:`~repro.censor.policy.PolicyTimeline`, plus the
    detector events that matched nothing (false alarms).
    """

    matches: list[TransitionMatch] = field(default_factory=list)
    false_events: list[CensorshipEvent] = field(default_factory=list)

    @property
    def transitions(self) -> int:
        return len(self.matches)

    @property
    def detected_count(self) -> int:
        return sum(1 for match in self.matches if match.detected)

    @property
    def missed_count(self) -> int:
        return self.transitions - self.detected_count

    @property
    def detection_rate(self) -> float:
        return self.detected_count / self.transitions if self.transitions else 0.0

    @property
    def miss_rate(self) -> float:
        return self.missed_count / self.transitions if self.transitions else 0.0

    @property
    def detected_lags(self) -> list[int]:
        """Detection lags of the transitions that were detected, in day order."""
        lags = [match.detection_lag for match in self.matches if match.detected]
        return [lag for lag in lags if lag is not None]

    @property
    def mean_detection_lag(self) -> float | None:
        """Mean days-to-detection over the transitions that were detected.

        ``None`` when nothing was detected: a lag is a property of a
        detection, so an all-miss (or transition-free) report has no lag at
        all — returning 0.0 would read as instant detection and poison any
        trend gate comparing against it.
        """
        lags = self.detected_lags
        if not lags:
            return None
        return sum(lags) / len(lags)

    def lag_cdf(self) -> dict[str, float | None]:
        """CDF-style detection-lag summary: p50 / p90 / max, in days.

        Every value is ``None`` when nothing was detected (the same
        no-detections-means-no-lag convention as :attr:`mean_detection_lag`,
        serialized as JSON ``null`` in QUALITY artifacts).
        """
        lags = np.asarray(self.detected_lags, dtype=np.float64)
        if lags.size == 0:
            return {"p50": None, "p90": None, "max": None}
        return {
            "p50": round(float(np.quantile(lags, 0.5)), 6),
            "p90": round(float(np.quantile(lags, 0.9)), 6),
            "max": float(lags.max()),
        }

    def quality_summary(self) -> dict[str, object]:
        """The trend-gated quality fields of one graded run.

        This is the ``quality`` section of a ``QUALITY_<suite>.json``
        artifact (see ``repro.scenarios``), so both the field set and the
        insertion order are part of a byte-compared contract:
        ``benchmarks/check_quality.py`` hard-gates ``lag_p90`` and
        ``false_alarms`` and trends the rest warn-only.
        """
        lag = self.lag_cdf()
        mean_lag = self.mean_detection_lag
        errors = [
            abs(match.change_day_error)
            for match in self.matches
            if match.change_day_error is not None
        ]
        return {
            "transitions": self.transitions,
            "detected": self.detected_count,
            "missed": self.missed_count,
            "detection_rate": round(self.detection_rate, 6),
            "miss_rate": round(self.miss_rate, 6),
            "false_alarms": len(self.false_events),
            "lag_p50": lag["p50"],
            "lag_p90": lag["p90"],
            "lag_max": lag["max"],
            "mean_lag_days": None if mean_lag is None else round(mean_lag, 6),
            "change_day_error_mean_abs": (
                round(sum(errors) / len(errors), 6) if errors else None
            ),
            "change_day_error_max_abs": max(errors) if errors else None,
        }

    def rows(self) -> list[dict[str, object]]:
        """One row per scripted transition, ready for table formatting."""
        return [
            {
                "day": match.day,
                "country": match.country_code,
                "domain": match.domain,
                "kind": match.kind,
                "detected_day": match.event.detected_day if match.event else "-",
                "lag": match.detection_lag if match.detected else "miss",
                "confidence": (
                    round(match.event.confidence, 3) if match.event else "-"
                ),
            }
            for match in self.matches
        ]

    def format(self) -> str:
        headers = ("day", "country", "domain", "kind", "detected_day", "lag", "confidence")
        return format_table(
            headers, [[row[h] for h in headers] for row in self.rows()]
        )


def build_timeline_report(
    events: "Iterable[CensorshipEvent] | CusumState", timeline: PolicyTimeline
) -> TimelineReport:
    """Match detected events against a timeline's scripted transitions.

    ``events`` is any iterable of :class:`CensorshipEvent` — or a monitor's
    :class:`~repro.core.inference.CusumState`, whose accumulated ``events``
    are graded directly, so an always-on monitor can be scored straight off
    its checkpoint.  Transitions are matched greedily in day order: each
    takes the earliest unclaimed event of the same (country, domain, kind)
    detected on or after its scripted day — and before the pair's *next*
    same-kind transition, so a missed early transition cannot claim the
    detection of a later one and corrupt the lag statistics.  Events
    claiming no transition are reported as false alarms.
    """
    if isinstance(events, CusumState):
        events = events.events
    return _match_transitions(events, timeline.transitions(), {})


def build_throttle_report(
    events: Iterable[CensorshipEvent], timeline: PolicyTimeline
) -> TimelineReport:
    """Match a timing detector's events against scripted throttle transitions.

    The throttling sibling of :func:`build_timeline_report`: ``events`` are
    what :class:`~repro.core.inference.TimingCusumDetector` emitted
    (``"throttle-onset"``/``"throttle-offset"`` kinds), graded against
    :meth:`~repro.censor.policy.PolicyTimeline.throttle_transitions` with
    the same greedy day-ordered matching and false-alarm accounting.
    """
    return _match_transitions(
        events,
        timeline.throttle_transitions(),
        {"throttle": "throttle-onset", "offset": "throttle-offset"},
    )


def _match_transitions(
    events: Iterable[CensorshipEvent], transitions, kind_map: dict[str, str]
) -> TimelineReport:
    """The greedy day-ordered transition/event matcher both reports share.

    ``kind_map`` translates a transition's scripted action into the event
    kind that detects it (missing actions match events of the same name).
    """
    report = TimelineReport()
    remaining = list(events)

    def kind_of(transition) -> str:
        return kind_map.get(transition.action, transition.action)

    def claim_window_end(index: int) -> float:
        this = transitions[index]
        for later in transitions[index + 1:]:
            if (
                later.country_code == this.country_code
                and later.domain == this.domain
                and later.action == this.action
            ):
                return later.day
        return float("inf")

    for index, transition in enumerate(transitions):
        window_end = claim_window_end(index)
        candidates = [
            event
            for event in remaining
            if event.domain == transition.domain
            and event.country_code == transition.country_code
            and event.kind == kind_of(transition)
            and transition.day <= event.detected_day < window_end
        ]
        match = min(candidates, key=lambda e: e.detected_day, default=None)
        if match is not None:
            remaining.remove(match)
        report.matches.append(
            TransitionMatch(
                day=transition.day,
                country_code=transition.country_code,
                domain=transition.domain,
                kind=kind_of(transition),
                event=match,
            )
        )
    report.false_events = remaining
    return report


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple fixed-width text table (used by benchmark output)."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))
    lines = [render_row(list(headers)), render_row(["-" * w for w in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)
