"""Blacklist policies, including scripted time variation.

A censor's policy says *what* is filtered: whole domains, URL prefixes
(a section of a site, or a single page), or keyword matches against the URL.
The paper assumes blacklist-driven censors that are unwilling to filter all
Web traffic (§3.1), which is exactly what a finite blacklist expresses.

Censorship is not static — the whole point of Encore's longitudinal
collection is catching the moment a country starts (or stops) filtering a
site.  :class:`PolicyTimeline` scripts that variation as onset / offset /
throttle events per (country, domain) and answers "what is this country's
posture on day *d*?"; :meth:`BlacklistPolicy.replace_domains` and
:meth:`BlacklistPolicy.unblock_domain` are the mutation hooks the
longitudinal engine uses to swing a live censor's blacklist between epochs
without rebuilding the censor (see :mod:`repro.core.longitudinal`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.web.url import URL


@dataclass(frozen=True)
class BlockRule:
    """A single blacklist entry."""

    kind: str  # "domain", "prefix", or "keyword"
    value: str

    _KINDS = ("domain", "prefix", "keyword")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if not self.value:
            raise ValueError("empty rule value")

    def matches_host(self, host: str) -> bool:
        """True if the rule applies to ``host`` alone (domain rules only)."""
        if self.kind != "domain":
            return False
        host = host.lower()
        return host == self.value or host.endswith("." + self.value)

    def matches_url(self, url: URL) -> bool:
        """True if the rule applies to the full ``url``."""
        if self.kind == "domain":
            return self.matches_host(url.host)
        if self.kind == "prefix":
            return str(url).startswith(self.value)
        return self.value in str(url)


@dataclass
class BlacklistPolicy:
    """A censor's blacklist: a collection of block rules."""

    rules: list[BlockRule] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_domains(cls, domains: Iterable[str]) -> "BlacklistPolicy":
        """A policy blocking each of ``domains`` entirely."""
        return cls([BlockRule("domain", d.lower().strip(".")) for d in domains])

    def block_domain(self, domain: str) -> "BlacklistPolicy":
        self.rules.append(BlockRule("domain", domain.lower().strip(".")))
        return self

    def block_prefix(self, prefix: str) -> "BlacklistPolicy":
        self.rules.append(BlockRule("prefix", str(URL.parse(prefix))))
        return self

    def block_keyword(self, keyword: str) -> "BlacklistPolicy":
        self.rules.append(BlockRule("keyword", keyword))
        return self

    # ------------------------------------------------------------------
    # Time-variation hooks (used by the longitudinal engine)
    # ------------------------------------------------------------------
    def unblock_domain(self, domain: str) -> "BlacklistPolicy":
        """Retract every domain rule covering ``domain`` (a censorship offset)."""
        domain = domain.lower().strip(".")
        self.rules[:] = [
            rule
            for rule in self.rules
            if not (rule.kind == "domain" and rule.value == domain)
        ]
        return self

    def replace_domains(self, domains: Iterable[str]) -> "BlacklistPolicy":
        """Swap the entire rule set for domain rules over ``domains``, in place.

        The hook a :class:`PolicyTimeline` is applied through: the censor
        object (and therefore the interceptor chain) stays the same across
        epochs while its blacklist moves, which is exactly how a real censor
        updates its block list under a fixed enforcement apparatus.
        """
        self.rules[:] = [BlockRule("domain", d.lower().strip(".")) for d in domains]
        return self

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.rules

    def matching_rule_for_host(self, host: str) -> BlockRule | None:
        """The first domain rule that covers ``host``, or None.

        Only domain rules can match at the DNS/TCP stages, because the censor
        has not yet seen a URL there.
        """
        for rule in self.rules:
            if rule.matches_host(host):
                return rule
        return None

    def matching_rule_for_url(self, url: URL | str) -> BlockRule | None:
        """The first rule of any kind that covers ``url``, or None."""
        parsed = url if isinstance(url, URL) else URL.parse(url)
        for rule in self.rules:
            if rule.matches_url(parsed):
                return rule
        return None

    def blocks_host(self, host: str) -> bool:
        return self.matching_rule_for_host(host) is not None

    def blocks_url(self, url: URL | str) -> bool:
        return self.matching_rule_for_url(url) is not None

    @property
    def blocked_domains(self) -> list[str]:
        """Domains blocked in their entirety."""
        return [rule.value for rule in self.rules if rule.kind == "domain"]


# ----------------------------------------------------------------------
# Scripted time-varying censorship
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PolicyEvent:
    """One scripted change of a censor's posture toward a domain.

    ``action`` is what the censor starts doing on ``day``: ``"onset"``
    begins hard blocking, ``"throttle"`` begins bandwidth throttling (the
    subtle filtering of §1 that completes exchanges slowly), and
    ``"offset"`` clears whatever was in force.
    """

    day: int
    country_code: str
    domain: str
    action: str

    _ACTIONS = ("onset", "offset", "throttle")

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError("event day must be non-negative")
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown timeline action {self.action!r}")
        if not self.country_code or not self.domain:
            raise ValueError("events need a country code and a domain")


#: What each action leaves the (country, domain) pair doing.
_ACTION_STATE = {"onset": "block", "throttle": "throttle", "offset": "clear"}


class PolicyTimeline:
    """A scripted schedule of per-(country, domain) censorship changes.

    The ground truth of a longitudinal campaign: events are replayed in day
    order and :meth:`state_at` answers what every country is blocking or
    throttling on a given day.  :meth:`transitions` reduces the script to
    the *hard-block* onsets/offsets a success-rate change-point detector can
    be expected to find (throttling completes fetches, so it moves timings,
    not success rates).
    """

    def __init__(self, events: Iterable[PolicyEvent] = ()) -> None:
        self._events: list[PolicyEvent] = sorted(
            events, key=lambda e: (e.day, e.country_code, e.domain)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, event: PolicyEvent) -> "PolicyTimeline":
        self._events.append(event)
        self._events.sort(key=lambda e: (e.day, e.country_code, e.domain))
        return self

    def onset(self, day: int, country_code: str, domain: str) -> "PolicyTimeline":
        """Script ``country_code`` starting to block ``domain`` on ``day``."""
        return self.add(PolicyEvent(day, country_code, domain, "onset"))

    def offset(self, day: int, country_code: str, domain: str) -> "PolicyTimeline":
        """Script ``country_code`` clearing its posture on ``domain`` on ``day``."""
        return self.add(PolicyEvent(day, country_code, domain, "offset"))

    def throttle(self, day: int, country_code: str, domain: str) -> "PolicyTimeline":
        """Script ``country_code`` starting to throttle ``domain`` on ``day``."""
        return self.add(PolicyEvent(day, country_code, domain, "throttle"))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[PolicyEvent, ...]:
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def countries(self) -> tuple[str, ...]:
        """Every country the timeline scripts, sorted."""
        return tuple(sorted({e.country_code for e in self._events}))

    def final_day(self) -> int:
        """The last scripted day (0 for an empty timeline)."""
        return max((e.day for e in self._events), default=0)

    def state_at(self, day: int) -> dict[str, dict[str, str]]:
        """Per-country posture in force on ``day``.

        Returns ``{country_code: {domain: "block" | "throttle"}}`` — cleared
        pairs are simply absent.  Events taking effect *on* ``day`` are
        included.
        """
        state: dict[str, dict[str, str]] = {}
        for event in self._events:
            if event.day > day:
                break
            posture = _ACTION_STATE[event.action]
            country = state.setdefault(event.country_code, {})
            if posture == "clear":
                country.pop(event.domain, None)
            else:
                country[event.domain] = posture
        return {code: rules for code, rules in state.items() if rules}

    def transitions(self) -> list[PolicyEvent]:
        """The effective hard-block transitions, as onset/offset events.

        A pair entering the blocked state (from clear *or* throttled) emits
        an ``"onset"``; a pair leaving it emits an ``"offset"``.  Redundant
        events (blocking what is already blocked, clearing what is already
        clear) emit nothing — they change no observable behaviour.
        """
        state: dict[tuple[str, str], str] = {}
        out: list[PolicyEvent] = []
        for event in self._events:
            key = (event.country_code, event.domain)
            previous = state.get(key, "clear")
            posture = _ACTION_STATE[event.action]
            if posture == previous:
                continue
            if posture == "block":
                out.append(PolicyEvent(event.day, *key, "onset"))
            elif previous == "block":
                out.append(PolicyEvent(event.day, *key, "offset"))
            state[key] = posture
        return out

    def throttle_transitions(self) -> list[PolicyEvent]:
        """The effective throttle transitions — the timing detector's ground truth.

        The throttling sibling of :meth:`transitions`: a pair entering the
        throttled state (from clear *or* blocked) emits a ``"throttle"``
        event; a pair leaving it emits an ``"offset"``.  Redundant events
        emit nothing.  These are the changes
        :class:`~repro.core.inference.TimingCusumDetector` can be expected
        to find in the per-day ``elapsed_ms`` quantiles (throttled fetches
        complete, so success rates never see them).
        """
        state: dict[tuple[str, str], str] = {}
        out: list[PolicyEvent] = []
        for event in self._events:
            key = (event.country_code, event.domain)
            previous = state.get(key, "clear")
            posture = _ACTION_STATE[event.action]
            if posture == previous:
                continue
            if posture == "throttle":
                out.append(PolicyEvent(event.day, *key, "throttle"))
            elif previous == "throttle":
                out.append(PolicyEvent(event.day, *key, "offset"))
            state[key] = posture
        return out
