"""Blacklist policies.

A censor's policy says *what* is filtered: whole domains, URL prefixes
(a section of a site, or a single page), or keyword matches against the URL.
The paper assumes blacklist-driven censors that are unwilling to filter all
Web traffic (§3.1), which is exactly what a finite blacklist expresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.web.url import URL


@dataclass(frozen=True)
class BlockRule:
    """A single blacklist entry."""

    kind: str  # "domain", "prefix", or "keyword"
    value: str

    _KINDS = ("domain", "prefix", "keyword")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown rule kind {self.kind!r}")
        if not self.value:
            raise ValueError("empty rule value")

    def matches_host(self, host: str) -> bool:
        """True if the rule applies to ``host`` alone (domain rules only)."""
        if self.kind != "domain":
            return False
        host = host.lower()
        return host == self.value or host.endswith("." + self.value)

    def matches_url(self, url: URL) -> bool:
        """True if the rule applies to the full ``url``."""
        if self.kind == "domain":
            return self.matches_host(url.host)
        if self.kind == "prefix":
            return str(url).startswith(self.value)
        return self.value in str(url)


@dataclass
class BlacklistPolicy:
    """A censor's blacklist: a collection of block rules."""

    rules: list[BlockRule] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def for_domains(cls, domains: Iterable[str]) -> "BlacklistPolicy":
        """A policy blocking each of ``domains`` entirely."""
        return cls([BlockRule("domain", d.lower().strip(".")) for d in domains])

    def block_domain(self, domain: str) -> "BlacklistPolicy":
        self.rules.append(BlockRule("domain", domain.lower().strip(".")))
        return self

    def block_prefix(self, prefix: str) -> "BlacklistPolicy":
        self.rules.append(BlockRule("prefix", str(URL.parse(prefix))))
        return self

    def block_keyword(self, keyword: str) -> "BlacklistPolicy":
        self.rules.append(BlockRule("keyword", keyword))
        return self

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.rules

    def matching_rule_for_host(self, host: str) -> BlockRule | None:
        """The first domain rule that covers ``host``, or None.

        Only domain rules can match at the DNS/TCP stages, because the censor
        has not yet seen a URL there.
        """
        for rule in self.rules:
            if rule.matches_host(host):
                return rule
        return None

    def matching_rule_for_url(self, url: URL | str) -> BlockRule | None:
        """The first rule of any kind that covers ``url``, or None."""
        parsed = url if isinstance(url, URL) else URL.parse(url)
        for rule in self.rules:
            if rule.matches_url(parsed):
                return rule
        return None

    def blocks_host(self, host: str) -> bool:
        return self.matching_rule_for_host(host) is not None

    def blocks_url(self, url: URL | str) -> bool:
        return self.matching_rule_for_url(url) is not None

    @property
    def blocked_domains(self) -> list[str]:
        """Domains blocked in their entirety."""
        return [rule.value for rule in self.rules if rule.kind == "domain"]
