"""Censorship substrate: blacklist policies, filtering mechanisms, censors.

The paper's adversary (§3.1) filters Web access for subsets of clients using
a blacklist, acting at the DNS, TCP, or HTTP stage of a connection.  This
package provides blacklist policies, the seven concrete filtering mechanisms
the paper's testbed emulates (§7.1), country censor presets matching the
filtering the paper independently confirms (§7.2), and the testbed itself.
"""

from repro.censor.policy import BlacklistPolicy, BlockRule, PolicyEvent, PolicyTimeline
from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.censors import (
    CountryCensorship,
    build_country_censors,
    censor_for_country,
    ground_truth_blocked,
)
from repro.censor.testbed import CensorshipTestbed, TestbedHost

__all__ = [
    "BlacklistPolicy",
    "BlockRule",
    "PolicyEvent",
    "PolicyTimeline",
    "Censor",
    "FilteringMechanism",
    "CountryCensorship",
    "build_country_censors",
    "censor_for_country",
    "ground_truth_blocked",
    "CensorshipTestbed",
    "TestbedHost",
]
