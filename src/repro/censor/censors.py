"""Country censorship presets.

The paper independently confirms (§7.2) well-known censorship of
youtube.com in Pakistan, Iran, and China, and of twitter.com and
facebook.com in China and Iran, and reports measurements from a set of
countries that "practice some form of Web filtering".  The presets below
encode that ground truth so the detection experiments have known answers to
recover, together with the mechanisms those countries are reported to use
(DNS injection and TCP RST for China, block pages for Iran, DNS tampering for
Pakistan, ISP-level block pages for the UK, and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy
from repro.web.url import URL


@dataclass
class CountryCensorship:
    """The censorship apparatus of one country: zero or more censors."""

    country_code: str
    censors: list[Censor] = field(default_factory=list)

    @property
    def filters_anything(self) -> bool:
        return any(not censor.policy.is_empty() for censor in self.censors)

    def interceptors(self) -> tuple[Censor, ...]:
        """The interceptors to place on the path of a client in this country."""
        return tuple(self.censors)

    def would_filter(self, url: URL | str) -> bool:
        """Ground truth: is ``url`` filtered for clients in this country?"""
        return any(censor.would_filter(url) for censor in self.censors)


#: Ground-truth blocking the presets implement, keyed by country code.
#: These are the cases §7.2 confirms plus the additional well-documented
#: country policies used in the scale experiment.
_COUNTRY_POLICIES: dict[str, dict] = {
    "CN": {
        "domains": ["facebook.com", "twitter.com", "youtube.com", "pressfreedom-intl.org"],
        "mechanism": FilteringMechanism.DNS_INJECTION,
        "secondary_mechanism": FilteringMechanism.TCP_RST,
    },
    "IR": {
        "domains": ["facebook.com", "twitter.com", "youtube.com", "rights-watch.org"],
        "mechanism": FilteringMechanism.HTTP_BLOCK_PAGE,
    },
    "PK": {
        "domains": ["youtube.com", "blasphemy-report.org"],
        "mechanism": FilteringMechanism.DNS_NXDOMAIN,
    },
    "TR": {
        "domains": ["circumvention-tools.net"],
        "mechanism": FilteringMechanism.DNS_NXDOMAIN,
    },
    "SA": {
        "domains": ["rights-watch.org"],
        "mechanism": FilteringMechanism.HTTP_BLOCK_PAGE,
    },
    "EG": {
        "domains": ["independent-journal.net"],
        "mechanism": FilteringMechanism.TCP_RST,
    },
    "KR": {
        "domains": ["northern-news.org"],
        "mechanism": FilteringMechanism.HTTP_BLOCK_PAGE,
    },
    "GB": {
        "domains": ["filesharing-index.net"],
        "mechanism": FilteringMechanism.HTTP_BLOCK_PAGE,
    },
    "IN": {
        "domains": ["filesharing-index.net"],
        "mechanism": FilteringMechanism.DNS_NXDOMAIN,
    },
}


def build_country_censors(
    extra_policies: dict[str, list[str]] | None = None,
) -> dict[str, CountryCensorship]:
    """Build the preset censorship apparatus for every country in the model.

    ``extra_policies`` maps country codes to additional blocked domains,
    letting experiments add targets (for example testbed hosts) to a
    country's blacklist.
    """
    result: dict[str, CountryCensorship] = {}
    for code, spec in _COUNTRY_POLICIES.items():
        domains = list(spec["domains"])
        if extra_policies and code in extra_policies:
            domains.extend(extra_policies[code])
        censors = [
            Censor(
                name=f"{code.lower()}-national",
                policy=BlacklistPolicy.for_domains(domains),
                mechanism=spec["mechanism"],
            )
        ]
        secondary = spec.get("secondary_mechanism")
        if secondary is not None:
            censors.append(
                Censor(
                    name=f"{code.lower()}-secondary",
                    policy=BlacklistPolicy.for_domains(domains),
                    mechanism=secondary,
                )
            )
        result[code] = CountryCensorship(country_code=code, censors=censors)
    if extra_policies:
        for code, domains in extra_policies.items():
            if code not in result:
                result[code] = CountryCensorship(
                    country_code=code,
                    censors=[
                        Censor(
                            name=f"{code.lower()}-national",
                            policy=BlacklistPolicy.for_domains(domains),
                            mechanism=FilteringMechanism.HTTP_BLOCK_PAGE,
                        )
                    ],
                )
    return result


def censor_for_country(
    country_code: str, censors: dict[str, CountryCensorship] | None = None
) -> CountryCensorship:
    """The censorship apparatus for ``country_code`` (empty if none)."""
    censors = censors if censors is not None else build_country_censors()
    return censors.get(country_code, CountryCensorship(country_code=country_code))


def ground_truth_blocked(
    censors: dict[str, CountryCensorship] | None = None,
) -> dict[str, set[str]]:
    """Map of country code -> set of blocked domains, for evaluation."""
    censors = censors if censors is not None else build_country_censors()
    truth: dict[str, set[str]] = {}
    for code, country in censors.items():
        blocked: set[str] = set()
        for censor in country.censors:
            blocked.update(censor.policy.blocked_domains)
        if blocked:
            truth[code] = blocked
    return truth
