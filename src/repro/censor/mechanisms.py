"""Filtering mechanisms and the Censor interceptor.

The paper's soundness testbed (§7.1) emulates seven varieties of DNS, IP, and
HTTP filtering.  A :class:`Censor` couples a blacklist policy with one of
those mechanisms and implements the interceptor protocol that the network
substrate consults at each stage of a fetch
(:meth:`intercept_dns`, :meth:`intercept_tcp`, :meth:`intercept_http`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.censor.policy import BlacklistPolicy
from repro.netsim.dns import DNSAction
from repro.netsim.http import HTTPAction
from repro.netsim.tcp import TCPAction
from repro.web.url import URL


class FilteringMechanism(enum.Enum):
    """The seven filtering varieties emulated by the paper's testbed."""

    DNS_NXDOMAIN = "dns_nxdomain"
    DNS_INJECTION = "dns_injection"
    IP_DROP = "ip_drop"
    TCP_RST = "tcp_rst"
    HTTP_DROP = "http_drop"
    HTTP_BLOCK_PAGE = "http_block_page"
    THROTTLING = "throttling"

    @property
    def stage(self) -> str:
        """Which connection stage the mechanism acts at."""
        if self in (FilteringMechanism.DNS_NXDOMAIN, FilteringMechanism.DNS_INJECTION):
            return "dns"
        if self in (FilteringMechanism.IP_DROP, FilteringMechanism.TCP_RST):
            return "tcp"
        return "http"

    @property
    def gives_explicit_failure(self) -> bool:
        """True if the mechanism produces an unambiguous failure signal.

        Throttling and block-page substitution complete the HTTP exchange, so
        explicit-feedback tasks (images, style sheets) may or may not notice
        them; the paper notes such subtle filtering is hard for Encore to
        detect (§1).
        """
        return self not in (FilteringMechanism.THROTTLING, FilteringMechanism.HTTP_BLOCK_PAGE)


@dataclass
class Censor:
    """An on-path censor: a blacklist policy enforced with one mechanism.

    ``name`` identifies the deploying jurisdiction or ISP and is only used
    for reporting.  A censor can optionally also block Encore's own
    infrastructure domains (the adversary of §3.1 may filter access to the
    coordination or collection server), listed in ``blocked_infrastructure``.
    """

    name: str
    policy: BlacklistPolicy
    mechanism: FilteringMechanism
    blocked_infrastructure: set[str] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Interceptor protocol (consumed by repro.netsim)
    # ------------------------------------------------------------------
    def intercept_dns(self, host: str) -> DNSAction:
        """Decide what happens to a DNS query for ``host``."""
        if not self._host_is_targeted(host):
            return DNSAction.PASS
        if self.mechanism is FilteringMechanism.DNS_NXDOMAIN:
            return DNSAction.NXDOMAIN
        if self.mechanism is FilteringMechanism.DNS_INJECTION:
            return DNSAction.INJECT
        return DNSAction.PASS

    def intercept_tcp(self, ip_address: str, host: str) -> TCPAction:
        """Decide what happens to a TCP connection to ``ip_address``/``host``."""
        if not self._host_is_targeted(host):
            return TCPAction.PASS
        if self.mechanism is FilteringMechanism.IP_DROP:
            return TCPAction.DROP
        if self.mechanism is FilteringMechanism.TCP_RST:
            return TCPAction.RESET
        return TCPAction.PASS

    def intercept_http(self, url: URL) -> HTTPAction:
        """Decide what happens to an HTTP request for ``url``."""
        if not self._url_is_targeted(url):
            return HTTPAction.PASS
        if self.mechanism is FilteringMechanism.HTTP_DROP:
            return HTTPAction.DROP
        if self.mechanism is FilteringMechanism.HTTP_BLOCK_PAGE:
            return HTTPAction.BLOCK_PAGE
        if self.mechanism is FilteringMechanism.THROTTLING:
            return HTTPAction.THROTTLE
        if self.mechanism is FilteringMechanism.TCP_RST:
            # RST censors that match on URL keywords (e.g. the GFW) also fire
            # at the HTTP stage when only the full URL reveals the match.
            return HTTPAction.RESET
        return HTTPAction.PASS

    # ------------------------------------------------------------------
    # Policy helpers
    # ------------------------------------------------------------------
    def _host_is_targeted(self, host: str) -> bool:
        if any(host == d or host.endswith("." + d) for d in self.blocked_infrastructure):
            return True
        return self.policy.blocks_host(host)

    def _url_is_targeted(self, url: URL) -> bool:
        if self._host_is_targeted(url.host):
            return True
        return self.policy.blocks_url(url)

    def would_filter(self, url: URL | str) -> bool:
        """Ground truth: would this censor interfere with a fetch of ``url``?

        Used only by the evaluation to label expected outcomes; the
        measurement path never calls it.
        """
        parsed = url if isinstance(url, URL) else URL.parse(url)
        if self.mechanism.stage in ("dns", "tcp"):
            return self._host_is_targeted(parsed.host)
        return self._url_is_targeted(parsed)
