"""The Web-censorship testbed of §7.1.

To confirm that Encore's measurement tasks are sound, the paper built a
testbed "which has DNS, firewall, and Web server configurations that emulate
seven varieties of DNS, IP, and HTTP filtering" and directed ~30% of clients
to measure resources hosted by the testbed or unfiltered control resources.
This module builds the same thing inside the simulation: one hostname per
filtering mechanism, each hosting a small image, a style sheet, a script and
a page, plus an unfiltered control host, and the censor that applies each
mechanism to its hostname for *every* client that measures it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy
from repro.web.resources import ContentType, Resource
from repro.web.server import WebUniverse
from repro.web.sites import Site
from repro.web.url import URL


@dataclass(frozen=True)
class TestbedHost:
    """One testbed hostname and the mechanism applied to it (None = control)."""

    domain: str
    mechanism: FilteringMechanism | None

    @property
    def is_control(self) -> bool:
        return self.mechanism is None


class CensorshipTestbed:
    """Builds testbed sites and censors, and knows the expected outcomes."""

    CONTROL_DOMAIN = "control.encore-testbed.net"

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.hosts: list[TestbedHost] = [
            TestbedHost(f"{mechanism.value.replace('_', '-')}.encore-testbed.net", mechanism)
            for mechanism in FilteringMechanism
        ]
        self.hosts.append(TestbedHost(self.CONTROL_DOMAIN, None))
        self._sites: dict[str, Site] = {
            host.domain: self._build_site(host.domain) for host in self.hosts
        }

    # ------------------------------------------------------------------
    def _build_site(self, domain: str) -> Site:
        """A minimal site exposing one resource per task mechanism."""
        site = Site(domain=domain, category="testbed")
        base = URL.parse(f"http://{domain}/")
        favicon = Resource(
            url=base.with_path("/favicon.ico"),
            content_type=ContentType.IMAGE,
            size_bytes=620,
            cacheable=True,
            cache_ttl_s=86400,
        )
        stylesheet = Resource(
            url=base.with_path("/static/testbed.css"),
            content_type=ContentType.STYLESHEET,
            size_bytes=2048,
            cacheable=True,
            cache_ttl_s=86400,
        )
        script = Resource(
            url=base.with_path("/static/testbed.js"),
            content_type=ContentType.SCRIPT,
            size_bytes=4096,
            cacheable=True,
            cache_ttl_s=86400,
            nosniff=True,
        )
        photo = Resource(
            url=base.with_path("/static/photo.png"),
            content_type=ContentType.IMAGE,
            size_bytes=24 * 1024,
            cacheable=True,
            cache_ttl_s=86400,
        )
        site.add(favicon)
        site.add(stylesheet)
        site.add(script)
        site.add(photo)
        page = Resource(
            url=base.with_path("/index.html"),
            content_type=ContentType.HTML,
            size_bytes=6 * 1024,
            embedded_urls=(favicon.url, stylesheet.url, photo.url),
        )
        site.add(page)
        return site

    # ------------------------------------------------------------------
    @property
    def sites(self) -> list[Site]:
        return list(self._sites.values())

    def register(self, universe: WebUniverse) -> None:
        """Add every testbed site to ``universe``."""
        for site in self.sites:
            if site.domain not in universe:
                universe.add_site(site)

    def site(self, domain: str) -> Site:
        return self._sites[domain]

    def host_for_mechanism(self, mechanism: FilteringMechanism) -> TestbedHost:
        """The testbed host that the given mechanism is applied to."""
        for host in self.hosts:
            if host.mechanism is mechanism:
                return host
        raise KeyError(mechanism)

    @property
    def control_host(self) -> TestbedHost:
        return next(host for host in self.hosts if host.is_control)

    # ------------------------------------------------------------------
    def censors(self) -> list[Censor]:
        """The testbed censors: one per mechanism, scoped to its hostname.

        These are placed on *every* client's path during a soundness
        experiment, so a client measuring, say, the ``tcp-rst`` host always
        experiences TCP RST filtering regardless of its country — exactly how
        the paper's testbed emulated filtering for all participants.
        """
        result: list[Censor] = []
        for host in self.hosts:
            if host.mechanism is None:
                continue
            result.append(
                Censor(
                    name=f"testbed-{host.mechanism.value}",
                    policy=BlacklistPolicy.for_domains([host.domain]),
                    mechanism=host.mechanism,
                )
            )
        return result

    # ------------------------------------------------------------------
    def expected_filtered(self, domain: str) -> bool:
        """Ground truth: should fetches to ``domain`` be disrupted?"""
        for host in self.hosts:
            if domain == host.domain or domain.endswith("." + host.domain):
                return host.mechanism is not None
        raise KeyError(f"{domain} is not a testbed host")

    def favicon_url(self, host: TestbedHost) -> URL:
        return URL.parse(f"http://{host.domain}/favicon.ico")

    def stylesheet_url(self, host: TestbedHost) -> URL:
        return URL.parse(f"http://{host.domain}/static/testbed.css")

    def script_url(self, host: TestbedHost) -> URL:
        return URL.parse(f"http://{host.domain}/static/testbed.js")

    def page_url(self, host: TestbedHost) -> URL:
        return URL.parse(f"http://{host.domain}/index.html")
