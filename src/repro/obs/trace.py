"""Nested span tracing over an append-only JSONL stream.

One trace file is a sequence of JSON records, one per line, four kinds:

``{"t": "B", "id": n, "parent": p, "name": ..., "ts": ..., "attrs": {...}}``
    span begin; ``parent`` is 0 for roots.
``{"t": "E", "id": n, "ts": ..., "status": "ok" | "error" | "aborted"}``
    span end (``"error"`` records carry an ``"error"`` repr).
``{"t": "I", "parent": p, "name": ..., "ts": ..., "attrs": {...}}``
    instant event (progress ticks ride these).
``{"t": "M", "ts": ..., "scope": ..., "metrics": {...}}``
    a :class:`~repro.obs.metrics.MetricsRegistry` snapshot.

Begin/end are separate records on purpose: a killed worker leaves a
readable prefix whose open spans the merging parent closes with an
``aborted`` status (:meth:`Tracer.absorb_file`) — never truncated JSON.

Span ids are sequential integers per tracer, timestamps come from
:mod:`repro.obs.clock`, and every record is written with sorted keys, so a
trace taken under a ``FrozenClock`` is byte-deterministic.

``NullTracer`` is the zero-overhead default when tracing is off.  It still
dispatches *listeners* — progress callbacks subscribe to the event stream
(:func:`progress_listener`), giving progress reporting and telemetry one
code path whether or not a trace file is being written.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable

from repro.obs.clock import Clock, default_clock
from repro.obs.metrics import MetricsRegistry, get_registry

#: File name every per-worker and campaign trace stream uses.
TRACE_FILENAME = "trace.jsonl"

STATUS_OK = "ok"
STATUS_ERROR = "error"
STATUS_ABORTED = "aborted"


class _Span:
    """Context manager closing one span; returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "id", "name")

    def __init__(self, tracer: "Tracer", span_id: int, name: str) -> None:
        self._tracer = tracer
        self.id = span_id
        self.name = name

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._tracer._end_span(self.id, STATUS_OK)
        else:
            self._tracer._end_span(self.id, STATUS_ERROR, error=repr(exc))
        return False


class _NullSpan:
    """Shared no-op span so ``NullTracer.span`` allocates nothing."""

    __slots__ = ()
    id = 0
    name = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()

Listener = Callable[[str, dict], None]


class NullTracer:
    """The zero-overhead default: no file, no records, listeners only."""

    enabled = False

    def __init__(self) -> None:
        self._listeners: list[Listener] = []

    def add_listener(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        for listener in self._listeners:
            listener(name, attrs)

    def record_metrics(
        self, registry: MetricsRegistry | None = None, scope: str = "process"
    ) -> None:
        pass

    def absorb_file(self, path: Path, parent_id: int = 0, **attrs) -> int:
        return 0

    def close(self) -> None:
        pass


#: Module-level shared no-op tracer: the default for every instrumented API.
NULL_TRACER = NullTracer()


class Tracer(NullTracer):
    """Writes nested span records to an append-only JSONL file."""

    enabled = True

    def __init__(self, path: str | Path, clock: Clock | None = None) -> None:
        super().__init__()
        self.path = Path(path)
        self._clock = clock if clock is not None else default_clock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        next_id, orphans, last_ts = _recover_existing(self.path)
        self._file = self.path.open("a", encoding="utf-8")
        self._stack: list[int] = []
        self._next_id = next_id
        self._open_names: dict[int, str] = {}
        # A prior run killed mid-campaign left open spans behind: close them
        # as aborted (innermost first) so the resumed stream stays well-formed.
        for span_id in reversed(orphans):
            self._write(
                {"t": "E", "id": span_id, "ts": last_ts, "status": STATUS_ABORTED}
            )

    # ------------------------------------------------------------------
    def _write(self, record: dict) -> None:
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def _take_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs) -> _Span:
        """Open a nested span; use as a context manager."""
        span_id = self._take_id()
        parent = self._stack[-1] if self._stack else 0
        record = {
            "t": "B",
            "id": span_id,
            "parent": parent,
            "name": name,
            "ts": self._clock.monotonic(),
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        self._stack.append(span_id)
        self._open_names[span_id] = name
        return _Span(self, span_id, name)

    def _end_span(self, span_id: int, status: str, error: str | None = None) -> None:
        if not self._stack or self._stack[-1] != span_id:
            raise ValueError(
                f"span {span_id} ended out of order (open stack: {self._stack})"
            )
        self._stack.pop()
        self._open_names.pop(span_id, None)
        record = {"t": "E", "id": span_id, "ts": self._clock.monotonic(), "status": status}
        if error is not None:
            record["error"] = error
        self._write(record)

    def event(self, name: str, **attrs) -> None:
        """An instant event under the current span; also feeds listeners."""
        record = {
            "t": "I",
            "parent": self._stack[-1] if self._stack else 0,
            "name": name,
            "ts": self._clock.monotonic(),
        }
        if attrs:
            record["attrs"] = attrs
        self._write(record)
        for listener in self._listeners:
            listener(name, attrs)

    def record_metrics(
        self, registry: MetricsRegistry | None = None, scope: str = "process"
    ) -> None:
        """Snapshot a registry into the trace (the obs-sanctioned read).

        Reading metrics is confined to the obs layer: callers hand over the
        registry (or default to the process one) and the snapshot goes
        straight into the stream, never back to the caller.
        """
        registry = registry if registry is not None else get_registry()
        registry.update_peak_rss()
        self._write(
            {
                "t": "M",
                "ts": self._clock.monotonic(),
                "scope": scope,
                "metrics": registry.snapshot(),
            }
        )

    # ------------------------------------------------------------------
    def absorb_file(self, path: Path, parent_id: int = 0, **attrs) -> int:
        """Merge another trace file under ``parent_id``, remapping span ids.

        Parentage is preserved: records keep their relative structure, and
        old roots are re-parented onto ``parent_id``.  Spans left open —
        the signature a killed worker leaves behind — get a synthesized
        ``E`` record with ``aborted`` status at the stream's last seen
        timestamp, so merged traces are always well-formed.  A trailing
        half-written line (the other kill signature) is tolerated; a
        malformed line anywhere else raises ``ValueError``.

        Returns the number of records absorbed (synthesized ends included).
        """
        path = Path(path)
        if not path.is_file():
            return 0
        records = _read_records(path)
        absorbed = 0
        id_map: dict[int, int] = {}
        open_ids: list[int] = []
        last_ts = None
        for record in records:
            kind = record.get("t")
            ts = record.get("ts")
            if ts is not None:
                last_ts = ts
            if kind == "B":
                new_id = self._take_id()
                id_map[record["id"]] = new_id
                out = dict(record)
                out["id"] = new_id
                out["parent"] = id_map.get(record.get("parent", 0), parent_id)
                if attrs:
                    merged = dict(out.get("attrs") or {})
                    merged.update(attrs)
                    out["attrs"] = merged
                open_ids.append(new_id)
                self._write(out)
                absorbed += 1
            elif kind == "E":
                new_id = id_map.get(record["id"])
                if new_id is None:
                    raise ValueError(
                        f"{path}: end record for unknown span {record['id']}"
                    )
                out = dict(record)
                out["id"] = new_id
                if new_id in open_ids:
                    open_ids.remove(new_id)
                self._write(out)
                absorbed += 1
            elif kind == "I":
                out = dict(record)
                out["parent"] = id_map.get(record.get("parent", 0), parent_id)
                self._write(out)
                absorbed += 1
            elif kind == "M":
                self._write(dict(record))
                absorbed += 1
            else:
                raise ValueError(f"{path}: unknown trace record kind {kind!r}")
        # Close orphans innermost-first so the merged stream nests cleanly.
        for span_id in reversed(open_ids):
            self._write(
                {
                    "t": "E",
                    "id": span_id,
                    "ts": last_ts if last_ts is not None else 0.0,
                    "status": STATUS_ABORTED,
                }
            )
            absorbed += 1
        return absorbed

    def close(self) -> None:
        """Close the stream; any still-open spans end as ``aborted``."""
        if self._file.closed:
            return
        while self._stack:
            span_id = self._stack[-1]
            self._end_span(span_id, STATUS_ABORTED)
        self._file.close()


def _recover_existing(path: Path) -> tuple[int, list[int], float]:
    """Resume state from an existing stream: next id, orphan ids, last ts.

    Appending to a trace a previous (possibly killed) run left behind must
    neither reuse span ids nor leave that run's unfinished spans dangling.
    """
    if not path.is_file() or path.stat().st_size == 0:
        return 1, [], 0.0
    max_id = 0
    open_ids: list[int] = []
    last_ts = 0.0
    for record in _read_records(path):
        ts = record.get("ts")
        if ts is not None:
            last_ts = ts
        kind = record.get("t")
        if kind == "B":
            max_id = max(max_id, record["id"])
            open_ids.append(record["id"])
        elif kind == "E" and record["id"] in open_ids:
            open_ids.remove(record["id"])
    return max_id + 1, open_ids, last_ts


def _read_records(path: Path) -> list[dict]:
    """Parse a JSONL trace, tolerating only a truncated *final* line."""
    records: list[dict] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if index == len(lines) - 1:
                break  # killed mid-write: drop the partial tail record
            raise ValueError(f"{path}:{index + 1}: malformed trace line")
    return records


def progress_listener(callback: Callable, event_name: str, factory: Callable):
    """Adapt a legacy progress callback onto the trace event stream.

    The runner and shard layers emit ``"batch"`` / ``"shard"`` events with
    the dataclass fields as attrs; this listener rebuilds the dataclass and
    invokes the legacy callback — one code path whether tracing is on
    (``Tracer``) or off (``NullTracer``).
    """

    def listen(name: str, attrs: dict) -> None:
        if name == event_name:
            callback(factory(**attrs))

    return listen
