"""Trace analysis: load a JSONL span stream, summarize it, diff two runs.

The loader is *strict* — a committed campaign trace must be well-formed
(every line parses, every ``B`` has exactly one ``E``, ends never precede
starts).  Kill-truncated worker streams are repaired at merge time by
:meth:`~repro.obs.trace.Tracer.absorb_file`; anything malformed that
survives to analysis is a bug, so :func:`load_trace` raises
:class:`TraceError` and the CLI exits non-zero (the CI trace gate).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path


class TraceError(ValueError):
    """A trace stream violating the format contract."""


@dataclass
class Span:
    """One reconstructed span with its children."""

    id: int
    parent: int
    name: str
    start: float
    attrs: dict
    end: float | None = None
    status: str | None = None
    error: str | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start


@dataclass
class Trace:
    """A fully parsed trace: span tree plus events and metric snapshots."""

    spans: dict[int, Span]
    roots: list[Span]
    events: list[dict]
    metrics: list[dict]


def load_trace(path: str | Path) -> Trace:
    """Parse and validate one trace file; raise :class:`TraceError` if bad."""
    path = Path(path)
    if not path.is_file():
        raise TraceError(f"{path}: no such trace file")
    spans: dict[int, Span] = {}
    roots: list[Span] = []
    events: list[dict] = []
    metrics: list[dict] = []
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise TraceError(f"{path}:{lineno}: malformed JSON ({error.msg})")
        kind = record.get("t")
        if kind == "B":
            span_id = record.get("id")
            if span_id in spans:
                raise TraceError(f"{path}:{lineno}: duplicate span id {span_id}")
            span = Span(
                id=span_id,
                parent=record.get("parent", 0),
                name=record.get("name", "?"),
                start=record.get("ts", 0.0),
                attrs=record.get("attrs") or {},
            )
            spans[span_id] = span
        elif kind == "E":
            span = spans.get(record.get("id"))
            if span is None:
                raise TraceError(
                    f"{path}:{lineno}: end for unknown span {record.get('id')}"
                )
            if span.end is not None:
                raise TraceError(f"{path}:{lineno}: span {span.id} ended twice")
            span.end = record.get("ts", span.start)
            span.status = record.get("status", "ok")
            span.error = record.get("error")
            if span.end < span.start:
                raise TraceError(
                    f"{path}:{lineno}: span {span.id} ends before it starts"
                )
        elif kind == "I":
            events.append(record)
        elif kind == "M":
            metrics.append(record)
        else:
            raise TraceError(f"{path}:{lineno}: unknown record kind {kind!r}")
    unclosed = sorted(span_id for span_id, span in spans.items() if span.end is None)
    if unclosed:
        raise TraceError(
            f"{path}: unclosed span(s) {unclosed} — stream was not merged/closed"
        )
    for span in spans.values():
        parent = spans.get(span.parent)
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
    for span in spans.values():
        span.children.sort(key=lambda child: (child.start, child.id))
    roots.sort(key=lambda span: (span.start, span.id))
    return Trace(spans=spans, roots=roots, events=events, metrics=metrics)


# ----------------------------------------------------------------------
# Summaries
# ----------------------------------------------------------------------
def _critical_path(span: Span) -> list[dict]:
    """The longest-duration child chain under ``span`` (span excluded)."""
    path: list[dict] = []
    node = span
    while node.children:
        node = max(node.children, key=lambda child: (child.duration, -child.id))
        path.append({"name": node.name, "duration_s": node.duration})
    return path


def _shard_scope_rss(trace: Trace) -> dict[str, float]:
    """Peak-RSS gauge per ``shard-*`` metrics scope in the stream."""
    peaks: dict[str, float] = {}
    for record in trace.metrics:
        scope = record.get("scope", "")
        if not scope.startswith("shard"):
            continue
        gauges = record.get("metrics", {}).get("gauges", {})
        rss = gauges.get("process.peak_rss_kb")
        if rss is not None:
            peaks[scope] = max(peaks.get(scope, 0.0), rss)
    return peaks


def summarize(trace: Trace) -> dict:
    """Per-phase totals, per-shard critical paths, per-epoch timings, metrics."""
    phases: dict[str, dict] = {}
    aborted = errors = 0
    for span in trace.spans.values():
        entry = phases.setdefault(
            span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span.duration
        entry["max_s"] = max(entry["max_s"], span.duration)
        if span.status == "aborted":
            aborted += 1
        elif span.status == "error":
            errors += 1

    shard_rss = _shard_scope_rss(trace)
    shards = []
    for span in sorted(
        (s for s in trace.spans.values() if s.name == "shard"),
        key=lambda s: (s.attrs.get("shard", -1), s.id),
    ):
        index = span.attrs.get("shard")
        shards.append(
            {
                "shard": index,
                "duration_s": span.duration,
                "status": span.status,
                "resumed": bool(span.attrs.get("resumed", False)),
                "spans": _count_subtree(span),
                "critical_path": _critical_path(span),
                "peak_rss_kb": shard_rss.get(f"shard-{index:03d}")
                if isinstance(index, int)
                else None,
            }
        )

    epochs = [
        {
            "epoch": span.attrs.get("epoch"),
            "duration_s": span.duration,
            "status": span.status,
        }
        for span in sorted(
            (s for s in trace.spans.values() if s.name == "epoch"),
            key=lambda s: (s.attrs.get("epoch", -1), s.id),
        )
    ]

    scenarios = [
        {
            "suite": span.attrs.get("suite"),
            "kind": span.attrs.get("kind"),
            "duration_s": span.duration,
            "status": span.status,
        }
        for span in sorted(
            (s for s in trace.spans.values() if s.name == "scenario"),
            key=lambda s: (str(s.attrs.get("suite", "")), s.id),
        )
    ]

    campaign_metrics: dict = {}
    for record in trace.metrics:  # last campaign-scope snapshot wins
        if record.get("scope") == "campaign":
            campaign_metrics = record.get("metrics", {})
    if not campaign_metrics and trace.metrics:
        campaign_metrics = trace.metrics[-1].get("metrics", {})

    starts = [span.start for span in trace.spans.values()]
    ends = [span.end for span in trace.spans.values() if span.end is not None]
    return {
        "totals": {
            "spans": len(trace.spans),
            "events": len(trace.events),
            "aborted_spans": aborted,
            "error_spans": errors,
            "wall_s": (max(ends) - min(starts)) if starts and ends else 0.0,
        },
        "phases": {name: phases[name] for name in sorted(phases)},
        "shards": shards,
        "epochs": epochs,
        "scenarios": scenarios,
        "metrics": campaign_metrics,
    }


def _count_subtree(span: Span) -> int:
    count = 1
    stack = list(span.children)
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node.children)
    return count


def diff(before: Trace, after: Trace) -> dict:
    """Per-phase timing comparison between two traces."""
    a = summarize(before)
    b = summarize(after)
    names = sorted(set(a["phases"]) | set(b["phases"]))
    phases = {}
    for name in names:
        at = a["phases"].get(name, {}).get("total_s", 0.0)
        bt = b["phases"].get(name, {}).get("total_s", 0.0)
        phases[name] = {
            "before_s": at,
            "after_s": bt,
            "delta_s": bt - at,
            "ratio": (bt / at) if at else None,
        }
    return {
        "phases": phases,
        "totals": {"before": a["totals"], "after": b["totals"]},
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_summary(summary: dict) -> str:
    lines = []
    totals = summary["totals"]
    lines.append(
        f"trace: {totals['spans']} spans, {totals['events']} events, "
        f"{totals['wall_s']:.3f}s wall, {totals['aborted_spans']} aborted, "
        f"{totals['error_spans']} errored"
    )
    lines.append("phases:")
    for name, entry in summary["phases"].items():
        lines.append(
            f"  {name:<16} x{entry['count']:<5} total {entry['total_s']:.3f}s "
            f"max {entry['max_s']:.3f}s"
        )
    if summary["epochs"]:
        lines.append("epochs:")
        for epoch in summary["epochs"]:
            lines.append(
                f"  epoch {epoch['epoch']}: {epoch['duration_s']:.3f}s "
                f"[{epoch['status']}]"
            )
    if summary.get("scenarios"):
        lines.append("scenarios:")
        for scenario in summary["scenarios"]:
            lines.append(
                f"  {scenario['suite']} ({scenario['kind']}): "
                f"{scenario['duration_s']:.3f}s [{scenario['status']}]"
            )
    if summary["shards"]:
        lines.append("shards:")
        for shard in summary["shards"]:
            rss = shard["peak_rss_kb"]
            rss_text = f" peak-rss {rss:.0f}kB" if rss else ""
            chain = " > ".join(step["name"] for step in shard["critical_path"])
            lines.append(
                f"  shard {shard['shard']}: {shard['duration_s']:.3f}s "
                f"[{shard['status']}]{' resumed' if shard['resumed'] else ''}"
                f"{rss_text}  critical: {chain or '-'}"
            )
    counters = summary["metrics"].get("counters", {})
    gauges = summary["metrics"].get("gauges", {})
    if counters or gauges:
        lines.append("metrics:")
        for name, value in counters.items():
            lines.append(f"  {name} = {value}")
        for name, value in gauges.items():
            lines.append(f"  {name} = {value:.0f}")
    return "\n".join(lines)


def render_diff(result: dict) -> str:
    lines = ["phase            before_s   after_s    delta_s"]
    for name, entry in result["phases"].items():
        lines.append(
            f"{name:<16} {entry['before_s']:>8.3f} {entry['after_s']:>9.3f} "
            f"{entry['delta_s']:>+10.3f}"
        )
    return "\n".join(lines)


def write_summary_json(payload: dict, out: str | Path) -> None:
    """Write a summary/diff payload atomically (the sanctioned JSON path)."""
    from repro.core.shard import write_json_atomic

    write_json_atomic(Path(out), payload)
