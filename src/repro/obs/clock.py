"""The only sanctioned clock access point inside ``src/repro/``.

Campaign code must never read wall or monotonic time directly: timestamps
are observational noise that would otherwise leak into planning, hashing,
or checkpoint contents and break the block-keyed determinism contract.
Everything time-shaped goes through this module — ``repro-lint``'s
``telemetry-hygiene`` rule rejects any other ``import time`` under
``src/repro/``, and ``rng-discipline`` carves out exactly this file from
its wall-clock ban.

Tests swap in a :class:`FrozenClock` via :func:`set_default_clock` to make
span durations — and therefore ``summarize --json`` output — byte-stable.
"""

from __future__ import annotations

import time


class Clock:
    """Real clocks: monotonic for durations, wall for human-facing stamps."""

    def monotonic(self) -> float:
        return time.perf_counter()

    def wall(self) -> float:
        return time.time()


class FrozenClock(Clock):
    """A deterministic clock: every reading advances by a fixed tick.

    Advancing on *read* (rather than standing still) keeps span durations
    strictly positive and distinct, so ordering-sensitive report code is
    exercised identically run to run.
    """

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        self._now = float(start)
        self._tick = float(tick)

    def monotonic(self) -> float:
        now = self._now
        self._now += self._tick
        return now

    def wall(self) -> float:
        return self.monotonic()


_default: Clock = Clock()


def default_clock() -> Clock:
    """The process-wide clock new tracers bind to."""
    return _default


def set_default_clock(clock: Clock) -> Clock:
    """Swap the process-wide clock (tests); returns the previous one."""
    global _default
    previous = _default
    _default = clock
    return previous


def monotonic() -> float:
    """Monotonic seconds from the current default clock."""
    return _default.monotonic()


def wall() -> float:
    """Wall-clock seconds from the current default clock."""
    return _default.wall()
