"""``python -m repro.obs`` — the trace CLI.

Commands::

    python -m repro.obs summarize <trace.jsonl> [--json] [--out PATH]
    python -m repro.obs diff <before.jsonl> <after.jsonl> [--json] [--out PATH]

Exit codes: 0 on success, 1 on a malformed trace (the CI trace gate rides
this), 2 on usage errors (argparse's convention).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs import report


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Summarize or diff campaign trace streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    summarize = commands.add_parser(
        "summarize", help="per-phase totals, per-shard critical path, metrics"
    )
    summarize.add_argument("trace", help="path to a trace.jsonl stream")
    summarize.add_argument("--json", action="store_true", help="emit JSON")
    summarize.add_argument(
        "--out", help="also write the JSON payload atomically to this path"
    )

    diff = commands.add_parser("diff", help="compare per-phase totals of two traces")
    diff.add_argument("before", help="baseline trace.jsonl")
    diff.add_argument("after", help="candidate trace.jsonl")
    diff.add_argument("--json", action="store_true", help="emit JSON")
    diff.add_argument(
        "--out", help="also write the JSON payload atomically to this path"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summarize":
            payload = report.summarize(report.load_trace(args.trace))
            rendered = report.render_summary(payload)
        else:
            payload = report.diff(
                report.load_trace(args.before), report.load_trace(args.after)
            )
            rendered = report.render_diff(payload)
    except report.TraceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.out:
        report.write_summary_json(payload, args.out)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
