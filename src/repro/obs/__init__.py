"""repro.obs: write-only telemetry for campaigns (spans, metrics, traces).

The subsystem is dependency-free (stdlib only) and strictly *write-only*
with respect to the measurement pipeline: nothing the pipeline computes may
depend on a value read back from a :class:`~repro.obs.trace.Tracer` or the
:class:`~repro.obs.metrics.MetricsRegistry` — traces on vs. off must leave
every campaign row, censorship event, and BENCH ratio bit-identical.  The
``telemetry-hygiene`` repro-lint rule enforces that contract syntactically;
``tests/core/test_telemetry_equivalence.py`` pins it end to end.

Layout:

- :mod:`repro.obs.clock` — the only sanctioned wall/monotonic-clock access
  point inside ``src/repro/`` (``FrozenClock`` makes timestamps
  deterministic in tests).
- :mod:`repro.obs.trace` — ``Tracer`` writes nested span records to an
  append-only JSONL stream; ``NullTracer`` is the zero-overhead default.
- :mod:`repro.obs.metrics` — process-local counters/gauges/histograms,
  including a peak-RSS gauge via ``resource.getrusage``.
- :mod:`repro.obs.report` + ``python -m repro.obs`` — summarize a trace
  tree (per-phase totals, per-shard critical path) or diff two traces.
"""

from repro.obs.clock import Clock, FrozenClock, default_clock, set_default_clock
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, progress_listener

__all__ = [
    "Clock",
    "FrozenClock",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "default_clock",
    "get_registry",
    "progress_listener",
    "set_default_clock",
]
