"""Process-local telemetry metrics: counters, gauges, histograms.

The registry is write-mostly: pipeline code only ever calls ``add`` /
``set`` / ``set_max`` / ``observe``; reading a value back (``snapshot``)
is reserved for the obs layer itself, tests, and benchmarks — the
``telemetry-hygiene`` lint rule bans read-backs inside ``src/repro/`` so
telemetry can never steer a campaign (observer-effect ban).

Metric names in use across the tree (dotted, lowercase):

=============================  =====================================================
``store.rows_ingested``        rows appended to a :class:`MeasurementStore`
``store.rows_adopted``         rows arriving via segment adoption (shard merge)
``store.segments_sealed``      pending chunks sealed into columnar segments
``store.segments_spilled``     segments written to ``.npz`` spill files
``store.segments_adopted``     spilled/resident segments adopted zero-copy
``store.fold_advances``        fold-once query watermark advances
``store.segments_folded``      segments folded into incremental count state
``store.query_folds``          segment/pending chunks the query kernel folded
``runner.blocks_planned``      visit blocks planned from scratch
``runner.blocks_replayed``     visit blocks replayed from the plan cache
``cusum.cells_scanned``        (cell, day) positions the CUSUM scan visited
``timing_cusum.cells_scanned``  (cell, day) positions the timing scan visited
``longitudinal.epochs_run``    epochs executed by the engine
``longitudinal.epochs_resumed``  epochs adopted from checkpoints instead
``sweep.cells_forged``         adversary grid cells forged
``process.peak_rss_kb``        gauge: ``ru_maxrss`` of this process
=============================  =====================================================
"""

from __future__ import annotations

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (e.g. peak RSS)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def set_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """A bounded summary of observations: count / total / min / max.

    Full reservoirs are overkill for the repro's needs; the four running
    aggregates are enough for rows/sec and per-phase cost reporting while
    keeping ``observe`` O(1) and allocation-free.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class MetricsRegistry:
    """Named counters, gauges, and histograms for one process."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- write API (safe anywhere) -------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram()
        return instrument

    def update_peak_rss(self) -> None:
        """Refresh ``process.peak_rss_kb`` from ``getrusage`` (write-only)."""
        if resource is None:  # pragma: no cover - non-POSIX
            return
        peak_kb = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
        self.gauge("process.peak_rss_kb").set_max(peak_kb)

    def reset(self) -> None:
        """Drop every instrument (test isolation only)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- read API (obs layer, tests, and benchmarks only) --------------
    def snapshot(self) -> dict:
        """A JSON-ready copy of every instrument, sorted by name.

        Never call this from ``src/repro/`` outside ``obs/`` — the
        ``telemetry-hygiene`` rule flags it as an observer-effect leak.
        """
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min if h.count else 0.0,
                    "max": h.max if h.count else 0.0,
                }
                for name, h in sorted(self._histograms.items())
            },
        }


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry campaign instrumentation writes to."""
    return _registry
