"""Task scheduling (paper §5.3).

The coordination server decides which measurement task each visiting client
runs.  Scheduling has two goals: respect client restrictions (the script task
type only works on Chrome; long-dwelling visitors can run several tasks), and
replicate the same measurement across many clients, countries, and ISPs
within a short window so the inference stage can compare regions rather than
trusting single reports.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.tasks import MeasurementTask, TaskType
from repro.population.clients import Client


@dataclass
class TaskPool:
    """A named, weighted pool of tasks the scheduler draws from.

    The paper's experiment split — roughly 30% of clients measure testbed
    resources and 70% measure suspected-filtered resources (§7) — is
    expressed as two pools with weights 0.3 and 0.7.
    """

    name: str
    tasks: list[MeasurementTask]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("pool weight must be non-negative")

    def runnable_tasks(self, client: Client) -> list[MeasurementTask]:
        return [task for task in self.tasks if task.runnable_by(client.browser)]


@dataclass
class ScheduleDecision:
    """The tasks assigned to one client visit."""

    client: Client
    tasks: list[MeasurementTask] = field(default_factory=list)
    pool_name: str | None = None


class Scheduler:
    """Assigns tasks to visiting clients."""

    #: Dwell time (seconds) below which a client is unlikely to finish even a
    #: single task and report back (paper §6.2 uses 10 s as comfortably
    #: sufficient; 3 s is the bare minimum modelled here).
    MIN_DWELL_FOR_ONE_TASK_S = 3.0
    #: Dwell time beyond which the scheduler assigns additional tasks.
    DWELL_FOR_MULTIPLE_TASKS_S = 60.0
    #: Maximum tasks per visit, to bound client-side overhead.
    MAX_TASKS_PER_VISIT = 3

    def __init__(self, pools: list[TaskPool], rng: np.random.Generator | int | None = None) -> None:
        if not pools:
            raise ValueError("scheduler needs at least one task pool")
        self.pools = pools
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        #: How many times each measurement ID has been assigned, used to
        #: balance replication across the pool.
        self.assignment_counts: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def _choose_pool(self, client: Client) -> TaskPool | None:
        candidates = [pool for pool in self.pools if pool.runnable_tasks(client)]
        if not candidates:
            return None
        weights = np.array([pool.weight for pool in candidates], dtype=float)
        if weights.sum() <= 0:
            weights = np.ones(len(candidates))
        weights = weights / weights.sum()
        index = int(self._rng.choice(len(candidates), p=weights))
        return candidates[index]

    def _choose_task(self, pool: TaskPool, client: Client) -> MeasurementTask | None:
        runnable = pool.runnable_tasks(client)
        if not runnable:
            return None
        # Prefer the least-assigned tasks so replication is spread evenly; tie
        # break randomly for diversity within a window.
        least = min(self.assignment_counts[t.measurement_id] for t in runnable)
        pick_from = [t for t in runnable if self.assignment_counts[t.measurement_id] == least]
        task = pick_from[int(self._rng.integers(0, len(pick_from)))]
        self.assignment_counts[task.measurement_id] += 1
        return task

    # ------------------------------------------------------------------
    def schedule(self, client: Client) -> ScheduleDecision:
        """Decide which tasks ``client`` should run during this visit."""
        decision = ScheduleDecision(client=client)
        if not client.can_run_task or client.dwell_time_s < self.MIN_DWELL_FOR_ONE_TASK_S:
            return decision
        pool = self._choose_pool(client)
        if pool is None:
            return decision
        decision.pool_name = pool.name
        task_budget = 1
        if client.dwell_time_s >= self.DWELL_FOR_MULTIPLE_TASKS_S:
            task_budget = self.MAX_TASKS_PER_VISIT
        seen_ids: set[str] = set()
        for _ in range(task_budget):
            task = self._choose_task(pool, client)
            if task is None or task.measurement_id in seen_ids:
                break
            seen_ids.add(task.measurement_id)
            decision.tasks.append(task)
        return decision

    # ------------------------------------------------------------------
    def replication_report(self) -> dict[str, int]:
        """How many times each measurement has been assigned so far."""
        return dict(self.assignment_counts)

    @property
    def all_tasks(self) -> list[MeasurementTask]:
        return [task for pool in self.pools for task in pool.tasks]

    def tasks_of_type(self, task_type: TaskType) -> list[MeasurementTask]:
        return [task for task in self.all_tasks if task.task_type is task_type]
