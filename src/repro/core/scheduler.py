"""Task scheduling (paper §5.3).

The coordination server decides which measurement task each visiting client
runs.  Scheduling has two goals: respect client restrictions (the script task
type only works on Chrome; long-dwelling visitors can run several tasks), and
replicate the same measurement across many clients, countries, and ISPs
within a short window so the inference stage can compare regions rather than
trusting single reports.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.tasks import MeasurementTask, TaskType
from repro.population.clients import Client


def capability_key(browser_profile) -> tuple[bool, bool, bool]:
    """The browser capabilities that determine which tasks are runnable.

    Two clients with the same key see exactly the same runnable subset of
    every pool, which is what lets :meth:`Scheduler.assign_batch` share
    filtered task lists across a whole batch instead of rebuilding them per
    client.
    """
    return (
        browser_profile.javascript_enabled,
        browser_profile.supports_script_task,
        browser_profile.supports_computed_style_check,
    )


@dataclass
class TaskPool:
    """A named, weighted pool of tasks the scheduler draws from.

    The paper's experiment split — roughly 30% of clients measure testbed
    resources and 70% measure suspected-filtered resources (§7) — is
    expressed as two pools with weights 0.3 and 0.7.
    """

    name: str
    tasks: list[MeasurementTask]
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("pool weight must be non-negative")

    def runnable_tasks(self, client: Client) -> list[MeasurementTask]:
        return [task for task in self.tasks if task.runnable_by(client.browser)]


@dataclass
class ScheduleDecision:
    """The tasks assigned to one client visit.

    ``client`` is ``None`` when the decision came from the array-based
    :meth:`Scheduler.assign_batch` path, where visitors are columns of a
    :class:`~repro.population.clients.ClientBatch` rather than objects.
    """

    client: Client | None
    tasks: list[MeasurementTask] = field(default_factory=list)
    pool_name: str | None = None


class Scheduler:
    """Assigns tasks to visiting clients."""

    #: Dwell time (seconds) below which a client is unlikely to finish even a
    #: single task and report back (paper §6.2 uses 10 s as comfortably
    #: sufficient; 3 s is the bare minimum modelled here).
    MIN_DWELL_FOR_ONE_TASK_S = 3.0
    #: Dwell time beyond which the scheduler assigns additional tasks.
    DWELL_FOR_MULTIPLE_TASKS_S = 60.0
    #: Maximum tasks per visit, to bound client-side overhead.
    MAX_TASKS_PER_VISIT = 3

    def __init__(self, pools: list[TaskPool], rng: np.random.Generator | int | None = None) -> None:
        if not pools:
            raise ValueError("scheduler needs at least one task pool")
        self.pools = pools
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        #: How many times each measurement ID has been assigned, used to
        #: balance replication across the pool.
        self.assignment_counts: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    @staticmethod
    def _cumulative_weights(pools: Sequence[TaskPool]) -> list[float]:
        weights = [pool.weight for pool in pools]
        total = sum(weights)
        if total <= 0:
            weights = [1.0] * len(pools)
            total = float(len(pools))
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        return cumulative

    def _choose_pool(self, client: Client) -> TaskPool | None:
        candidates = [pool for pool in self.pools if pool.runnable_tasks(client)]
        if not candidates:
            return None
        cumulative = self._cumulative_weights(candidates)
        index = min(bisect_right(cumulative, self._rng.random()), len(candidates) - 1)
        return candidates[index]

    def _pick_least_assigned(self, runnable: Sequence[MeasurementTask]) -> MeasurementTask:
        """Pick among the least-assigned of ``runnable`` with a random tie-break.

        Consumes exactly one uniform draw; :meth:`assign_batch` relies on this
        layout to replicate :meth:`schedule`'s stream.
        """
        least = min(self.assignment_counts[t.measurement_id] for t in runnable)
        pick_from = [t for t in runnable if self.assignment_counts[t.measurement_id] == least]
        index = min(int(self._rng.random() * len(pick_from)), len(pick_from) - 1)
        task = pick_from[index]
        self.assignment_counts[task.measurement_id] += 1
        return task

    def _choose_task(self, pool: TaskPool, client: Client) -> MeasurementTask | None:
        runnable = pool.runnable_tasks(client)
        if not runnable:
            return None
        # Prefer the least-assigned tasks so replication is spread evenly; tie
        # break randomly for diversity within a window.
        return self._pick_least_assigned(runnable)

    # ------------------------------------------------------------------
    def schedule(self, client: Client) -> ScheduleDecision:
        """Decide which tasks ``client`` should run during this visit."""
        decision = ScheduleDecision(client=client)
        if not client.can_run_task or client.dwell_time_s < self.MIN_DWELL_FOR_ONE_TASK_S:
            return decision
        pool = self._choose_pool(client)
        if pool is None:
            return decision
        decision.pool_name = pool.name
        task_budget = 1
        if client.dwell_time_s >= self.DWELL_FOR_MULTIPLE_TASKS_S:
            task_budget = self.MAX_TASKS_PER_VISIT
        seen_ids: set[str] = set()
        for _ in range(task_budget):
            task = self._choose_task(pool, client)
            if task is None or task.measurement_id in seen_ids:
                break
            seen_ids.add(task.measurement_id)
            decision.tasks.append(task)
        return decision

    # ------------------------------------------------------------------
    class _Drain:
        """Amortized least-assigned pick state for one (pool, runnable subset).

        ``queue`` holds the tasks currently at the minimum assignment count,
        in runnable order — exactly the ``pick_from`` list the reference scan
        would rebuild.  Removing the picked task keeps it valid; it is
        rescanned only when it empties or when a *different* runnable subset
        has picked from the same pool in between (``version`` mismatch),
        which is the only way the subset's minimum can change underneath it.
        """

        __slots__ = ("queue", "version")

        def __init__(self) -> None:
            self.queue: list = []
            self.version = -1

    def _class_candidates(self, by_class: dict, drains: dict, pool_versions: dict,
                          key: tuple, browser_profile):
        """Cached (candidate pools, runnable lists, cumulative weights) per class."""
        entry = by_class.get(key)
        if entry is None:
            candidates = []
            for pool in self.pools:
                runnable = [t for t in pool.tasks if t.runnable_by(browser_profile)]
                if runnable:
                    # Parallel (task, measurement id) pairs save an attribute
                    # lookup on every least-assigned scan; the drain is shared
                    # by every capability class with the same runnable subset.
                    pairs = list(zip(runnable, [t.measurement_id for t in runnable]))
                    drain_key = (id(pool), tuple(id(t) for t in runnable))
                    drain = drains.get(drain_key)
                    if drain is None:
                        drain = self._Drain()
                        drains[drain_key] = drain
                    candidates.append((pool, pairs, drain))
                    pool_versions.setdefault(id(pool), 0)
            cumulative = self._cumulative_weights([pool for pool, _, _ in candidates])
            entry = (candidates, cumulative)
            by_class[key] = entry
        return entry

    def _assign_one(self, decision: ScheduleDecision, candidates, cumulative,
                    pool_versions: dict, multiple_tasks: bool) -> None:
        """Pick a pool and its task(s) for one eligible visitor.

        Consumes exactly the draws :meth:`schedule` would: one uniform for
        the pool, one per task pick (duplicates included).
        """
        rng_uniform = self._rng.random
        counts = self.assignment_counts
        index = min(bisect_right(cumulative, rng_uniform()), len(candidates) - 1)
        pool, runnable, drain = candidates[index]
        pool_key = id(pool)
        decision.pool_name = pool.name
        task_budget = self.MAX_TASKS_PER_VISIT if multiple_tasks else 1
        seen_ids: set[str] = set()
        for _ in range(task_budget):
            version = pool_versions[pool_key]
            pick_from = drain.queue
            if drain.version != version or not pick_from:
                # Rescan: collect the least-assigned tasks in runnable order
                # (the same pick_from list the reference scan would build).
                least = None
                pick_from = []
                for pair in runnable:
                    count = counts[pair[1]]
                    if least is None or count < least:
                        least = count
                        pick_from = [pair]
                    elif count == least:
                        pick_from.append(pair)
                drain.queue = pick_from
            pick = min(int(rng_uniform() * len(pick_from)), len(pick_from) - 1)
            task, measurement_id = pick_from.pop(pick)
            counts[measurement_id] += 1
            pool_versions[pool_key] = drain.version = version + 1
            if measurement_id in seen_ids:
                break
            seen_ids.add(measurement_id)
            decision.tasks.append(task)

    def assign_batch(self, clients) -> list[ScheduleDecision]:
        """Schedule a whole batch of visiting clients.

        Produces exactly the same decisions (and consumes exactly the same
        RNG stream) as calling :meth:`schedule` once per client in order, but
        groups clients by browser capability class so each pool's runnable
        task list is filtered once per class instead of once per client.
        The equivalence is pinned by ``tests/core/test_runner_equivalence.py``.

        ``clients`` is either a sequence of :class:`Client` objects or a
        :class:`~repro.population.clients.ClientBatch`, whose column arrays
        avoid materializing per-visitor objects entirely.
        """
        from repro.population.clients import ClientBatch

        by_class: dict[tuple, tuple] = {}
        #: (id(pool), runnable-subset signature) -> _Drain
        drains: dict[tuple, Scheduler._Drain] = {}
        #: id(pool) -> number of picks made from that pool this call
        pool_versions: dict[int, int] = {}
        min_dwell = self.MIN_DWELL_FOR_ONE_TASK_S
        multi_dwell = self.DWELL_FOR_MULTIPLE_TASKS_S
        decisions: list[ScheduleDecision] = []
        if isinstance(clients, ClientBatch):
            profiles = clients.browser_profiles
            keys = [capability_key(p) for p in profiles]
            dwell = clients.dwell_times_s.tolist()
            automated = clients.automated.tolist()
            browser_idx = clients.browser_indices.tolist()
            js_enabled = [p.javascript_enabled for p in profiles]
            for index in range(len(browser_idx)):
                decision = ScheduleDecision(client=None)
                decisions.append(decision)
                profile_idx = browser_idx[index]
                # client.can_run_task and the 3 s dwell floor, from columns.
                if (
                    automated[index]
                    or not js_enabled[profile_idx]
                    or dwell[index] < min_dwell
                ):
                    continue
                candidates, cumulative = self._class_candidates(
                    by_class, drains, pool_versions, keys[profile_idx], profiles[profile_idx]
                )
                if not candidates:
                    continue
                self._assign_one(
                    decision, candidates, cumulative, pool_versions,
                    dwell[index] >= multi_dwell,
                )
            return decisions
        for client in clients:
            decision = ScheduleDecision(client=client)
            decisions.append(decision)
            if not client.can_run_task or client.dwell_time_s < min_dwell:
                continue
            candidates, cumulative = self._class_candidates(
                by_class, drains, pool_versions, capability_key(client.browser), client.browser
            )
            if not candidates:
                continue
            self._assign_one(
                decision, candidates, cumulative, pool_versions,
                client.dwell_time_s >= multi_dwell,
            )
        return decisions

    # ------------------------------------------------------------------
    def scoped(self, rng: np.random.Generator | int | None) -> "Scheduler":
        """A scheduler over the same pools with its own RNG and counts.

        The block-keyed campaign planner schedules every planning block with
        a fresh scope (RNG derived from the campaign seed and block index,
        assignment counts starting empty) so a block's decisions are a pure
        function of the block — the property process-sharded campaigns rely
        on.  Merge the scope's counts back with :meth:`absorb_counts` to keep
        the campaign-wide :meth:`replication_report` meaningful.
        """
        return Scheduler(self.pools, rng=rng)

    def absorb_counts(self, counts: dict[str, int]) -> None:
        """Fold a scoped scheduler's (or a shard worker's) assignment counts in."""
        for measurement_id, count in counts.items():
            self.assignment_counts[measurement_id] += count

    def replication_report(self) -> dict[str, int]:
        """How many times each measurement has been assigned so far."""
        return dict(self.assignment_counts)

    @property
    def all_tasks(self) -> list[MeasurementTask]:
        return [task for pool in self.pools for task in pool.tasks]

    def tasks_of_type(self, task_type: TaskType) -> list[MeasurementTask]:
        return [task for task in self.all_tasks if task.task_type is task_type]
