"""Measurement-target lists and deployment phases.

Encore's input is a list of potentially filtered URL patterns (paper §5.1);
curating the list is explicitly out of scope, so the list is pluggable.  The
paper also documents (Table 2) how ethical review progressively restricted
the deployed target set — from a 300+ URL list, to favicons only, to favicons
on a few high-traffic sites — and we model those phases so experiments can be
run under each restriction level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datasets.herdict import TargetListEntry, build_high_value_list
from repro.web.url import URL, URLPattern


@dataclass
class TargetList:
    """A list of URL patterns to test for Web filtering."""

    entries: list[TargetListEntry] = field(default_factory=list)

    @classmethod
    def high_value(cls, total: int = 204, online: int = 178) -> "TargetList":
        """The synthetic stand-in for the Herdict high-value list (§6.1)."""
        return cls(entries=build_high_value_list(total=total, online=online))

    @classmethod
    def from_domains(cls, domains: Iterable[str], category: str = "uncategorised") -> "TargetList":
        """A list measuring the given domains in their entirety."""
        return cls(
            entries=[
                TargetListEntry(pattern=URLPattern.domain(d, category=category), online=True)
                for d in domains
            ]
        )

    @classmethod
    def from_urls(cls, urls: Iterable[str], category: str = "uncategorised") -> "TargetList":
        """A list measuring specific URLs."""
        return cls(
            entries=[
                TargetListEntry(pattern=URLPattern.exact(u, category=category), online=True)
                for u in urls
            ]
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def patterns(self) -> list[URLPattern]:
        return [entry.pattern for entry in self.entries]

    @property
    def online_entries(self) -> list[TargetListEntry]:
        return [entry for entry in self.entries if entry.online]

    @property
    def online_domains(self) -> list[str]:
        return [entry.domain for entry in self.online_entries]

    def restrict_to_domains(self, domains: Iterable[str]) -> "TargetList":
        """A new list containing only patterns anchored at ``domains``."""
        allowed = {d.lower() for d in domains}
        return TargetList(
            entries=[e for e in self.entries if e.domain.lower() in allowed]
        )

    def matching_entry(self, url: URL | str) -> TargetListEntry | None:
        """The first entry whose pattern matches ``url``."""
        parsed = url if isinstance(url, URL) else URL.parse(url)
        for entry in self.entries:
            if entry.pattern.matches(parsed):
                return entry
        return None


@dataclass(frozen=True)
class DeploymentPhase:
    """One phase of the paper's Table 2 deployment timeline."""

    name: str
    start: str
    description: str
    #: Restriction applied to the target list during this phase.
    restriction: str  # "full_list", "favicons_only", or "favicons_few_sites"
    #: Domains measured during the most restricted phase.
    restricted_domains: tuple[str, ...] = ()


def deployment_phases() -> list[DeploymentPhase]:
    """The measurement-collection phases of Table 2.

    The three substantive phases are: the initial 300+ URL list (March 2014),
    favicons only (April 2, 2014), and favicons on only a few sites
    (May 5, 2014) — the configuration whose data the SIGCOMM submission
    reports.  The most restricted phase measured only Facebook, YouTube, and
    Twitter (§7.2).
    """
    return [
        DeploymentPhase(
            name="initial_url_list",
            start="2014-03-13",
            description="Collection begins with a list of over 300 URLs.",
            restriction="full_list",
        ),
        DeploymentPhase(
            name="favicons_only",
            start="2014-04-02",
            description="To combat data sparsity, Encore measures only favicons.",
            restriction="favicons_only",
        ),
        DeploymentPhase(
            name="favicons_few_sites",
            start="2014-05-05",
            description="Out of ethical concern, favicons on only a few sites.",
            restriction="favicons_few_sites",
            restricted_domains=("facebook.com", "youtube.com", "twitter.com"),
        ),
    ]


def apply_phase(target_list: TargetList, phase: DeploymentPhase) -> TargetList:
    """Restrict ``target_list`` according to a deployment phase."""
    if phase.restriction == "full_list":
        return target_list
    if phase.restriction == "favicons_only":
        # The list keeps its domains but tasks are limited to favicons; the
        # task generator enforces the favicon restriction, so the list itself
        # is unchanged here.
        return target_list
    if phase.restriction == "favicons_few_sites":
        return target_list.restrict_to_domains(phase.restricted_domains)
    raise ValueError(f"unknown restriction {phase.restriction!r}")
