"""Encore itself: the paper's primary contribution.

The core package turns a list of potentially censored URL patterns into
measurement tasks (``task_generation``), schedules and delivers those tasks
to visiting clients (``scheduler``, ``coordination``), executes them inside
client browsers (``tasks``), collects the results (``collection``), and
infers Web filtering from the collected measurements (``inference``).
``pipeline`` wires the stages into a runnable deployment.
"""

from repro.core.tasks import (
    CACHED_PROBE_THRESHOLD_MS,
    MeasurementTask,
    TaskOutcome,
    TaskResult,
    TaskType,
    execute_task,
    measurement_snippet_js,
    origin_embed_html,
)
from repro.core.targets import TargetList, deployment_phases
from repro.core.task_generation import (
    DomainAmenability,
    FeasibilityReport,
    PageStatistics,
    PatternExpander,
    TargetFetcher,
    TaskGenerationLimits,
    TaskGenerationPipeline,
    TaskGenerator,
)
from repro.core.scheduler import Scheduler, TaskPool
from repro.core.coordination import CoordinationServer
from repro.core.collection import CollectionServer, Measurement
from repro.core.store import DayGroupedCounts, GroupedCounts, MeasurementStore, Selection
from repro.core.query import (
    Count,
    DenseResult,
    DistinctCount,
    Quantiles,
    Query,
    QueryResult,
    SuccessCount,
    Sum,
    TimingDaySeries,
    dense_day_series,
    distinct_ip_count,
    grouped_success_counts,
    masked_grouped_success_counts,
    run_query,
    timing_day_series,
)
from repro.core.inference import (
    AdaptiveFilteringDetector,
    BinomialFilteringDetector,
    CensorshipEvent,
    CusumChangePointDetector,
    FilteringDetection,
    TimingCusumDetector,
)
from repro.core.longitudinal import (
    LongitudinalConfig,
    LongitudinalEngine,
    LongitudinalResult,
)
from repro.core.robustness import (
    AdaptiveReputationFilter,
    AdversarySweep,
    PoisoningAttacker,
    PoisoningCampaign,
    ReputationFilter,
    SweepCell,
)
from repro.core.origin import OriginSite, snippet_overhead_bytes
from repro.core.pipeline import CampaignConfig, CampaignResult, EncoreDeployment
from repro.core.shard import (
    ShardAssignment,
    ShardPlanner,
    ShardProgress,
    StoreMerger,
    run_sharded,
)

__all__ = [
    "CACHED_PROBE_THRESHOLD_MS",
    "MeasurementTask",
    "TaskOutcome",
    "TaskResult",
    "TaskType",
    "execute_task",
    "measurement_snippet_js",
    "origin_embed_html",
    "TargetList",
    "deployment_phases",
    "DomainAmenability",
    "FeasibilityReport",
    "PageStatistics",
    "PatternExpander",
    "TargetFetcher",
    "TaskGenerationLimits",
    "TaskGenerationPipeline",
    "TaskGenerator",
    "Scheduler",
    "TaskPool",
    "CoordinationServer",
    "CollectionServer",
    "Measurement",
    "MeasurementStore",
    "DayGroupedCounts",
    "GroupedCounts",
    "Selection",
    "Count",
    "DenseResult",
    "DistinctCount",
    "Quantiles",
    "Query",
    "QueryResult",
    "SuccessCount",
    "Sum",
    "TimingDaySeries",
    "dense_day_series",
    "distinct_ip_count",
    "grouped_success_counts",
    "masked_grouped_success_counts",
    "run_query",
    "timing_day_series",
    "AdaptiveFilteringDetector",
    "BinomialFilteringDetector",
    "CensorshipEvent",
    "CusumChangePointDetector",
    "FilteringDetection",
    "TimingCusumDetector",
    "LongitudinalConfig",
    "LongitudinalEngine",
    "LongitudinalResult",
    "AdaptiveReputationFilter",
    "AdversarySweep",
    "PoisoningAttacker",
    "PoisoningCampaign",
    "ReputationFilter",
    "SweepCell",
    "OriginSite",
    "snippet_overhead_bytes",
    "CampaignConfig",
    "CampaignResult",
    "EncoreDeployment",
    "ShardAssignment",
    "ShardPlanner",
    "ShardProgress",
    "StoreMerger",
    "run_sharded",
]
