"""Filtering detection: the binomial hypothesis test of §7.2.

Individual measurement failures are weak evidence — clients suffer transient
connectivity problems, browsers misbehave, sites go offline.  The paper
therefore models each measurement's success as a Bernoulli trial with
parameter ``p = 0.7`` (in the absence of filtering, clients should succeed at
least 70% of the time) and, for each resource and region, runs a one-sided
binomial test: the resource is considered filtered in region ``r`` if the
observed success count is improbably low at significance 0.05 — *and* the
same test does not fail in other regions, which rules out the resource simply
being down for everyone.

The detector consumes the grouped cell arrays of
:class:`~repro.core.store.GroupedCounts` (what the query kernel's
``grouped_success_counts`` returns) and evaluates the binomial
lower tail for *every* (domain, country) cell in one vectorized, SciPy-free
pass over a ragged term matrix; the legacy ``{(domain, country): (n, s)}``
dict is still accepted everywhere and converted on entry.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.collection import Measurement
from repro.core.store import (
    DayGroupedCounts,
    DenseDayCounts,
    GroupedCounts,
    MeasurementStore,
)
from repro.core.tasks import TaskOutcome
from repro.obs.metrics import get_registry


def binomial_cdf(successes: int, trials: int, p: float) -> float:
    """P[Binomial(trials, p) <= successes], computed in log space.

    Exact summation is cheap for the trial counts Encore sees (hundreds to a
    few thousand per region) and avoids a SciPy dependency in the core
    library.  This is the scalar reference; :func:`binomial_cdf_cells`
    evaluates many cells at once from the same log-factorial table.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if successes < 0:
        return 0.0
    if successes >= trials:
        return 1.0
    if p == 0.0:
        return 1.0
    if p == 1.0:
        return 0.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    log_fact = _log_factorials(trials)
    log_n_fact = float(log_fact[trials])
    total = 0.0
    for k in range(successes + 1):
        log_term = (
            log_n_fact
            - float(log_fact[k])
            - float(log_fact[trials - k])
            + k * log_p
            + (trials - k) * log_q
        )
        total += math.exp(log_term)
    return min(1.0, total)


#: Cached ``log(i!)`` table (``_LOG_FACTORIALS[i] == lgamma(i + 1)``), grown
#: geometrically so repeated detections share one table.
_LOG_FACTORIALS = np.zeros(1)


def _log_factorials(max_n: int) -> np.ndarray:
    global _LOG_FACTORIALS
    if len(_LOG_FACTORIALS) <= max_n:
        size = max(max_n + 1, 2 * len(_LOG_FACTORIALS))
        old = _LOG_FACTORIALS
        # Extend the cached prefix instead of rebuilding the whole table:
        # log(i!) = log((m-1)!) + sum(log m .. log i), accumulated in
        # extended precision so the running sum stays within ~1 ulp of
        # math.lgamma however far the table grows.
        increments = np.log(np.arange(len(old), size, dtype=np.longdouble))
        extension = np.longdouble(old[-1]) + np.cumsum(increments)
        _LOG_FACTORIALS = np.concatenate([old, extension.astype(np.float64)])
    return _LOG_FACTORIALS


def binomial_cdf_cells(successes, trials, p) -> np.ndarray:
    """Vectorized :func:`binomial_cdf` over many (successes, trials, p) cells.

    Builds one ragged term vector — cell ``i`` contributes ``successes[i]+1``
    log-space terms — and reduces it with a single ``np.add.reduceat``, so
    the whole detection table is evaluated in one pass without SciPy.
    """
    s = np.asarray(successes, dtype=np.int64)
    n = np.asarray(trials, dtype=np.int64)
    p = np.broadcast_to(np.asarray(p, dtype=np.float64), s.shape)
    if np.any(n < 0):
        raise ValueError("trials must be non-negative")
    if np.any((p < 0.0) | (p > 1.0)):
        raise ValueError("p must be in [0, 1]")
    out = np.ones(len(s), dtype=np.float64)
    out[s < 0] = 0.0
    out[(p == 1.0) & (s < n)] = 0.0
    interior = (s >= 0) & (s < n) & (p > 0.0) & (p < 1.0)
    cells = np.flatnonzero(interior)
    if len(cells) == 0:
        return out
    si, ni, pi = s[cells], n[cells], p[cells]
    terms_per_cell = si + 1
    offsets = np.concatenate(([0], np.cumsum(terms_per_cell)[:-1]))
    total_terms = int(terms_per_cell.sum())
    cell_of_term = np.repeat(np.arange(len(cells)), terms_per_cell)
    k = np.arange(total_terms) - offsets[cell_of_term]
    log_fact = _log_factorials(int(ni.max()))
    log_p = np.log(pi)
    log_q = np.log1p(-pi)
    n_of_term = ni[cell_of_term]
    terms = np.exp(
        log_fact[n_of_term]
        - log_fact[k]
        - log_fact[n_of_term - k]
        + k * log_p[cell_of_term]
        + (n_of_term - k) * log_q[cell_of_term]
    )
    out[cells] = np.minimum(1.0, np.add.reduceat(terms, offsets))
    return out


@dataclass(frozen=True)
class RegionStatistics:
    """Per-(domain, region) measurement counts and the test's p-value."""

    domain: str
    country_code: str
    measurements: int
    successes: int
    p_value: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.measurements if self.measurements else 0.0


@dataclass(frozen=True)
class FilteringDetection:
    """A resource the detector considers filtered in a region."""

    domain: str
    country_code: str
    measurements: int
    successes: int
    p_value: float
    corroborating_regions: int

    @property
    def success_rate(self) -> float:
        return self.successes / self.measurements if self.measurements else 0.0


@dataclass
class DetectionReport:
    """All region statistics plus the detections they support."""

    statistics: list[RegionStatistics] = field(default_factory=list)
    detections: list[FilteringDetection] = field(default_factory=list)

    def detected(self, domain: str, country_code: str) -> bool:
        return any(
            d.domain == domain and d.country_code == country_code for d in self.detections
        )

    def detections_for_domain(self, domain: str) -> list[FilteringDetection]:
        return [d for d in self.detections if d.domain == domain]

    def detected_pairs(self) -> set[tuple[str, str]]:
        return {(d.domain, d.country_code) for d in self.detections}


def _as_grouped(counts) -> GroupedCounts:
    return counts if isinstance(counts, GroupedCounts) else GroupedCounts.from_dict(counts)


class BinomialFilteringDetector:
    """The detection algorithm of §7.2, vectorized over all cells at once."""

    def __init__(
        self,
        success_prior: float = 0.7,
        significance: float = 0.05,
        min_measurements: int = 10,
    ) -> None:
        if not 0.0 < success_prior < 1.0:
            raise ValueError("success prior must be in (0, 1)")
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must be in (0, 1)")
        if min_measurements < 1:
            raise ValueError("min_measurements must be positive")
        self.success_prior = success_prior
        self.significance = significance
        self.min_measurements = min_measurements

    # ------------------------------------------------------------------
    def _cell_priors(
        self,
        domains: np.ndarray,
        countries: np.ndarray,
        totals: np.ndarray,
        successes: np.ndarray,
    ) -> np.ndarray:
        """Per-cell success prior; the adaptive subclass overrides this."""
        return np.full(len(totals), self.success_prior)

    def _scored_cells(self, grouped: GroupedCounts):
        """(domains, countries, n, successes, priors, p_values) for scored cells.

        Cells below ``min_measurements`` are dropped; the rest are scored
        with one vectorized binomial-tail evaluation.
        """
        keep = grouped.totals >= self.min_measurements
        domains = grouped.domains[keep]
        countries = grouped.countries[keep]
        totals = grouped.totals[keep]
        successes = grouped.successes[keep]
        priors = np.asarray(
            self._cell_priors(domains, countries, totals, successes), dtype=np.float64
        )
        p_values = binomial_cdf_cells(successes, totals, priors)
        return domains, countries, totals, successes, priors, p_values

    @staticmethod
    def _statistics_from_cells(domains, countries, totals, successes, p_values):
        return [
            RegionStatistics(
                domain=str(domain),
                country_code=str(country),
                measurements=int(n),
                successes=int(s),
                p_value=float(p_value),
            )
            for domain, country, n, s, p_value in zip(
                domains, countries, totals, successes, p_values
            )
        ]

    def region_statistics(self, counts) -> list[RegionStatistics]:
        """Per-region statistics from grouped cells (or the legacy dict)."""
        domains, countries, totals, successes, _, p_values = self._scored_cells(
            _as_grouped(counts)
        )
        return self._statistics_from_cells(domains, countries, totals, successes, p_values)

    def detect_from_counts(self, counts) -> DetectionReport:
        """Run the test over per-region counts (grouped arrays or legacy dict)."""
        grouped = _as_grouped(counts)
        domains, countries, totals, successes, priors, p_values = self._scored_cells(grouped)
        stats = self._statistics_from_cells(domains, countries, totals, successes, p_values)
        report = DetectionReport(statistics=stats)
        if not stats:
            return report
        failing = p_values <= self.significance
        # A corroborating region must not merely "not fail the test" (a
        # handful of measurements never fails it); it must actually show the
        # resource loading at or above the modelled success rate.
        rates = successes / totals
        passing = ~failing & (rates >= priors)
        corroborating: dict[str, int] = {}
        for stat, is_passing in zip(stats, passing.tolist()):
            if is_passing:
                corroborating[stat.domain] = corroborating.get(stat.domain, 0) + 1
        for stat, is_failing in zip(stats, failing.tolist()):
            if not is_failing:
                continue
            passing_regions = corroborating.get(stat.domain, 0)
            if not passing_regions:
                # Either nothing corroborates, so the resource looks broken
                # everywhere (likely a site outage, not regional filtering).
                continue
            report.detections.append(
                FilteringDetection(
                    domain=stat.domain,
                    country_code=stat.country_code,
                    measurements=stat.measurements,
                    successes=stat.successes,
                    p_value=stat.p_value,
                    corroborating_regions=passing_regions,
                )
            )
        return report

    # ------------------------------------------------------------------
    def detect(self, collection) -> DetectionReport:
        """Run the test over everything a collection server has gathered.

        Accepts a bare :class:`~repro.core.store.MeasurementStore` too (the
        adversarial sweep scores poisoned stores directly) and prefers the
        store's grouped-array counts (no intermediate dict); anything
        exposing the legacy ``success_counts()`` dict still works.
        """
        store = (
            collection
            if isinstance(collection, MeasurementStore)
            else getattr(collection, "store", None)
        )
        if store is not None:
            from repro.core.query import grouped_success_counts

            return self.detect_from_counts(grouped_success_counts(store))
        return self.detect_from_counts(collection.success_counts())

    def detect_from_measurements(self, measurements: Iterable[Measurement]) -> DetectionReport:
        """Run the test over an explicit list of measurements."""
        totals: dict[tuple[str, str], int] = {}
        successes: dict[tuple[str, str], int] = {}
        for m in measurements:
            if m.is_automated or m.outcome is TaskOutcome.INCONCLUSIVE:
                continue
            key = (m.target_domain, m.country_code)
            totals[key] = totals.get(key, 0) + 1
            if m.succeeded:
                successes[key] = successes.get(key, 0) + 1
        counts = {key: (totals[key], successes.get(key, 0)) for key in totals}
        return self.detect_from_counts(counts)


# ----------------------------------------------------------------------
# Online change-point detection over day-bucketed success rates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CensorshipEvent:
    """A detected change in a (domain, country) pair's filtering state.

    ``kind`` is ``"onset"`` (the success rate collapsed — filtering began)
    or ``"offset"`` (it recovered — filtering ended).  ``change_day`` is the
    CUSUM change-point estimate: the day the statistic's final excursion
    left zero.  ``detected_day`` is when the statistic crossed the decision
    threshold, so ``detection_lag`` is how many simulated days of data the
    detector needed before it could call the change.
    """

    domain: str
    country_code: str
    kind: str
    change_day: int
    detected_day: int
    statistic: float
    confidence: float

    @property
    def detection_lag(self) -> int:
        return self.detected_day - self.change_day


@dataclass
class CusumState:
    """Resumable state of an online CUSUM scan over day-bucketed counts.

    ``days_processed`` is the scan watermark (day columns ``0 ..
    days_processed - 1`` have been consumed); ``cells`` maps each (domain,
    country) pair to its ``(censored, statistic, excursion_day)`` machine
    state; ``baselines`` optionally pins a per-country healthy success rate
    (seeded from :meth:`AdaptiveFilteringDetector.country_priors`) that
    replaces the detector's global ``healthy_rate`` for that country's
    cells; ``events`` accumulates everything emitted so far, in the same
    ``(detected_day, domain, country, kind)`` order a cold full scan
    produces.  The state round-trips through JSON bit-exactly (Python's
    ``repr``-based float serialization is lossless), so a monitor killed
    mid-series resumes and emits identical events to an uninterrupted run.
    """

    days_processed: int = 0
    baselines: dict[str, float] | None = None
    cells: dict[tuple[str, str], tuple[bool, float, int]] = field(default_factory=dict)
    events: list[CensorshipEvent] = field(default_factory=list)

    def to_payload(self) -> dict:
        """A JSON-serializable snapshot (see :meth:`from_payload`)."""
        return {
            "days_processed": self.days_processed,
            "baselines": self.baselines,
            "cells": [
                [domain, country, bool(censored), float(stat), int(excursion)]
                for (domain, country), (censored, stat, excursion) in sorted(
                    self.cells.items()
                )
            ],
            "events": [
                {
                    "domain": e.domain,
                    "country_code": e.country_code,
                    "kind": e.kind,
                    "change_day": e.change_day,
                    "detected_day": e.detected_day,
                    "statistic": e.statistic,
                    "confidence": e.confidence,
                }
                for e in self.events
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CusumState":
        baselines = payload.get("baselines")
        return cls(
            days_processed=int(payload["days_processed"]),
            baselines=None if baselines is None else {
                str(country): float(rate) for country, rate in baselines.items()
            },
            cells={
                (str(domain), str(country)): (bool(censored), float(stat), int(excursion))
                for domain, country, censored, stat, excursion in payload["cells"]
            },
            events=[CensorshipEvent(**event) for event in payload["events"]],
        )

    def save(self, path: str | Path, signature: str | None = None) -> None:
        """Checkpoint to ``path`` atomically via ``shard.write_json_atomic``.

        ``signature`` names what produced this state (detector tuning +
        campaign identity); :meth:`load` refuses a checkpoint whose
        signature does not match, so a retuned monitor never silently
        resumes from another configuration's state.
        """
        # Local import: shard pulls in the whole runner/netsim stack, which
        # this leaf module should not load just to be importable.
        from repro.core.shard import write_json_atomic

        write_json_atomic(path, {"signature": signature, "state": self.to_payload()})

    @classmethod
    def load(cls, path: str | Path, signature: str | None = None) -> "CusumState":
        with open(path) as handle:
            payload = json.load(handle)
        if signature is not None and payload.get("signature") != signature:
            raise ValueError(
                f"checkpoint {path} was written under signature "
                f"{payload.get('signature')!r}, not {signature!r}"
            )
        return cls.from_payload(payload["state"])


class CusumChangePointDetector:
    """Online CUSUM over per-day filtered success rates (longitudinal §7.2).

    For every (domain, country) cell of a :class:`DayGroupedCounts`, the
    detector walks the day axis with a two-state machine.  While *clear*, it
    accumulates the one-sided CUSUM statistic ``S ← max(0, S + (healthy_rate
    − drift − rate_d))`` — evidence the daily success rate fell below the
    healthy baseline — and emits an **onset** when ``S`` crosses
    ``threshold``; while *censored*, it accumulates ``S ← max(0, S + (rate_d
    − censored_rate − drift))`` and emits an **offset** on recovery.  Days
    with fewer than ``min_daily_measurements`` filtered measurements carry
    the statistic unchanged (an empty day is no evidence either way).

    :meth:`detect_events` scans all cells at once, one numpy pass per day
    column; :meth:`detect_events_reference` is the readable per-cell scalar
    walk.  Both consume the same values in the same order, so their events
    are identical — statistics and confidences bit-for-bit — an equivalence
    the tests pin.

    The scan is resumable: :meth:`initial_state` builds a
    :class:`CusumState`, :meth:`resume` advances it over only the day
    columns it has not seen yet, and the state checkpoints to JSON
    (:meth:`CusumState.save` / :meth:`CusumState.load`).  Because each day's
    update is the same float64 operation sequence either way, a scan split
    across any number of resume calls emits events bit-identical to one
    cold full scan — the property that lets an always-on monitor fold in
    one epoch per wakeup and survive being killed between epochs.
    """

    def __init__(
        self,
        healthy_rate: float = 0.7,
        censored_rate: float = 0.15,
        drift: float = 0.05,
        threshold: float = 1.0,
        min_daily_measurements: int = 5,
    ) -> None:
        if not 0.0 < censored_rate < healthy_rate < 1.0:
            raise ValueError("need 0 < censored_rate < healthy_rate < 1")
        if drift < 0.0:
            raise ValueError("drift must be non-negative")
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        if min_daily_measurements < 1:
            raise ValueError("min_daily_measurements must be positive")
        self.healthy_rate = healthy_rate
        self.censored_rate = censored_rate
        self.drift = drift
        self.threshold = threshold
        self.min_daily_measurements = min_daily_measurements

    # ------------------------------------------------------------------
    def _confidence(self, statistic: float) -> float:
        """Threshold overshoot mapped to [0.5, 1.0]."""
        return min(1.0, statistic / (2.0 * self.threshold))

    @staticmethod
    def _sorted(events: list[CensorshipEvent]) -> list[CensorshipEvent]:
        events.sort(key=lambda e: (e.detected_day, e.domain, e.country_code, e.kind))
        return events

    def config_key(self) -> tuple:
        """Hashable identity of this detector's tuning.

        What result caches and checkpoint signatures key on, so retuning a
        detector can never be served another configuration's events.
        """
        return (
            type(self).__name__,
            self.healthy_rate,
            self.censored_rate,
            self.drift,
            self.threshold,
            self.min_daily_measurements,
        )

    def _healthy_rate_for(self, country: str, baselines: dict[str, float] | None) -> float:
        if baselines is None:
            return self.healthy_rate
        return baselines.get(country, self.healthy_rate)

    def seeded_baselines(
        self, counts, detector: "AdaptiveFilteringDetector | None" = None
    ) -> dict[str, float]:
        """Per-country healthy baselines from the adaptive detector's priors.

        Countries with unreliable networks never sustain the global
        ``healthy_rate``; seeding each country's baseline from
        :meth:`AdaptiveFilteringDetector.country_priors` keeps the clear-state
        CUSUM from drifting upward on ordinary flakiness there.  Baselines
        are floored at ``censored_rate + 2 * drift`` so the clear and
        censored targets can never cross.
        """
        adaptive = detector if detector is not None else AdaptiveFilteringDetector()
        floor = self.censored_rate + 2.0 * self.drift
        return {
            country: max(float(prior), floor)
            for country, prior in adaptive.country_priors(counts).items()
        }

    def initial_state(self, baselines: dict[str, float] | None = None) -> CusumState:
        """A fresh :class:`CusumState` (optionally with per-country baselines)."""
        return CusumState(
            baselines=None if baselines is None else dict(baselines)
        )

    def detect_events(
        self,
        day_counts: DayGroupedCounts,
        baselines: dict[str, float] | None = None,
    ) -> list[CensorshipEvent]:
        """Scan every (domain, country) cell's day series, vectorized.

        A cold full scan: equivalent to :meth:`resume` from a fresh
        :meth:`initial_state`, which is exactly how it is implemented.
        """
        return self.resume(self.initial_state(baselines), day_counts)

    def resume(
        self, state: CusumState, day_counts: "DayGroupedCounts | DenseDayCounts"
    ) -> list[CensorshipEvent]:
        """Advance ``state`` over the day columns it has not consumed yet.

        ``day_counts`` is the cumulative corpus (its day axis keeps growing
        as epochs append) — either ragged :class:`DayGroupedCounts` or the
        monitor loop's dense ``repro.core.query.dense_day_series()``
        result; anything with ``n_days`` and ``cell_series()`` works, and
        both representations yield bit-identical events.  Only columns
        ``state.days_processed .. day_counts.n_days - 1`` are scanned, so
        per-call cost is proportional to the *new* days, not history.  The
        recursion is sequential in days but independent across cells: all
        cells advance by whole-array operations per day column, and only
        the (rare) threshold crossings drop to per-cell Python to emit
        events.  Returns the newly emitted events (also appended to
        ``state.events``, which stays in cold-full-scan order because
        resumed events can only be detected on later days).
        """
        domains, countries, totals, successes = day_counts.cell_series()
        n_cells, n_days = totals.shape
        start = state.days_processed
        events: list[CensorshipEvent] = []
        if n_cells == 0 or start >= n_days:
            state.days_processed = max(state.days_processed, day_counts.n_days)
            return events
        get_registry().counter("cusum.cells_scanned").add(n_cells * (n_days - start))
        pairs = list(zip(domains.tolist(), countries.tolist()))
        censored = np.zeros(n_cells, dtype=bool)
        stat = np.zeros(n_cells, dtype=np.float64)
        excursion = np.zeros(n_cells, dtype=np.int64)
        for index, pair in enumerate(pairs):
            carried = state.cells.get(pair)
            if carried is not None:
                censored[index], stat[index], excursion[index] = carried
        clear_target = np.array(
            [self._healthy_rate_for(country, state.baselines) - self.drift
             for country in countries.tolist()],
            dtype=np.float64,
        )
        censored_target = self.censored_rate + self.drift
        for day in range(start, n_days):
            n = totals[:, day]
            active = n >= self.min_daily_measurements
            if not active.any():
                continue
            rate = np.zeros(n_cells, dtype=np.float64)
            rate[active] = successes[active, day] / n[active]
            increment = np.where(censored, rate - censored_target, clear_target - rate)
            new_stat = np.maximum(0.0, stat + increment)
            started = active & (stat == 0.0) & (new_stat > 0.0)
            excursion[started] = day
            stat = np.where(active, new_stat, stat)
            for cell in np.flatnonzero(active & (stat >= self.threshold)).tolist():
                statistic = float(stat[cell])
                events.append(
                    CensorshipEvent(
                        domain=str(domains[cell]),
                        country_code=str(countries[cell]),
                        kind="offset" if censored[cell] else "onset",
                        change_day=int(excursion[cell]),
                        detected_day=day,
                        statistic=statistic,
                        confidence=self._confidence(statistic),
                    )
                )
                censored[cell] = ~censored[cell]
                stat[cell] = 0.0
        for index, pair in enumerate(pairs):
            state.cells[pair] = (
                bool(censored[index]), float(stat[index]), int(excursion[index])
            )
        state.days_processed = n_days
        self._sorted(events)
        state.events.extend(events)
        return events

    def detect_events_reference(
        self,
        day_counts: DayGroupedCounts,
        baselines: dict[str, float] | None = None,
    ) -> list[CensorshipEvent]:
        """The scalar per-cell reference walk; events identical to the fast path."""
        domains, countries, totals, successes = day_counts.cell_series()
        events: list[CensorshipEvent] = []
        censored_target = self.censored_rate + self.drift
        for cell in range(totals.shape[0]):
            clear_target = (
                self._healthy_rate_for(str(countries[cell]), baselines) - self.drift
            )
            censored = False
            stat = 0.0
            excursion = 0
            for day in range(totals.shape[1]):
                n = totals[cell, day]
                if n < self.min_daily_measurements:
                    continue
                rate = successes[cell, day] / n
                increment = (rate - censored_target) if censored else (clear_target - rate)
                new_stat = max(0.0, stat + increment)
                if stat == 0.0 and new_stat > 0.0:
                    excursion = day
                stat = new_stat
                if stat >= self.threshold:
                    events.append(
                        CensorshipEvent(
                            domain=str(domains[cell]),
                            country_code=str(countries[cell]),
                            kind="offset" if censored else "onset",
                            change_day=excursion,
                            detected_day=day,
                            statistic=float(stat),
                            confidence=self._confidence(float(stat)),
                        )
                    )
                    censored = not censored
                    stat = 0.0
        return self._sorted(events)


class TimingCusumDetector:
    """Online CUSUM over per-day ``elapsed_ms`` quantiles — throttle detection.

    Bandwidth throttling is the censorship signature success rates cannot
    see: a throttled exchange still *completes*, just slowly (§1's subtle
    filtering; ``THROTTLE_FACTOR`` stretches the transfer time), so
    :class:`CusumChangePointDetector` scanning success rates stays silent.
    This detector scans the timing side of the same corpus: a
    :class:`~repro.core.query.TimingDaySeries` of per-(domain, country)
    daily ``elapsed_ms`` quantiles, produced by the query kernel
    (:func:`repro.core.query.timing_day_series`).

    Each cell seeds its own healthy baseline — the median of its qualifying
    daily quantiles over the first ``baseline_days`` days — because absolute
    timings vary per (domain, country) with object size and link quality,
    unlike success rates which share a global healthy level.  The walk then
    mirrors the success-rate machine over the *ratio* ``r_d = q_d /
    baseline``: while *clear* it accumulates ``S ← max(0, S + (r_d − 1 −
    drift))`` — evidence the day ran slower than baseline — and emits a
    ``"throttle-onset"`` when ``S`` crosses ``threshold``; while *throttled*
    it accumulates ``S ← max(0, S + (slowdown − drift − r_d))`` and emits a
    ``"throttle-offset"`` on recovery.  Days with fewer than
    ``min_daily_measurements`` measurements (including the NaN no-data days)
    carry the statistic unchanged, and a cell with no qualifying baseline
    day never alarms — no baseline, no evidence.  The scan starts *after*
    the baseline window: those days are the presumed-healthy training
    period, so their noise can neither accumulate evidence nor pollute a
    change-point estimate.

    :meth:`detect_events` is the vectorized scan (one numpy pass per day
    column); :meth:`detect_events_reference` is the readable per-cell scalar
    walk; both consume the same values in the same order, so their events
    are identical bit-for-bit — the same equivalence convention the
    success-rate detector pins.
    """

    def __init__(
        self,
        slowdown: float = 3.0,
        drift: float = 0.25,
        threshold: float = 2.0,
        min_daily_measurements: int = 5,
        baseline_days: int = 5,
    ) -> None:
        if slowdown <= 1.0:
            raise ValueError("slowdown must exceed 1 (a >1x throttled/healthy ratio)")
        if drift < 0.0:
            raise ValueError("drift must be non-negative")
        if slowdown - drift <= 1.0 + drift:
            raise ValueError("need slowdown - drift > 1 + drift (targets must not cross)")
        if threshold <= 0.0:
            raise ValueError("threshold must be positive")
        if min_daily_measurements < 1:
            raise ValueError("min_daily_measurements must be positive")
        if baseline_days < 1:
            raise ValueError("baseline_days must be positive")
        self.slowdown = slowdown
        self.drift = drift
        self.threshold = threshold
        self.min_daily_measurements = min_daily_measurements
        self.baseline_days = baseline_days

    # ------------------------------------------------------------------
    def _confidence(self, statistic: float) -> float:
        """Threshold overshoot mapped to [0.5, 1.0]."""
        return min(1.0, statistic / (2.0 * self.threshold))

    @staticmethod
    def _sorted(events: list[CensorshipEvent]) -> list[CensorshipEvent]:
        events.sort(key=lambda e: (e.detected_day, e.domain, e.country_code, e.kind))
        return events

    def config_key(self) -> tuple:
        """Hashable identity of this detector's tuning (caches key on it)."""
        return (
            type(self).__name__,
            self.slowdown,
            self.drift,
            self.threshold,
            self.min_daily_measurements,
            self.baseline_days,
        )

    def _baselines(self, counts: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Per-cell healthy timing baselines (NaN = cell never alarms).

        The median of the cell's qualifying daily quantiles over the first
        ``baseline_days`` days; days below ``min_daily_measurements`` (or
        with no data at all) contribute nothing.
        """
        window = values[:, : self.baseline_days].copy()
        window[counts[:, : self.baseline_days] < self.min_daily_measurements] = np.nan
        baselines = np.full(len(window), np.nan)
        has_baseline = ~np.isnan(window).all(axis=1)
        if has_baseline.any():
            baselines[has_baseline] = np.nanmedian(window[has_baseline], axis=1)
        return baselines

    def detect_events(self, timing_series) -> list[CensorshipEvent]:
        """Scan every (domain, country) cell's daily quantile series, vectorized.

        ``timing_series`` is a :class:`~repro.core.query.TimingDaySeries`
        (anything with ``cell_series()`` returning ``(domains, countries,
        counts, values)`` matrices works).  Sequential in days, whole-array
        per day column; only threshold crossings drop to per-cell Python.
        """
        domains, countries, counts, values = timing_series.cell_series()
        n_cells, n_days = counts.shape
        events: list[CensorshipEvent] = []
        if n_cells == 0 or n_days == 0:
            return events
        get_registry().counter("timing_cusum.cells_scanned").add(n_cells * n_days)
        baselines = self._baselines(counts, values)
        alarmable = ~np.isnan(baselines)
        throttled = np.zeros(n_cells, dtype=bool)
        stat = np.zeros(n_cells, dtype=np.float64)
        excursion = np.zeros(n_cells, dtype=np.int64)
        clear_target = 1.0 + self.drift
        throttled_target = self.slowdown - self.drift
        for day in range(self.baseline_days, n_days):
            active = alarmable & (counts[:, day] >= self.min_daily_measurements)
            if not active.any():
                continue
            ratio = np.ones(n_cells, dtype=np.float64)
            ratio[active] = values[active, day] / baselines[active]
            increment = np.where(
                throttled, throttled_target - ratio, ratio - clear_target
            )
            new_stat = np.maximum(0.0, stat + increment)
            started = active & (stat == 0.0) & (new_stat > 0.0)
            excursion[started] = day
            stat = np.where(active, new_stat, stat)
            for cell in np.flatnonzero(active & (stat >= self.threshold)).tolist():
                statistic = float(stat[cell])
                events.append(
                    CensorshipEvent(
                        domain=str(domains[cell]),
                        country_code=str(countries[cell]),
                        kind="throttle-offset" if throttled[cell] else "throttle-onset",
                        change_day=int(excursion[cell]),
                        detected_day=day,
                        statistic=statistic,
                        confidence=self._confidence(statistic),
                    )
                )
                throttled[cell] = ~throttled[cell]
                stat[cell] = 0.0
        return self._sorted(events)

    def detect_events_reference(self, timing_series) -> list[CensorshipEvent]:
        """The scalar per-cell reference walk; events identical to the fast path."""
        domains, countries, counts, values = timing_series.cell_series()
        events: list[CensorshipEvent] = []
        clear_target = 1.0 + self.drift
        throttled_target = self.slowdown - self.drift
        for cell in range(counts.shape[0]):
            window = [
                float(values[cell, day])
                for day in range(min(self.baseline_days, counts.shape[1]))
                if counts[cell, day] >= self.min_daily_measurements
            ]
            if not window:
                continue
            baseline = float(np.median(window))
            throttled = False
            stat = 0.0
            excursion = 0
            for day in range(self.baseline_days, counts.shape[1]):
                if counts[cell, day] < self.min_daily_measurements:
                    continue
                ratio = float(values[cell, day]) / baseline
                increment = (
                    (throttled_target - ratio) if throttled else (ratio - clear_target)
                )
                new_stat = max(0.0, stat + increment)
                if stat == 0.0 and new_stat > 0.0:
                    excursion = day
                stat = new_stat
                if stat >= self.threshold:
                    events.append(
                        CensorshipEvent(
                            domain=str(domains[cell]),
                            country_code=str(countries[cell]),
                            kind="throttle-offset" if throttled else "throttle-onset",
                            change_day=excursion,
                            detected_day=day,
                            statistic=float(stat),
                            confidence=self._confidence(float(stat)),
                        )
                    )
                    throttled = not throttled
                    stat = 0.0
        return self._sorted(events)


class AdaptiveFilteringDetector(BinomialFilteringDetector):
    """Per-country success priors (the paper's proposed enhancement, §7.2).

    The paper notes that "possible enhancements include dynamically tuning
    model parameters to account for differing false positive rates in each
    country": a fixed prior of 0.7 is conservative for well-connected
    countries and optimistic for countries with unreliable networks.  This
    detector estimates each country's baseline success rate from the country's
    *best-performing* domains — resources presumed reachable there — and uses
    a discounted version of that baseline as the country-specific prior,
    clamped to ``[min_prior, max_prior]``.
    """

    def __init__(
        self,
        significance: float = 0.05,
        min_measurements: int = 10,
        min_prior: float = 0.5,
        max_prior: float = 0.9,
        discount: float = 0.9,
    ) -> None:
        super().__init__(
            success_prior=(min_prior + max_prior) / 2.0,
            significance=significance,
            min_measurements=min_measurements,
        )
        if not 0.0 < min_prior <= max_prior < 1.0:
            raise ValueError("need 0 < min_prior <= max_prior < 1")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.min_prior = min_prior
        self.max_prior = max_prior
        self.discount = discount

    def country_priors(self, counts) -> dict[str, float]:
        """Estimate each country's baseline success probability.

        The baseline is the country's highest per-domain success rate among
        domains with enough measurements (a censored domain cannot raise it,
        and network flakiness lowers it for every domain equally), discounted
        and clamped to the configured bounds.
        """
        grouped = _as_grouped(counts)
        keep = grouped.totals >= self.min_measurements
        best = self._best_rates(
            grouped.countries[keep], grouped.totals[keep], grouped.successes[keep]
        )
        return {
            country: float(min(self.max_prior, max(self.min_prior, rate * self.discount)))
            for country, rate in best.items()
        }

    @staticmethod
    def _best_rates(countries: np.ndarray, totals: np.ndarray, successes: np.ndarray):
        """Per-country maximum success rate over the given (kept) cells."""
        best: dict[str, float] = {}
        rates = successes / totals if len(totals) else totals
        for country, rate in zip(countries.tolist(), np.asarray(rates).tolist()):
            if rate > best.get(country, -1.0):
                best[country] = rate
        return best

    def _cell_priors(
        self,
        domains: np.ndarray,
        countries: np.ndarray,
        totals: np.ndarray,
        successes: np.ndarray,
    ) -> np.ndarray:
        best = self._best_rates(countries, totals, successes)
        return np.array(
            [
                min(self.max_prior, max(self.min_prior, best[country] * self.discount))
                if country in best
                else self.success_prior
                for country in countries.tolist()
            ],
            dtype=np.float64,
        )
