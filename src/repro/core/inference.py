"""Filtering detection: the binomial hypothesis test of §7.2.

Individual measurement failures are weak evidence — clients suffer transient
connectivity problems, browsers misbehave, sites go offline.  The paper
therefore models each measurement's success as a Bernoulli trial with
parameter ``p = 0.7`` (in the absence of filtering, clients should succeed at
least 70% of the time) and, for each resource and region, runs a one-sided
binomial test: the resource is considered filtered in region ``r`` if the
observed success count is improbably low at significance 0.05 — *and* the
same test does not fail in other regions, which rules out the resource simply
being down for everyone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.collection import CollectionServer, Measurement
from repro.core.tasks import TaskOutcome


def binomial_cdf(successes: int, trials: int, p: float) -> float:
    """P[Binomial(trials, p) <= successes], computed in log space.

    Exact summation is cheap for the trial counts Encore sees (hundreds to a
    few thousand per region) and avoids a SciPy dependency in the core
    library.
    """
    if trials < 0:
        raise ValueError("trials must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    if successes < 0:
        return 0.0
    if successes >= trials:
        return 1.0
    if p == 0.0:
        return 1.0
    if p == 1.0:
        return 0.0
    log_p = math.log(p)
    log_q = math.log1p(-p)
    total = 0.0
    for k in range(successes + 1):
        log_term = (
            math.lgamma(trials + 1)
            - math.lgamma(k + 1)
            - math.lgamma(trials - k + 1)
            + k * log_p
            + (trials - k) * log_q
        )
        total += math.exp(log_term)
    return min(1.0, total)


@dataclass(frozen=True)
class RegionStatistics:
    """Per-(domain, region) measurement counts and the test's p-value."""

    domain: str
    country_code: str
    measurements: int
    successes: int
    p_value: float

    @property
    def success_rate(self) -> float:
        return self.successes / self.measurements if self.measurements else 0.0


@dataclass(frozen=True)
class FilteringDetection:
    """A resource the detector considers filtered in a region."""

    domain: str
    country_code: str
    measurements: int
    successes: int
    p_value: float
    corroborating_regions: int

    @property
    def success_rate(self) -> float:
        return self.successes / self.measurements if self.measurements else 0.0


@dataclass
class DetectionReport:
    """All region statistics plus the detections they support."""

    statistics: list[RegionStatistics] = field(default_factory=list)
    detections: list[FilteringDetection] = field(default_factory=list)

    def detected(self, domain: str, country_code: str) -> bool:
        return any(
            d.domain == domain and d.country_code == country_code for d in self.detections
        )

    def detections_for_domain(self, domain: str) -> list[FilteringDetection]:
        return [d for d in self.detections if d.domain == domain]

    def detected_pairs(self) -> set[tuple[str, str]]:
        return {(d.domain, d.country_code) for d in self.detections}


class BinomialFilteringDetector:
    """The detection algorithm of §7.2."""

    def __init__(
        self,
        success_prior: float = 0.7,
        significance: float = 0.05,
        min_measurements: int = 10,
    ) -> None:
        if not 0.0 < success_prior < 1.0:
            raise ValueError("success prior must be in (0, 1)")
        if not 0.0 < significance < 1.0:
            raise ValueError("significance must be in (0, 1)")
        if min_measurements < 1:
            raise ValueError("min_measurements must be positive")
        self.success_prior = success_prior
        self.significance = significance
        self.min_measurements = min_measurements

    # ------------------------------------------------------------------
    def region_statistics(
        self, counts: dict[tuple[str, str], tuple[int, int]]
    ) -> list[RegionStatistics]:
        """Per-region statistics from (domain, country) -> (n, successes)."""
        stats = []
        for (domain, country), (n, successes) in sorted(counts.items()):
            if n < self.min_measurements:
                continue
            p_value = binomial_cdf(successes, n, self.success_prior)
            stats.append(
                RegionStatistics(
                    domain=domain,
                    country_code=country,
                    measurements=n,
                    successes=successes,
                    p_value=p_value,
                )
            )
        return stats

    def detect_from_counts(
        self, counts: dict[tuple[str, str], tuple[int, int]]
    ) -> DetectionReport:
        """Run the test over precomputed per-region counts."""
        stats = self.region_statistics(counts)
        by_domain: dict[str, list[RegionStatistics]] = {}
        for stat in stats:
            by_domain.setdefault(stat.domain, []).append(stat)

        report = DetectionReport(statistics=stats)
        for domain, domain_stats in by_domain.items():
            failing = [s for s in domain_stats if s.p_value <= self.significance]
            # A corroborating region must not merely "not fail the test" (a
            # handful of measurements never fails it); it must actually show
            # the resource loading at or above the modelled success rate.
            passing = [
                s
                for s in domain_stats
                if s.p_value > self.significance and s.success_rate >= self.success_prior
            ]
            if not failing or not passing:
                # Either nothing looks filtered, or the resource looks broken
                # everywhere (likely a site outage, not regional filtering).
                continue
            for stat in failing:
                report.detections.append(
                    FilteringDetection(
                        domain=stat.domain,
                        country_code=stat.country_code,
                        measurements=stat.measurements,
                        successes=stat.successes,
                        p_value=stat.p_value,
                        corroborating_regions=len(passing),
                    )
                )
        return report

    # ------------------------------------------------------------------
    def detect(self, collection: CollectionServer) -> DetectionReport:
        """Run the test over everything a collection server has gathered."""
        return self.detect_from_counts(collection.success_counts())

    def detect_from_measurements(self, measurements: Iterable[Measurement]) -> DetectionReport:
        """Run the test over an explicit list of measurements."""
        counts: dict[tuple[str, str], tuple[int, int]] = {}
        totals: dict[tuple[str, str], int] = {}
        successes: dict[tuple[str, str], int] = {}
        for m in measurements:
            if m.is_automated or m.outcome is TaskOutcome.INCONCLUSIVE:
                continue
            key = (m.target_domain, m.country_code)
            totals[key] = totals.get(key, 0) + 1
            if m.succeeded:
                successes[key] = successes.get(key, 0) + 1
        for key in totals:
            counts[key] = (totals[key], successes.get(key, 0))
        return self.detect_from_counts(counts)


class AdaptiveFilteringDetector(BinomialFilteringDetector):
    """Per-country success priors (the paper's proposed enhancement, §7.2).

    The paper notes that "possible enhancements include dynamically tuning
    model parameters to account for differing false positive rates in each
    country": a fixed prior of 0.7 is conservative for well-connected
    countries and optimistic for countries with unreliable networks.  This
    detector estimates each country's baseline success rate from the country's
    *best-performing* domains — resources presumed reachable there — and uses
    a discounted version of that baseline as the country-specific prior,
    clamped to ``[min_prior, max_prior]``.
    """

    def __init__(
        self,
        significance: float = 0.05,
        min_measurements: int = 10,
        min_prior: float = 0.5,
        max_prior: float = 0.9,
        discount: float = 0.9,
    ) -> None:
        super().__init__(
            success_prior=(min_prior + max_prior) / 2.0,
            significance=significance,
            min_measurements=min_measurements,
        )
        if not 0.0 < min_prior <= max_prior < 1.0:
            raise ValueError("need 0 < min_prior <= max_prior < 1")
        if not 0.0 < discount <= 1.0:
            raise ValueError("discount must be in (0, 1]")
        self.min_prior = min_prior
        self.max_prior = max_prior
        self.discount = discount

    def country_priors(
        self, counts: dict[tuple[str, str], tuple[int, int]]
    ) -> dict[str, float]:
        """Estimate each country's baseline success probability.

        The baseline is the country's highest per-domain success rate among
        domains with enough measurements (a censored domain cannot raise it,
        and network flakiness lowers it for every domain equally), discounted
        and clamped to the configured bounds.
        """
        best: dict[str, float] = {}
        for (domain, country), (n, successes) in counts.items():
            if n < self.min_measurements:
                continue
            rate = successes / n
            best[country] = max(best.get(country, 0.0), rate)
        return {
            country: float(min(self.max_prior, max(self.min_prior, rate * self.discount)))
            for country, rate in best.items()
        }

    def region_statistics(
        self, counts: dict[tuple[str, str], tuple[int, int]]
    ) -> list[RegionStatistics]:
        priors = self.country_priors(counts)
        stats = []
        for (domain, country), (n, successes) in sorted(counts.items()):
            if n < self.min_measurements:
                continue
            prior = priors.get(country, self.success_prior)
            stats.append(
                RegionStatistics(
                    domain=domain,
                    country_code=country,
                    measurements=n,
                    successes=successes,
                    p_value=binomial_cdf(successes, n, prior),
                )
            )
        return stats

    def detect_from_counts(
        self, counts: dict[tuple[str, str], tuple[int, int]]
    ) -> DetectionReport:
        """Same corroboration rule as the base detector, with per-country priors."""
        priors = self.country_priors(counts)
        stats = self.region_statistics(counts)
        by_domain: dict[str, list[RegionStatistics]] = {}
        for stat in stats:
            by_domain.setdefault(stat.domain, []).append(stat)

        report = DetectionReport(statistics=stats)
        for domain, domain_stats in by_domain.items():
            failing = [s for s in domain_stats if s.p_value <= self.significance]
            passing = [
                s
                for s in domain_stats
                if s.p_value > self.significance
                and s.success_rate >= priors.get(s.country_code, self.success_prior)
            ]
            if not failing or not passing:
                continue
            for stat in failing:
                report.detections.append(
                    FilteringDetection(
                        domain=stat.domain,
                        country_code=stat.country_code,
                        measurements=stat.measurements,
                        successes=stat.successes,
                        p_value=stat.p_value,
                        corroborating_regions=len(passing),
                    )
                )
        return report
