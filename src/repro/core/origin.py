"""Origin sites: webmaster-side integration and overhead accounting (§6.3).

A webmaster enables Encore by adding a single line to their page that loads a
script from the coordination server.  The paper argues this is cheap — about
100 extra bytes per page, no extra origin-server connections, and measurement
tasks that run asynchronously after the page has rendered — and that
webmasters have incentives to participate (interest in measuring filtering,
plus a reciprocity agreement that adds their own site to the target list).
This module models an instrumented origin site and provides the overhead
accounting the §6.3 benchmark reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.tasks import MeasurementTask, TaskType, origin_embed_html
from repro.web.sites import Site
from repro.web.url import URL


def snippet_overhead_bytes(coordination_url: URL | str) -> int:
    """Bytes the Encore snippet adds to each origin page (paper: ~100 bytes)."""
    return len(origin_embed_html(coordination_url).encode("utf-8"))


@dataclass
class OriginSite:
    """A site whose webmaster has installed Encore."""

    site: Site
    coordination_url: URL
    #: Whether this origin strips the Referer header from result submissions
    #: (3/4 of measurements in the paper arrived Referer-stripped).
    strips_referer: bool = False
    #: Whether the webmaster joined the reciprocity agreement, adding their
    #: own domain to Encore's target list (§6.3).
    reciprocity_enrolled: bool = False

    @property
    def domain(self) -> str:
        return self.site.domain

    @property
    def embed_snippet(self) -> str:
        """The one line the webmaster adds to their pages."""
        return origin_embed_html(self.coordination_url)

    @property
    def snippet_bytes(self) -> int:
        return len(self.embed_snippet.encode("utf-8"))

    def page_overhead_fraction(self) -> float:
        """Snippet bytes as a fraction of the origin's median page weight."""
        pages = self.site.pages
        if not pages:
            return 0.0
        weights = sorted(
            sum(
                (self.site.lookup(u).size_bytes if self.site.lookup(u) else 0)
                for u in page.embedded_urls
            )
            + page.size_bytes
            for page in pages
        )
        median = weights[len(weights) // 2]
        if median == 0:
            return 0.0
        return self.snippet_bytes / median


@dataclass
class ClientOverheadReport:
    """Network overhead measurement tasks impose on clients (§6.3)."""

    per_task_bytes: dict[str, list[int]] = field(default_factory=dict)

    def add_task(self, task: MeasurementTask) -> None:
        self.per_task_bytes.setdefault(task.task_type.value, []).append(
            task.estimated_overhead_bytes
        )

    def median_bytes(self, task_type: TaskType) -> int:
        values = sorted(self.per_task_bytes.get(task_type.value, []))
        if not values:
            return 0
        return values[len(values) // 2]

    def summary(self) -> dict[str, int]:
        return {
            task_type: sorted(values)[len(values) // 2]
            for task_type, values in self.per_task_bytes.items()
            if values
        }


def client_overhead_report(tasks: list[MeasurementTask]) -> ClientOverheadReport:
    """Build a :class:`ClientOverheadReport` for a set of generated tasks."""
    report = ClientOverheadReport()
    for task in tasks:
        report.add_task(task)
    return report
