"""Batched campaign execution: the fast path for §7-scale experiments.

The paper's value comes from scale — a seven-month deployment collecting
141,626 measurements from 88,260 clients (§7) — and the per-visit simulation
loop in :mod:`repro.core.pipeline` is the bottleneck for reproducing it.
This module executes campaigns in vectorized batches instead:

1. **Plan.**  A batch of visitors is sampled from the
   :class:`~repro.population.world.World` with one bulk RNG call per client
   attribute (:meth:`ClientFactory.sample_batch`), together with per-visit
   origin sites and campaign days.
2. **Schedule.**  :meth:`Scheduler.assign_batch` assigns tasks to the whole
   batch, grouping clients by browser capability class so task pools are
   filtered once per class rather than once per client.
3. **Compile.**  Each visit becomes a short *fetch program*: one slot per
   network fetch the visit performs (task-script delivery, task target
   loads, iframe sub-resources and probes, result submissions).  Censors are
   deterministic per (country, URL), so each slot's censorship verdict is
   resolved once and cached; only packet loss, jitter, and give-up decisions
   stay stochastic, and those are pre-drawn as a fixed-layout uniform matrix
   (:data:`DRAWS_PER_SLOT` columns per slot).
4. **Execute.**  ``mode="batch"`` evaluates all slots with vectorized numpy
   passes; ``mode="serial"`` is the readable reference implementation that
   walks the same program one visit at a time, re-deriving every censorship
   verdict from the interceptor objects.  Both modes consume the same
   pre-drawn randomness, so for a fixed seed they produce *identical*
   measurements — an invariant pinned by
   ``tests/core/test_runner_equivalence.py``.
5. **Collect.**  Results stream into the
   :class:`~repro.core.collection.CollectionServer` through its columnar
   :meth:`ingest_records` path — record tuples are transposed into the
   struct-of-arrays :class:`~repro.core.store.MeasurementStore` without ever
   constructing per-row ``Measurement`` objects — and per-batch
   progress/checkpoint hooks make
   long campaigns observable and resumable (re-run with
   ``resume_from_batch=n`` to skip the completed batches' execution; their
   planning is replayed so campaign-wide counters stay complete).

Planning is **block-keyed**: visits are planned in fixed-size blocks
(``CampaignConfig.plan_block_visits``) whose randomness — client sampling,
scheduling, origins, days, the pre-drawn uniform matrix — derives from
``(seed, epoch, block_index)`` alone, with client IPs/ids indexed by global
visit position.  Campaign content is therefore invariant to batch size
(batches are just progress/ingestion groupings sliced out of blocks), resume
needs no replay, and any process can plan any block independently — the
foundation of the :mod:`repro.core.shard` multi-process execution path.

:class:`CampaignSweep` runs many campaign configurations (seeds × pinned
countries × testbed fractions) against one shared ``World``, which is how
parameter sweeps stay cheap enough to explore.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from itertools import repeat
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.browser.engine import CACHED_RENDER_MAX_MS, CACHED_RENDER_MIN_MS
from repro.core.collection import ColumnarRecords, SubmissionRecord
from repro.core.scheduler import ScheduleDecision
from repro.core.store import DictColumn
from repro.obs.clock import monotonic
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_TRACER, progress_listener
from repro.core.tasks import (
    CACHED_PROBE_THRESHOLD_MS,
    MeasurementTask,
    TaskOutcome,
    TaskType,
)
from repro.netsim.dns import DNS_TIMEOUT_PENALTY_MS, DNSAction
from repro.netsim.http import (
    HTTPAction,
    LOSS_GIVEUP_PROBABILITY as HTTP_GIVEUP_PROBABILITY,
    REQUEST_TIMEOUT_MS,
    THROTTLE_FACTOR,
)
from repro.netsim.latency import rtt_from_uniform
from repro.netsim.tcp import (
    CONNECT_TIMEOUT_MS,
    LOSS_GIVEUP_PROBABILITY as TCP_GIVEUP_PROBABILITY,
    RETRANSMIT_PENALTY_MAX_MS,
    TCPAction,
)
from repro.web.url import URL

# ----------------------------------------------------------------------
# Slot encoding
# ----------------------------------------------------------------------
#: Uniform draws pre-allocated per fetch slot: cached-render time, DNS RTT
#: jitter, TCP loss / give-up / retransmit, TCP RTT jitter, HTTP loss /
#: give-up, HTTP RTT jitter.  Unused columns (e.g. the retransmit draw of a
#: lossless fetch) are simply never consumed, which is what keeps the layout
#: identical between the serial and vectorized executors.
DRAWS_PER_SLOT = 9

KIND_COORD = 0     #: task-script delivery fetch (one per delivery URL)
KIND_TARGET = 1    #: image / style-sheet / script task target fetch
KIND_PAGE = 2      #: inline-frame page fetch
KIND_EMBEDDED = 3  #: resource embedded by an inline-frame page
KIND_PROBE = 4     #: the probe image timed after an inline-frame load
KIND_SUBMIT = 5    #: result submission to the collection server

# Verdict stage codes (first non-PASS interceptor action per stage).
DNS_PASS, DNS_NXDOMAIN, DNS_TIMEOUT, DNS_INJECT = 0, 1, 2, 3
TCP_PASS, TCP_DROP, TCP_RESET = 0, 1, 2
HTTP_PASS, HTTP_DROP, HTTP_RESET, HTTP_BLOCK, HTTP_THROTTLE = 0, 1, 2, 3, 4

_DNS_CODE = {
    DNSAction.NXDOMAIN: DNS_NXDOMAIN,
    DNSAction.TIMEOUT: DNS_TIMEOUT,
    DNSAction.INJECT: DNS_INJECT,
}
_TCP_CODE = {TCPAction.DROP: TCP_DROP, TCPAction.RESET: TCP_RESET}
_HTTP_CODE = {
    HTTPAction.DROP: HTTP_DROP,
    HTTPAction.RESET: HTTP_RESET,
    HTTPAction.BLOCK_PAGE: HTTP_BLOCK,
    HTTPAction.THROTTLE: HTTP_THROTTLE,
}

_OUTCOMES = (TaskOutcome.SUCCESS, TaskOutcome.FAILURE, TaskOutcome.INCONCLUSIVE)
OUT_SUCCESS, OUT_FAILURE, OUT_INCONCLUSIVE = 0, 1, 2

BLOCK_PAGE_SIZE_BYTES = 2048


# ----------------------------------------------------------------------
# URL response table and censorship verdict cache
# ----------------------------------------------------------------------
class UrlTable:
    """Deterministic per-URL server facts, resolved once per run.

    What a server answers for a URL (status, content type, size, caching
    headers) carries no randomness, so the runner resolves each URL through
    the same DNS records and :meth:`WebServer.handle` the browser path uses
    and keeps the answers in columns the executors index by URL id.
    """

    def __init__(self, world) -> None:
        self._world = world
        self._ids: dict[str, int] = {}
        self.urls: list[URL] = []
        self.hosts: list[str] = []
        self.server_known: list[bool] = []
        self.status: list[int] = []
        self.resp_ok: list[bool] = []
        self.content_type: list[object] = []
        self.size_bytes: list[int] = []
        self.cacheable: list[bool] = []
        self.is_page: list[bool] = []
        self.valid_syntax: list[bool] = []
        self.embedded: list[tuple[URL, ...]] = []

    def __len__(self) -> int:
        return len(self.urls)

    def url_id(self, url: URL) -> int:
        key = str(url)
        existing = self._ids.get(key)
        if existing is not None:
            return existing
        index = len(self.urls)
        self._ids[key] = index
        self.urls.append(url)
        self.hosts.append(url.host)
        ip = self._world.network.dns.authoritative_ip(url.host)
        server = self._world.universe.server_for_ip(ip) if ip else None
        self.server_known.append(server is not None)
        if server is None:
            response = None
        else:
            response = server.handle(url)
        if response is None:
            self.status.append(0)
            self.resp_ok.append(False)
            self.content_type.append(None)
            self.size_bytes.append(0)
            self.cacheable.append(False)
            self.is_page.append(False)
            self.valid_syntax.append(False)
            self.embedded.append(())
        else:
            resource = response.resource
            self.status.append(response.status)
            self.resp_ok.append(response.ok)
            self.content_type.append(response.content_type)
            self.size_bytes.append(response.size_bytes)
            self.cacheable.append(response.cacheable)
            self.is_page.append(resource is not None and resource.is_page)
            self.valid_syntax.append(resource is not None and resource.valid_syntax)
            self.embedded.append(tuple(resource.embedded_urls) if resource is not None else ())
        return index


class VerdictCache:
    """First-non-PASS censor actions per (interceptor chain, URL).

    Every censor in the model is deterministic — a blacklist policy plus a
    mechanism — so the action each connection stage suffers depends only on
    the interceptor chain on the client's path and the URL.  Most countries
    share the same chain (no national censors, globals only), so keying by
    chain identity instead of country collapses ~170 countries onto a
    handful of walks.  The serial executor recomputes these walks per fetch
    as the reference; the batch executor asks this cache.
    """

    def __init__(self, world, urls: UrlTable) -> None:
        self._world = world
        self._urls = urls
        #: country -> identity key of its interceptor chain
        self._chains: dict[str, tuple] = {}
        self._cache: dict[tuple, tuple[int, int, int]] = {}

    def _chain(self, country_code: str) -> tuple:
        chain = self._chains.get(country_code)
        if chain is None:
            interceptors = self._world.interceptors_for_country(country_code)
            chain = (tuple(id(i) for i in interceptors), interceptors)
            self._chains[country_code] = chain
        return chain

    def verdict(self, country_code: str, url_id: int) -> tuple[int, int, int]:
        chain_key, interceptors = self._chain(country_code)
        key = (chain_key, url_id)
        cached = self._cache.get(key)
        if cached is None:
            cached = compute_verdict(
                interceptors,
                self._urls.urls[url_id],
                self._urls.hosts[url_id],
                self._urls.server_known[url_id],
            )
            self._cache[key] = cached
        return cached


def compute_verdict(interceptors, url: URL, host: str, server_known: bool) -> tuple[int, int, int]:
    """(dns, tcp, http) stage codes for a fetch of ``url`` on this path.

    Mirrors the stage walks of :meth:`DNSResolver.resolve`,
    :meth:`TCPConnectionModel.connect`, and :meth:`HTTPExchangeModel.exchange`:
    the first interceptor that does anything other than PASS decides a stage.
    """
    dns_code = DNS_PASS
    for interceptor in interceptors:
        action = interceptor.intercept_dns(host)
        if action is not DNSAction.PASS:
            dns_code = _DNS_CODE[action]
            break
    if dns_code == DNS_PASS and not server_known:
        dns_code = DNS_NXDOMAIN
    tcp_code = TCP_PASS
    for interceptor in interceptors:
        action = interceptor.intercept_tcp("", host)
        if action is not TCPAction.PASS:
            tcp_code = _TCP_CODE[action]
            break
    http_code = HTTP_PASS
    for interceptor in interceptors:
        action = interceptor.intercept_http(url)
        if action is not HTTPAction.PASS:
            http_code = _HTTP_CODE[action]
            break
    return dns_code, tcp_code, http_code


# ----------------------------------------------------------------------
# Fetch program
# ----------------------------------------------------------------------
@dataclass
class TaskSlots:
    """Where one scheduled task's fetches live inside the program."""

    task: MeasurementTask
    main_slot: int                 #: target fetch (or iframe page fetch)
    submit_slot: int
    embedded_slots: tuple[int, ...] = ()
    probe_slot: int = -1


#: Task-type codes stored per TARGET slot so outcomes vectorize.
TASK_NONE, TASK_IMAGE, TASK_STYLE, TASK_SCRIPT = 0, 1, 2, 3

_TASK_CODE = {
    TaskType.IMAGE: TASK_IMAGE,
    TaskType.STYLE_SHEET: TASK_STYLE,
    TaskType.SCRIPT: TASK_SCRIPT,
}


@dataclass
class FetchProgram:
    """The compiled fetch slots of one batch of visits."""

    visit: list[int] = field(default_factory=list)
    kind: list[int] = field(default_factory=list)
    url_id: list[int] = field(default_factory=list)
    use_cache: list[bool] = field(default_factory=list)
    task_code: list[int] = field(default_factory=list)
    #: Visits containing within-visit URL reuse of cacheable resources (the
    #: inline-frame mechanism); these take the scalar cache-aware path even
    #: in batch mode.
    cache_visits: set[int] = field(default_factory=set)
    #: Per visit: slot ids of the delivery fetches (one per delivery URL).
    coord_slots: list[list[int]] = field(default_factory=list)
    #: Per visit: the scheduled tasks with their slot assignments.
    visit_tasks: list[list[TaskSlots]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.visit)

def compile_program(
    urls: UrlTable,
    decisions: Sequence[ScheduleDecision],
    delivery_url_ids: Sequence[int],
    submit_url_id: int,
) -> FetchProgram:
    """Lay out every fetch the batch performs, in visit order.

    A visit with no scheduled tasks contributes no slots (the task script is
    only fetched when there is a task to deliver, matching
    :meth:`CoordinationServer.deliver`).
    """
    program = FetchProgram()
    cacheable = urls.cacheable
    # Per-task slot templates: the URL ids and task code of a task never
    # change, so resolve them once per task object instead of per visit.
    templates: dict[int, tuple] = {}
    slot_visit = program.visit
    slot_kind = program.kind
    slot_url = program.url_id
    slot_use_cache = program.use_cache
    slot_task_code = program.task_code
    cache_visits = program.cache_visits
    coord_slots = program.coord_slots
    visit_tasks = program.visit_tasks
    for visit, decision in enumerate(decisions):
        coords: list[int] = []
        entries: list[TaskSlots] = []
        coord_slots.append(coords)
        visit_tasks.append(entries)
        if not decision.tasks:
            continue
        multi_task = len(decision.tasks) > 1
        seen: set[int] = set()
        for url_id in delivery_url_ids:
            coords.append(len(slot_visit))
            slot_visit.append(visit)
            slot_kind.append(KIND_COORD)
            slot_url.append(url_id)
            slot_use_cache.append(False)
            slot_task_code.append(TASK_NONE)
        for task in decision.tasks:
            template = templates.get(id(task))
            if template is None:
                target_id = urls.url_id(task.target_url)
                if task.task_type is TaskType.INLINE_FRAME:
                    embedded_ids = tuple(
                        urls.url_id(u) for u in urls.embedded[target_id]
                    )
                    probe_id = urls.url_id(task.probe_image_url)
                    kinds = (
                        [KIND_PAGE]
                        + [KIND_EMBEDDED] * len(embedded_ids)
                        + [KIND_PROBE, KIND_SUBMIT]
                    )
                    url_ids = [target_id, *embedded_ids, probe_id, submit_url_id]
                    uses_cache = [True] * (len(embedded_ids) + 2) + [False]
                    codes = [TASK_NONE] * len(kinds)
                    offsets = (0, tuple(range(1, 1 + len(embedded_ids))),
                               1 + len(embedded_ids), 2 + len(embedded_ids))
                    template = (target_id, True, kinds, url_ids, uses_cache, codes, offsets)
                else:
                    kinds = [KIND_TARGET, KIND_SUBMIT]
                    url_ids = [target_id, submit_url_id]
                    uses_cache = [True, False]
                    codes = [_TASK_CODE[task.task_type], TASK_NONE]
                    offsets = (0, (), -1, 1)
                    template = (target_id, False, kinds, url_ids, uses_cache, codes, offsets)
                templates[id(task)] = template
            target_id, is_iframe, kinds, url_ids, uses_cache, codes, offsets = template
            base = len(slot_visit)
            slot_visit.extend(repeat(visit, len(kinds)))
            slot_kind.extend(kinds)
            slot_url.extend(url_ids)
            slot_use_cache.extend(uses_cache)
            slot_task_code.extend(codes)
            if is_iframe:
                # Inline-frame visits always take the cache-aware path: the
                # probe's verdict hinges on what the page render cached.
                cache_visits.add(visit)
            elif multi_task and cacheable[target_id]:
                # Only multi-task visits can fetch the same target URL twice.
                if target_id in seen:
                    cache_visits.add(visit)
                else:
                    seen.add(target_id)
            main_off, embedded_offs, probe_off, submit_off = offsets
            entries.append(
                TaskSlots(
                    task=task,
                    main_slot=base + main_off,
                    submit_slot=base + submit_off,
                    embedded_slots=tuple(base + o for o in embedded_offs),
                    probe_slot=base + probe_off if probe_off >= 0 else -1,
                )
            )
    return program


# ----------------------------------------------------------------------
# Derived randomness
# ----------------------------------------------------------------------
@dataclass
class SlotDraws:
    """Per-slot stochastic values derived from the pre-drawn uniforms.

    Derived once, vectorized, and consumed by both executors — which is what
    makes their floating-point results bit-identical.
    """

    cached_render_ms: np.ndarray
    rtt_dns_ms: np.ndarray
    tcp_lost: np.ndarray
    tcp_giveup: np.ndarray
    retransmit_ms: np.ndarray
    rtt_tcp_ms: np.ndarray
    http_lost: np.ndarray
    http_giveup: np.ndarray
    rtt_http_ms: np.ndarray
    bytes_per_ms: np.ndarray


def derive_slot_draws(
    uniforms: np.ndarray,
    rtt_ms: np.ndarray,
    jitter_ms: np.ndarray,
    loss_rate: np.ndarray,
    bandwidth_kbps: np.ndarray,
) -> SlotDraws:
    """Turn the raw uniform matrix into the values the fetch model consumes."""
    span = CACHED_RENDER_MAX_MS - CACHED_RENDER_MIN_MS
    return SlotDraws(
        cached_render_ms=CACHED_RENDER_MIN_MS + span * uniforms[:, 0],
        rtt_dns_ms=rtt_from_uniform(rtt_ms, jitter_ms, uniforms[:, 1]),
        tcp_lost=uniforms[:, 2] < loss_rate,
        tcp_giveup=uniforms[:, 3] < TCP_GIVEUP_PROBABILITY,
        retransmit_ms=RETRANSMIT_PENALTY_MAX_MS * uniforms[:, 4],
        rtt_tcp_ms=rtt_from_uniform(rtt_ms, jitter_ms, uniforms[:, 5]),
        http_lost=uniforms[:, 6] < loss_rate,
        http_giveup=uniforms[:, 7] < HTTP_GIVEUP_PROBABILITY,
        rtt_http_ms=rtt_from_uniform(rtt_ms, jitter_ms, uniforms[:, 8]),
        bytes_per_ms=bandwidth_kbps * 1000.0 / 8.0 / 1000.0,
    )


# ----------------------------------------------------------------------
# Batch plan + results
# ----------------------------------------------------------------------
@dataclass
class BatchPlan:
    """Everything one batch of visits needs before execution."""

    start_visit: int
    client_batch: object
    clients: list
    origin_indices: np.ndarray
    days: np.ndarray
    decisions: list[ScheduleDecision]
    program: FetchProgram
    draws: SlotDraws


@dataclass
class PlanContext:
    """Shared state of one campaign's planning: URL facts plus the campaign key.

    Built once per campaign run (or once per shard worker) and threaded
    through every block plan.  ``assignment_counts`` accumulates the scoped
    schedulers' per-block counts so the campaign-wide replication report can
    be reconstructed by whoever owns the deployment's scheduler.
    """

    epoch: int
    visits: int
    block_visits: int
    urls: UrlTable
    verdicts: VerdictCache
    delivery_url_ids: list[int]
    submit_url_id: int
    #: Global visit index this campaign's numbering starts at (client ids,
    #: per-country IP hosts) — nonzero when earlier campaigns on the same
    #: deployment already claimed their ranges.
    visit_base: int = 0
    assignment_counts: Counter = field(default_factory=Counter)

    @property
    def block_count(self) -> int:
        return (self.visits + self.block_visits - 1) // self.block_visits

    def count_assignments(self, counts: dict[str, int]) -> None:
        self.assignment_counts.update(counts)


@dataclass
class _BlockPlan:
    """One fully planned block: the unit whose randomness is self-contained."""

    index: int
    start: int
    count: int
    client_batch: object
    clients: list | None
    origin_indices: np.ndarray
    days: np.ndarray
    decisions: list[ScheduleDecision]
    program: FetchProgram
    uniforms: np.ndarray
    #: ``slot_bounds[v]`` is the first program slot of visit ``v`` (length
    #: ``count + 1``), so a visit range maps to a contiguous slot range.
    slot_bounds: np.ndarray


@dataclass
class BlockExecution:
    """What executing one planning block produced (shard workers consume this)."""

    block_index: int
    visits: int
    stored: int
    deliveries_attempted: int
    deliveries_failed: int
    unreachable_submissions: int


@dataclass
class BatchOutcome:
    """What executing one batch produced.

    The serial reference executor emits row tuples (``records``); the
    vectorized executor emits a column payload (``columns``) that the
    collection store ingests without any per-row work.  Exactly one of the
    two is set.
    """

    #: Plain tuples in :class:`SubmissionRecord` field order (serial path).
    records: list[tuple] | None
    unreachable_submissions: int
    deliveries_attempted: int
    deliveries_failed: int
    #: Column payload (batch path).
    columns: ColumnarRecords | None = None


@dataclass(frozen=True)
class BatchProgress:
    """Progress/checkpoint information passed to the per-batch hook."""

    batch_index: int
    batch_count: int
    visits_completed: int
    visits_total: int
    measurements_added: int
    measurements_total: int
    duration_s: float


# ----------------------------------------------------------------------
# The campaign runner
# ----------------------------------------------------------------------
class CampaignRunner:
    """Executes a deployment's campaign in batches.

    ``mode="batch"`` is the vectorized fast path; ``mode="serial"`` is the
    scalar reference implementation with identical results for a fixed seed.
    """

    MODES = ("batch", "serial")
    DEFAULT_BATCH_SIZE = 8192
    #: Visits per planning block — the unit whose randomness is derived
    #: entirely from ``(seed, epoch, block_index)``.  Overridden per campaign
    #: by ``CampaignConfig.plan_block_visits``.
    DEFAULT_PLAN_BLOCK_VISITS = 2048

    def __init__(
        self,
        deployment,
        mode: str = "batch",
        batch_size: int | None = None,
        progress: Callable[[BatchProgress], None] | None = None,
        tracer=None,
    ) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown campaign mode {mode!r}")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch size must be positive")
        self.deployment = deployment
        self.mode = mode
        self.batch_size = batch_size or self.DEFAULT_BATCH_SIZE
        self.progress = progress
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: (campaign key, plan) of the most recently planned block — adjacent
        #: batches share boundary blocks.  Keyed on (epoch, visits) too, so a
        #: runner reused for a second campaign never serves a stale plan.
        self._block_cache: tuple[tuple, _BlockPlan] | None = None

    # ------------------------------------------------------------------
    def run(self, visits: int | None = None, resume_from_batch: int = 0):
        """Run ``visits`` origin-site visits and return a ``CampaignResult``.

        Planning is block-keyed (every planning block's randomness derives
        from ``(seed, epoch, block_index)`` alone), so ``resume_from_batch``
        skips the completed batches' *execution* outright — no replay is
        needed for the remaining draws to line up.  Their planning is still
        replayed (it carries the scheduling counters), so campaign-wide
        surfaces like ``Scheduler.replication_report`` come out identical to
        an uninterrupted run.  Resuming still requires a freshly built
        ``World`` + deployment with the same seeds so that the campaign
        epoch matches the interrupted run; resuming on a deployment that has
        already run a campaign is rejected rather than silently producing a
        different one.
        """
        from repro.core.pipeline import CampaignResult  # local: avoids a cycle

        deployment = self.deployment
        config = deployment.config
        visits = visits if visits is not None else config.visits
        if resume_from_batch:
            stale = (
                deployment.campaigns_run != 0
                or deployment.world.clients.batch_sampling_started
            )
            if stale:
                raise ValueError(
                    "resume_from_batch requires a freshly built World and "
                    "deployment (same seeds as the interrupted run); this "
                    "deployment/world has already sampled or run a campaign, "
                    "so the resumed batches would belong to a different "
                    "campaign epoch"
                )
        epoch = deployment.next_campaign_epoch()
        ctx = self.plan_context(visits, epoch, deployment.claim_visit_range(visits))
        if resume_from_batch:
            # Replay the planning (only) of the blocks the skipped batches
            # fully cover; the boundary block is planned by the main loop.
            boundary = min(resume_from_batch * self.batch_size, visits)
            skipped_blocks = (
                ctx.block_count if boundary >= visits
                else boundary // ctx.block_visits
            )
            for block_index in range(skipped_blocks):
                self._plan_block(ctx, block_index)
            get_registry().counter("runner.blocks_replayed").add(skipped_blocks)

        batch_count = (visits + self.batch_size - 1) // self.batch_size
        executions = 0
        started = monotonic()
        # Progress and telemetry share one code path: the runner emits
        # "batch" events on the tracer's stream and the legacy callback
        # rides them as a listener (NullTracer still dispatches listeners).
        listener = None
        if self.progress is not None:
            listener = progress_listener(self.progress, "batch", BatchProgress)
            self.tracer.add_listener(listener)
        try:
            for batch_index in range(resume_from_batch, batch_count):
                start = batch_index * self.batch_size
                end = min(start + self.batch_size, visits)
                stored_in_batch = 0
                for plan in self.plan_parts(ctx, start, end):
                    with self.tracer.span("execute", batch=batch_index):
                        outcome = self.execute_plan(ctx, plan)
                    with self.tracer.span("ingest", batch=batch_index):
                        stored_in_batch += self._ingest(
                            deployment.collection, outcome
                        )
                    deployment.coordination.note_batch_deliveries(
                        outcome.deliveries_attempted, outcome.deliveries_failed
                    )
                executions += stored_in_batch
                self.tracer.event(
                    "batch",
                    batch_index=batch_index,
                    batch_count=batch_count,
                    visits_completed=end,
                    visits_total=visits,
                    measurements_added=stored_in_batch,
                    measurements_total=len(deployment.collection),
                    duration_s=monotonic() - started,
                )
        finally:
            if listener is not None:
                self.tracer.remove_listener(listener)
        deployment.scheduler.absorb_counts(ctx.assignment_counts)
        return CampaignResult(
            config=config,
            collection=deployment.collection,
            coordination=deployment.coordination,
            visits_simulated=visits,
            task_executions=executions,
            feasibility=deployment.feasibility,
            mode=self.mode,
        )

    # ------------------------------------------------------------------
    # Planning: block-keyed randomness
    # ------------------------------------------------------------------
    def plan_context(self, visits: int, epoch: int, visit_base: int = 0) -> PlanContext:
        """Resolve the campaign-constant planning state (URL facts, key)."""
        deployment = self.deployment
        urls = UrlTable(deployment.world)
        block_visits = deployment.config.plan_block_visits
        if block_visits is None:
            block_visits = self.DEFAULT_PLAN_BLOCK_VISITS
        if block_visits < 1:
            raise ValueError("plan_block_visits must be positive")
        return PlanContext(
            epoch=epoch,
            visits=visits,
            block_visits=block_visits,
            visit_base=visit_base,
            urls=urls,
            verdicts=VerdictCache(deployment.world, urls),
            delivery_url_ids=[
                urls.url_id(url) for url in deployment.coordination.all_delivery_urls
            ],
            submit_url_id=urls.url_id(deployment.collection.submit_url),
        )

    def _plan_block(self, ctx: PlanContext, block_index: int) -> _BlockPlan:
        """Plan one block of visits from its own derived RNG substreams.

        Every random quantity a block consumes — client sampling, task
        scheduling, origin/day assignment, the per-slot uniform matrix — is
        drawn from generators seeded ``[seed, stream, epoch, block_index]``,
        and the block's client IPs/ids are indexed by global visit position.
        A block is therefore a pure function of ``(config, epoch,
        block_index)``: any process can plan any block independently and get
        byte-identical results, which is what makes process-sharded
        campaigns merge back into exactly the single-process campaign.
        """
        cache_key = (ctx.epoch, ctx.visits, block_index)
        cached = self._block_cache
        if cached is not None and cached[0] == cache_key:
            return cached[1]
        with self.tracer.span("plan", block=block_index):
            block = self._plan_block_fresh(ctx, block_index)
        get_registry().counter("runner.blocks_planned").add(1)
        self._block_cache = (cache_key, block)
        return block

    def _plan_block_fresh(self, ctx: PlanContext, block_index: int) -> _BlockPlan:
        """The uncached planning work of :meth:`_plan_block`."""
        deployment = self.deployment
        config = deployment.config
        seed, epoch = config.seed, ctx.epoch
        start = block_index * ctx.block_visits
        count = min(ctx.block_visits, ctx.visits - start)
        batch = deployment.world.sample_client_batch(
            count,
            config.country_code,
            rng=np.random.default_rng([seed, 127, epoch, block_index]),
            first_id=ctx.visit_base + start + 1,
            host_base=ctx.visit_base + start,
        )
        origin_indices = np.random.default_rng(
            [seed, 101, epoch, block_index]
        ).integers(0, len(deployment.origins), size=count)
        days = np.random.default_rng(
            [seed, 103, epoch, block_index]
        ).integers(0, config.days, size=count)
        if config.day_offset:
            # The longitudinal engine shifts each epoch's day window; the
            # draws themselves are unchanged, so campaign content is the
            # same campaign translated in time.
            days = days + config.day_offset
        scoped = deployment.scheduler.scoped(
            np.random.default_rng([seed, 131, epoch, block_index])
        )
        if self.mode == "serial":
            clients = batch.clients()
            decisions = [scoped.schedule(client) for client in clients]
        else:
            # Batch mode schedules straight off the column arrays; per-visit
            # Client objects are never materialized.
            clients = None
            decisions = scoped.assign_batch(batch)
        ctx.count_assignments(scoped.assignment_counts)
        program = compile_program(
            ctx.urls, decisions, ctx.delivery_url_ids, ctx.submit_url_id
        )
        uniforms = np.random.default_rng(
            [seed, 211, epoch, block_index]
        ).random((len(program), DRAWS_PER_SLOT))
        block = _BlockPlan(
            index=block_index,
            start=start,
            count=count,
            client_batch=batch,
            clients=clients,
            origin_indices=origin_indices,
            days=days,
            decisions=decisions,
            program=program,
            uniforms=uniforms,
            slot_bounds=np.searchsorted(
                np.asarray(program.visit, dtype=np.int64), np.arange(count + 1)
            ),
        )
        return block

    def _slice_block(self, ctx: PlanContext, block: _BlockPlan, lo: int, hi: int) -> BatchPlan:
        """The executable plan for absolute visits ``[lo, hi)`` of ``block``.

        A full-block slice reuses the block's compiled program and draws; a
        partial slice (a batch boundary that cuts through the block)
        recompiles the sub-range's program — the slot layout of a visit
        depends only on its own decision, so the sub-program is exactly the
        corresponding slot range of the block program, and the pre-drawn
        uniform rows are sliced to match.
        """
        l0, l1 = lo - block.start, hi - block.start
        if l0 == 0 and l1 == block.count:
            batch = block.client_batch
            clients = block.clients
            decisions = block.decisions
            program = block.program
            uniforms = block.uniforms
        else:
            batch = block.client_batch.slice(l0, l1)
            clients = block.clients[l0:l1] if block.clients is not None else None
            decisions = block.decisions[l0:l1]
            program = compile_program(
                ctx.urls, decisions, ctx.delivery_url_ids, ctx.submit_url_id
            )
            s0, s1 = int(block.slot_bounds[l0]), int(block.slot_bounds[l1])
            uniforms = block.uniforms[s0:s1]
        visit_idx = np.asarray(program.visit, dtype=np.int64)
        draws = derive_slot_draws(
            uniforms,
            batch.rtt_ms[visit_idx],
            batch.jitter_ms[visit_idx],
            batch.loss_rate[visit_idx],
            batch.bandwidth_kbps[visit_idx],
        )
        return BatchPlan(
            start_visit=lo,
            client_batch=batch,
            clients=clients,
            origin_indices=block.origin_indices[l0:l1],
            days=block.days[l0:l1],
            decisions=decisions,
            program=program,
            draws=draws,
        )

    def plan_parts(self, ctx: PlanContext, start: int, end: int) -> Iterable[BatchPlan]:
        """Executable plans covering visits ``[start, end)``, one per block piece."""
        B = ctx.block_visits
        visit = start
        while visit < end:
            block = self._plan_block(ctx, visit // B)
            hi = min(end, block.start + block.count)
            yield self._slice_block(ctx, block, visit, hi)
            visit = hi

    # ------------------------------------------------------------------
    # Execution + ingestion
    # ------------------------------------------------------------------
    def execute_plan(self, ctx: PlanContext, plan: BatchPlan) -> BatchOutcome:
        if self.mode == "serial":
            return SerialExecutor(
                self.deployment, ctx.urls, ctx.submit_url_id
            ).execute(plan)
        return BatchExecutor(
            self.deployment, ctx.urls, ctx.verdicts, ctx.submit_url_id
        ).execute(plan)

    @staticmethod
    def _ingest(collection, outcome: BatchOutcome) -> int:
        """Columnar ingestion: the batch executor hands over column payloads
        that append straight into the collection store's arrays (per-visit
        batched GeoIP lookup, no per-record Measurement construction); the
        serial path's row tuples are transposed by ``ingest_records``."""
        if outcome.columns is not None:
            return collection.ingest_columns(
                outcome.columns, outcome.unreachable_submissions
            )
        return collection.ingest_records(
            outcome.records, outcome.unreachable_submissions
        )

    def execute_block(self, ctx: PlanContext, block_index: int, collection) -> BlockExecution:
        """Plan, execute, and ingest one whole planning block.

        The shard worker's unit of work: results go to the worker's own
        ``collection`` and delivery/assignment counters are *returned*, not
        applied to the deployment, so the parent process can absorb exactly
        one copy of each shard's counters from its manifest.
        """
        block = self._plan_block(ctx, block_index)
        plan = self._slice_block(ctx, block, block.start, block.start + block.count)
        with self.tracer.span("execute", block=block_index):
            outcome = self.execute_plan(ctx, plan)
        with self.tracer.span("ingest", block=block_index):
            stored = self._ingest(collection, outcome)
        return BlockExecution(
            block_index=block_index,
            visits=block.count,
            stored=stored,
            deliveries_attempted=outcome.deliveries_attempted,
            deliveries_failed=outcome.deliveries_failed,
            unreachable_submissions=outcome.unreachable_submissions,
        )


# ----------------------------------------------------------------------
# Serial reference executor
# ----------------------------------------------------------------------
class _SlotResult:
    """Scalar fetch result, mirroring what the vectorized pass records."""

    __slots__ = ("completed", "ok", "status", "has_response", "is_block",
                 "from_cache", "elapsed")

    def __init__(self) -> None:
        self.completed = False
        self.ok = False
        self.status = 0
        self.has_response = False
        self.is_block = False
        self.from_cache = False
        self.elapsed = 0.0


class SerialExecutor:
    """The reference implementation: one visit at a time, one fetch at a time.

    Walks each visit's fetch program in order, re-deriving the censor action
    at every stage from the interceptor objects on the client's path (the
    way :meth:`Network.fetch` consults them), and consuming the same derived
    draw columns the vectorized executor reads.
    """

    def __init__(self, deployment, urls: UrlTable, submit_url_id: int) -> None:
        self.deployment = deployment
        self.urls = urls
        self.submit_url_id = submit_url_id

    # -- one network fetch ------------------------------------------------
    def _fetch(self, slot: int, url_id: int, interceptors, draws: SlotDraws,
               cached_urls: set[int], use_cache: bool) -> _SlotResult:
        urls = self.urls
        result = _SlotResult()
        if use_cache and url_id in cached_urls:
            result.from_cache = True
            result.elapsed = draws.cached_render_ms[slot]
            return result
        verdict = compute_verdict(
            interceptors, urls.urls[url_id], urls.hosts[url_id], urls.server_known[url_id]
        )
        dns_code, tcp_code, http_code = verdict
        elapsed = draws.rtt_dns_ms[slot]
        if dns_code == DNS_TIMEOUT:
            result.elapsed = elapsed + DNS_TIMEOUT_PENALTY_MS
            return result
        if dns_code == DNS_NXDOMAIN:
            result.elapsed = elapsed
            return result
        sinkholed = dns_code == DNS_INJECT
        # TCP stage.
        if tcp_code == TCP_DROP:
            result.elapsed = elapsed + CONNECT_TIMEOUT_MS
            return result
        if tcp_code == TCP_RESET:
            result.elapsed = elapsed + draws.rtt_tcp_ms[slot]
            return result
        if draws.tcp_lost[slot] and draws.tcp_giveup[slot]:
            result.elapsed = elapsed + CONNECT_TIMEOUT_MS
            return result
        elapsed = elapsed + draws.rtt_tcp_ms[slot]
        if draws.tcp_lost[slot]:
            elapsed = elapsed + draws.retransmit_ms[slot]
        # HTTP stage.
        if http_code == HTTP_DROP:
            result.elapsed = elapsed + REQUEST_TIMEOUT_MS
            return result
        if http_code == HTTP_RESET:
            result.elapsed = elapsed + draws.rtt_http_ms[slot]
            return result
        if http_code == HTTP_BLOCK:
            result.completed = True
            result.status = 200
            result.has_response = True
            result.is_block = True
            result.elapsed = (
                elapsed
                + draws.rtt_http_ms[slot]
                + BLOCK_PAGE_SIZE_BYTES / draws.bytes_per_ms[slot]
            )
            return result
        server_reachable = urls.server_known[url_id] and not sinkholed
        if http_code == HTTP_THROTTLE:
            if not server_reachable:
                result.elapsed = elapsed + REQUEST_TIMEOUT_MS
                return result
            exchange = (
                draws.rtt_http_ms[slot]
                + urls.size_bytes[url_id] / draws.bytes_per_ms[slot] * THROTTLE_FACTOR
            )
            if exchange >= REQUEST_TIMEOUT_MS:
                result.elapsed = elapsed + REQUEST_TIMEOUT_MS
                return result
            result.completed = True
            result.status = urls.status[url_id]
            result.has_response = True
            result.ok = urls.resp_ok[url_id]
            result.elapsed = elapsed + exchange
            return result
        # PASS.
        if not server_reachable:
            result.elapsed = elapsed + REQUEST_TIMEOUT_MS
            return result
        if draws.http_lost[slot] and draws.http_giveup[slot]:
            result.elapsed = elapsed + REQUEST_TIMEOUT_MS
            return result
        result.completed = True
        result.status = urls.status[url_id]
        result.has_response = True
        result.ok = urls.resp_ok[url_id]
        result.elapsed = (
            elapsed
            + draws.rtt_http_ms[slot]
            + urls.size_bytes[url_id] / draws.bytes_per_ms[slot]
        )
        return result

    # -- one whole visit ---------------------------------------------------
    def execute(self, plan: BatchPlan) -> BatchOutcome:
        deployment = self.deployment
        urls = self.urls
        program = plan.program
        draws = plan.draws
        world = deployment.world
        origins = deployment.origins
        records: list[tuple] = []
        unreachable = 0
        attempted = 0
        failed = 0
        supports_probe = CACHED_PROBE_THRESHOLD_MS
        for visit, decision in enumerate(plan.decisions):
            tasks = program.visit_tasks[visit]
            if not tasks:
                continue
            attempted += 1
            client = plan.clients[visit]
            interceptors = world.interceptors_for(client)
            cached_urls: set[int] = set()

            def run_slot(slot: int) -> _SlotResult:
                url_id = program.url_id[slot]
                result = self._fetch(
                    slot, url_id, interceptors, draws, cached_urls,
                    program.use_cache[slot],
                )
                if (
                    not result.from_cache
                    and result.ok
                    and not result.is_block
                    and urls.cacheable[url_id]
                ):
                    cached_urls.add(url_id)
                return result

            delivered = False
            for slot in program.coord_slots[visit]:
                coord = run_slot(slot)
                if coord.ok and not coord.is_block:
                    delivered = True
                    break
            if not delivered:
                failed += 1
                continue
            origin = origins[plan.origin_indices[visit]]
            day = int(plan.days[visit])
            browser_profile = client.browser
            for entry in tasks:
                task = entry.task
                probe_time: float | None = None
                if task.task_type is TaskType.INLINE_FRAME:
                    page = run_slot(entry.main_slot)
                    page_ok = page.from_cache or (
                        page.ok and not page.is_block
                        and urls.is_page[program.url_id[entry.main_slot]]
                    )
                    page_elapsed = page.elapsed
                    if page_ok and not page.from_cache:
                        for embedded_slot in entry.embedded_slots:
                            embedded = run_slot(embedded_slot)
                            page_elapsed = page_elapsed + embedded.elapsed
                    probe = run_slot(entry.probe_slot)
                    probe_type = urls.content_type[program.url_id[entry.probe_slot]]
                    probe_renders = (
                        probe.ok and not probe.is_block
                        and probe_type is not None and probe_type.name == "IMAGE"
                    )
                    probe_error = (
                        not probe.from_cache
                        and browser_profile.reports_image_events
                        and not probe_renders
                    )
                    probe_time = float(probe.elapsed)
                    if probe_error:
                        outcome_code = OUT_FAILURE
                    elif probe.elapsed <= supports_probe:
                        outcome_code = OUT_SUCCESS
                    else:
                        outcome_code = OUT_FAILURE
                    elapsed_total = float(page_elapsed + probe.elapsed)
                else:
                    load = run_slot(entry.main_slot)
                    outcome_code = _scalar_task_outcome(
                        task.task_type, load, urls, program.url_id[entry.main_slot],
                        browser_profile,
                    )
                    elapsed_total = float(load.elapsed)
                submission = run_slot(entry.submit_slot)
                if not (submission.ok and not submission.is_block):
                    unreachable += 1
                    continue
                # Plain tuple in SubmissionRecord field order (hot path).
                records.append((
                    task.measurement_id, task.task_type, task.target_url,
                    task.target_domain, _OUTCOMES[outcome_code], elapsed_total,
                    probe_time, client.ip_address, client.country_code,
                    client.isp, client.browser.family.value, origin.domain,
                    day, origin.strips_referer, client.is_automated,
                ))
        return BatchOutcome(
            records=records,
            unreachable_submissions=unreachable,
            deliveries_attempted=attempted,
            deliveries_failed=failed,
        )


def _scalar_task_outcome(task_type: TaskType, load: _SlotResult, urls: UrlTable,
                         url_id: int, browser_profile) -> int:
    """Outcome of an explicit-feedback task, mirroring ``execute_task``."""
    content_type = urls.content_type[url_id]
    type_name = content_type.name if content_type is not None else ""
    if task_type is TaskType.IMAGE:
        if not browser_profile.reports_image_events:
            return OUT_INCONCLUSIVE
        if load.from_cache:
            return OUT_SUCCESS
        renders = load.ok and not load.is_block and type_name == "IMAGE"
        return OUT_SUCCESS if renders else OUT_FAILURE
    if task_type is TaskType.STYLE_SHEET:
        if not browser_profile.supports_computed_style_check:
            return OUT_INCONCLUSIVE
        if load.from_cache:
            return OUT_SUCCESS
        applied = (
            load.ok and not load.is_block and type_name == "STYLESHEET"
            and urls.size_bytes[url_id] > 0
        )
        return OUT_SUCCESS if applied else OUT_FAILURE
    if task_type is TaskType.SCRIPT:
        if not browser_profile.supports_script_task:
            return OUT_INCONCLUSIVE
        if load.from_cache:
            return OUT_SUCCESS
        # Chrome fires onload for any completed HTTP 200 — block pages
        # included (paper §4.3.2).
        loaded = load.status == 200 and load.has_response
        return OUT_SUCCESS if loaded else OUT_FAILURE
    raise ValueError(f"not an explicit-feedback task type: {task_type!r}")


# ----------------------------------------------------------------------
# Vectorized executor
# ----------------------------------------------------------------------
class BatchExecutor:
    """Evaluates a whole batch's fetch program with vectorized numpy passes.

    Produces results identical to :class:`SerialExecutor`'s for the same
    :class:`BatchPlan`: censorship verdicts come from the
    :class:`VerdictCache` instead of per-fetch interceptor walks, elapsed
    times accumulate with the same staged additions over the same derived
    draws, and the handful of visits with within-visit cache interactions
    (inline frames) fall back to a scalar walk over the precomputed slot
    results.
    """

    def __init__(self, deployment, urls: UrlTable, verdicts: VerdictCache,
                 submit_url_id: int) -> None:
        self.deployment = deployment
        self.urls = urls
        self.verdicts = verdicts
        self.submit_url_id = submit_url_id

    # ------------------------------------------------------------------
    def execute(self, plan: BatchPlan) -> BatchOutcome:
        program = plan.program
        draws = plan.draws
        urls = self.urls
        batch = plan.client_batch
        n = len(program)
        attempted = sum(1 for tasks in program.visit_tasks if tasks)
        if n == 0:
            return BatchOutcome([], 0, attempted, attempted)

        visit = np.asarray(program.visit, dtype=np.int64)
        kind = np.asarray(program.kind, dtype=np.int8)
        url_id = np.asarray(program.url_id, dtype=np.int64)

        # --- Per-slot URL facts -----------------------------------------
        status_table = np.asarray(urls.status, dtype=np.int64)
        ok_table = np.asarray(urls.resp_ok, dtype=bool)
        size_table = np.asarray(urls.size_bytes, dtype=np.float64)
        known_table = np.asarray(urls.server_known, dtype=bool)
        page_table = np.asarray(urls.is_page, dtype=bool)
        image_table = np.asarray(
            [c is not None and c.name == "IMAGE" for c in urls.content_type], dtype=bool
        )
        style_table = np.asarray(
            [c is not None and c.name == "STYLESHEET" for c in urls.content_type], dtype=bool
        )
        slot_status = status_table[url_id]
        slot_resp_ok = ok_table[url_id]
        slot_size = size_table[url_id]
        slot_known = known_table[url_id]

        # --- Per-slot censorship verdicts -------------------------------
        dns_code, tcp_code, http_code = self._slot_verdicts(batch, visit, url_id)

        # --- The vectorized fetch pass (no within-visit caching) --------
        completed = np.zeros(n, dtype=bool)
        ok = np.zeros(n, dtype=bool)
        status = np.zeros(n, dtype=np.int64)
        has_response = np.zeros(n, dtype=bool)
        is_block = np.zeros(n, dtype=bool)

        elapsed = draws.rtt_dns_ms.copy()
        elapsed[dns_code == DNS_TIMEOUT] += DNS_TIMEOUT_PENALTY_MS
        alive = (dns_code == DNS_PASS) | (dns_code == DNS_INJECT)

        tcp_drop = alive & (tcp_code == TCP_DROP)
        elapsed[tcp_drop] += CONNECT_TIMEOUT_MS
        tcp_reset = alive & (tcp_code == TCP_RESET)
        elapsed[tcp_reset] += draws.rtt_tcp_ms[tcp_reset]
        alive &= tcp_code == TCP_PASS
        tcp_lost_giveup = alive & draws.tcp_lost & draws.tcp_giveup
        elapsed[tcp_lost_giveup] += CONNECT_TIMEOUT_MS
        alive &= ~tcp_lost_giveup
        elapsed[alive] += draws.rtt_tcp_ms[alive]
        retransmitted = alive & draws.tcp_lost
        elapsed[retransmitted] += draws.retransmit_ms[retransmitted]

        http_drop = alive & (http_code == HTTP_DROP)
        elapsed[http_drop] += REQUEST_TIMEOUT_MS
        http_reset = alive & (http_code == HTTP_RESET)
        elapsed[http_reset] += draws.rtt_http_ms[http_reset]
        blocked = alive & (http_code == HTTP_BLOCK)
        # Two separate adds, mirroring the serial reference's left-to-right
        # accumulation so the float results stay bit-identical.
        elapsed[blocked] += draws.rtt_http_ms[blocked]
        elapsed[blocked] += BLOCK_PAGE_SIZE_BYTES / draws.bytes_per_ms[blocked]
        completed[blocked] = True
        status[blocked] = 200
        has_response[blocked] = True
        is_block[blocked] = True

        reachable = slot_known & (dns_code != DNS_INJECT)
        throttled = alive & (http_code == HTTP_THROTTLE)
        throttle_dead = throttled & ~reachable
        elapsed[throttle_dead] += REQUEST_TIMEOUT_MS
        throttle_live = throttled & reachable
        exchange = np.zeros(n, dtype=np.float64)
        exchange[throttle_live] = (
            draws.rtt_http_ms[throttle_live]
            + slot_size[throttle_live] / draws.bytes_per_ms[throttle_live] * THROTTLE_FACTOR
        )
        throttle_timeout = throttle_live & (exchange >= REQUEST_TIMEOUT_MS)
        elapsed[throttle_timeout] += REQUEST_TIMEOUT_MS
        throttle_done = throttle_live & ~throttle_timeout
        elapsed[throttle_done] += exchange[throttle_done]
        completed[throttle_done] = True
        status[throttle_done] = slot_status[throttle_done]
        has_response[throttle_done] = True
        ok[throttle_done] = slot_resp_ok[throttle_done]

        passing = alive & (http_code == HTTP_PASS)
        pass_dead = passing & ~reachable
        elapsed[pass_dead] += REQUEST_TIMEOUT_MS
        pass_lost = passing & reachable & draws.http_lost & draws.http_giveup
        elapsed[pass_lost] += REQUEST_TIMEOUT_MS
        pass_done = passing & reachable & ~(draws.http_lost & draws.http_giveup)
        elapsed[pass_done] += draws.rtt_http_ms[pass_done]
        elapsed[pass_done] += slot_size[pass_done] / draws.bytes_per_ms[pass_done]
        completed[pass_done] = True
        status[pass_done] = slot_status[pass_done]
        has_response[pass_done] = True
        ok[pass_done] = slot_resp_ok[pass_done]

        # --- Delivery ----------------------------------------------------
        n_visits = len(batch)
        delivered = np.zeros(n_visits, dtype=bool)
        coord = kind == KIND_COORD
        np.logical_or.at(delivered, visit[coord], ok[coord])
        failed = attempted - int(
            np.count_nonzero(delivered[[i for i, t in enumerate(program.visit_tasks) if t]])
        )

        # --- Vectorized outcomes for explicit-feedback target slots -----
        task_code = np.asarray(program.task_code, dtype=np.int8)
        reports_t, style_sup_t, script_sup_t = self._capability_arrays(batch)
        reports = reports_t[visit]
        style_sup = style_sup_t[visit]
        script_sup = script_sup_t[visit]
        outcome_code = np.full(n, -1, dtype=np.int8)
        img = task_code == TASK_IMAGE
        outcome_code[img] = np.where(
            reports[img],
            np.where(ok[img] & image_table[url_id[img]], OUT_SUCCESS, OUT_FAILURE),
            OUT_INCONCLUSIVE,
        )
        sty = task_code == TASK_STYLE
        outcome_code[sty] = np.where(
            style_sup[sty],
            np.where(
                ok[sty] & style_table[url_id[sty]] & (slot_size[sty] > 0),
                OUT_SUCCESS,
                OUT_FAILURE,
            ),
            OUT_INCONCLUSIVE,
        )
        scr = task_code == TASK_SCRIPT
        outcome_code[scr] = np.where(
            script_sup[scr],
            np.where((status[scr] == 200) & has_response[scr], OUT_SUCCESS, OUT_FAILURE),
            OUT_INCONCLUSIVE,
        )

        submit_ok = ok  # a submission reaches the server iff its fetch succeeded

        # --- Row assembly: columnar ---------------------------------------
        # Rows are described by index arrays — which delivered visit, which
        # task-table entry, which slot — and everything repeated (task
        # attributes, per-visit client attributes, per-origin stripping)
        # stays in small value tables that the store expands by fancy-index.
        slot_cacheable = np.asarray(urls.cacheable, dtype=bool)[url_id]
        origins = self.deployment.origins
        family_names = [p.family.value for p in batch.browser_profiles]
        cache_visits = program.cache_visits

        task_ids: dict[int, int] = {}
        task_mids: list[str] = []
        task_types: list[TaskType] = []
        task_urls: list[URL] = []
        task_domains: list[str] = []

        def task_index(task: MeasurementTask) -> int:
            table_index = task_ids.get(id(task))
            if table_index is None:
                table_index = len(task_mids)
                task_ids[id(task)] = table_index
                task_mids.append(task.measurement_id)
                task_types.append(task.task_type)
                task_urls.append(task.target_url)
                task_domains.append(task.target_domain)
            return table_index

        delivered_visits: list[int] = []
        visit_rows: list[int] = []      #: delivered-visit position per row
        task_rows: list[int] = []
        main_rows: list[int] = []       #: target slot, or -1 for cache-aware rows
        submit_rows: list[int] = []
        override_rows: list[int] = []   #: index into the ov_* lists, or -1
        ov_outcome: list[int] = []
        ov_elapsed: list[float] = []
        ov_probe: list[float] = []
        ov_subok: list[bool] = []

        for index, entries in enumerate(program.visit_tasks):
            if not entries or not delivered[index]:
                continue
            position = len(delivered_visits)
            delivered_visits.append(index)
            if index in cache_visits:
                rows = self._cache_aware_rows(
                    entries, batch, index, draws, elapsed, ok, status,
                    has_response, is_block, url_id, slot_cacheable,
                    image_table, page_table, submit_ok,
                )
                for task, code, elapsed_total, probe_time, sub_ok in rows:
                    visit_rows.append(position)
                    task_rows.append(task_index(task))
                    main_rows.append(-1)
                    submit_rows.append(-1)
                    override_rows.append(len(ov_outcome))
                    ov_outcome.append(code)
                    ov_elapsed.append(elapsed_total)
                    ov_probe.append(np.nan if probe_time is None else probe_time)
                    ov_subok.append(sub_ok)
            else:
                for entry in entries:
                    visit_rows.append(position)
                    task_rows.append(task_index(entry.task))
                    main_rows.append(entry.main_slot)
                    submit_rows.append(entry.submit_slot)
                    override_rows.append(-1)

        if not visit_rows:
            return BatchOutcome([], 0, attempted, failed)

        pos_arr = np.asarray(visit_rows, dtype=np.int64)
        task_arr = np.asarray(task_rows, dtype=np.int64)
        main_arr = np.asarray(main_rows, dtype=np.int64)
        submit_arr = np.asarray(submit_rows, dtype=np.int64)
        over_arr = np.asarray(override_rows, dtype=np.int64)
        normal = over_arr < 0

        n_rows = len(pos_arr)
        out_rows = np.empty(n_rows, dtype=np.int64)
        elapsed_rows = np.empty(n_rows, dtype=np.float64)
        probe_rows = np.full(n_rows, np.nan)
        sub_rows = np.zeros(n_rows, dtype=bool)
        out_rows[normal] = outcome_code[main_arr[normal]]
        elapsed_rows[normal] = elapsed[main_arr[normal]]
        sub_rows[normal] = submit_ok[submit_arr[normal]]
        if ov_outcome:
            overridden = ~normal
            ov_idx = over_arr[overridden]
            out_rows[overridden] = np.asarray(ov_outcome, dtype=np.int64)[ov_idx]
            elapsed_rows[overridden] = np.asarray(ov_elapsed, dtype=np.float64)[ov_idx]
            probe_rows[overridden] = np.asarray(ov_probe, dtype=np.float64)[ov_idx]
            sub_rows[overridden] = np.asarray(ov_subok, dtype=bool)[ov_idx]

        # A submission reaches the server iff its fetch succeeded; the rest
        # are tallied as unreachable, exactly like the serial walk.
        unreachable = int(n_rows - np.count_nonzero(sub_rows))
        pos_arr = pos_arr[sub_rows]
        task_arr = task_arr[sub_rows]
        out_rows = out_rows[sub_rows]
        elapsed_rows = elapsed_rows[sub_rows]
        probe_rows = probe_rows[sub_rows]

        dv = np.asarray(delivered_visits, dtype=np.int64)
        origin_values = [
            None if origin.strips_referer else origin.domain for origin in origins
        ]
        columns = ColumnarRecords(
            measurement_id=DictColumn(task_mids, task_arr),
            task_type=DictColumn(task_types, task_arr),
            target_url=DictColumn(task_urls, task_arr),
            target_domain=DictColumn(task_domains, task_arr),
            outcome=DictColumn(_OUTCOMES, out_rows),
            elapsed_ms=elapsed_rows,
            probe_time_ms=probe_rows,
            client_ip=DictColumn(
                np.asarray(batch.ip_addresses, dtype=np.str_)[dv], pos_arr
            ),
            country_code=DictColumn(
                [batch.country_codes[v] for v in delivered_visits], pos_arr
            ),
            isp=DictColumn([batch.isp(v) for v in delivered_visits], pos_arr),
            browser_family=DictColumn(
                np.asarray(family_names, dtype=np.str_)[
                    np.asarray(batch.browser_indices, dtype=np.int64)[dv]
                ],
                pos_arr,
            ),
            origin_domain=DictColumn(
                origin_values, np.asarray(plan.origin_indices, dtype=np.int64)[dv][pos_arr]
            ),
            day=np.asarray(plan.days, dtype=np.int64)[dv][pos_arr],
            is_automated=np.asarray(batch.automated, dtype=bool)[dv][pos_arr],
        )
        return BatchOutcome(
            records=None,
            columns=columns,
            unreachable_submissions=unreachable,
            deliveries_attempted=attempted,
            deliveries_failed=failed,
        )

    # ------------------------------------------------------------------
    def _slot_verdicts(self, batch, visit: np.ndarray, url_id: np.ndarray):
        """(dns, tcp, http) code arrays for every slot via the verdict cache."""
        country_ids: dict[str, int] = {}
        codes: list[str] = []
        per_visit = np.empty(len(batch), dtype=np.int64)
        for index, code in enumerate(batch.country_codes):
            cid = country_ids.get(code)
            if cid is None:
                cid = len(codes)
                country_ids[code] = cid
                codes.append(code)
            per_visit[index] = cid
        n_urls = len(self.urls)
        keys = per_visit[visit] * n_urls + url_id
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        dns_u = np.empty(len(unique_keys), dtype=np.int8)
        tcp_u = np.empty(len(unique_keys), dtype=np.int8)
        http_u = np.empty(len(unique_keys), dtype=np.int8)
        for index, key in enumerate(unique_keys):
            country = codes[int(key) // n_urls]
            dns_c, tcp_c, http_c = self.verdicts.verdict(country, int(key) % n_urls)
            dns_u[index] = dns_c
            tcp_u[index] = tcp_c
            http_u[index] = http_c
        return dns_u[inverse], tcp_u[inverse], http_u[inverse]

    @staticmethod
    def _capability_arrays(batch):
        profiles = batch.browser_profiles
        reports = np.asarray([p.reports_image_events for p in profiles], dtype=bool)
        style = np.asarray([p.supports_computed_style_check for p in profiles], dtype=bool)
        script = np.asarray([p.supports_script_task for p in profiles], dtype=bool)
        idx = batch.browser_indices
        return reports[idx], style[idx], script[idx]

    # ------------------------------------------------------------------
    def _cache_aware_rows(
        self, entries, batch, index, draws, elapsed, ok, status,
        has_response, is_block, url_id, slot_cacheable, image_table,
        page_table, submit_ok,
    ):
        """Scalar walk for visits with within-visit cache interactions.

        Uses the vectorized pass's per-slot results as the no-cache baseline
        and overlays browser-cache hits in fetch order, exactly as the serial
        reference does.
        """
        profile = batch.browser(index)
        cached: set[int] = set()
        rows = []

        def slot_result(slot: int, use_cache: bool) -> _SlotResult:
            result = _SlotResult()
            uid = int(url_id[slot])
            if use_cache and uid in cached:
                result.from_cache = True
                result.elapsed = draws.cached_render_ms[slot]
                return result
            result.completed = bool(has_response[slot]) or bool(ok[slot])
            result.ok = bool(ok[slot])
            result.status = int(status[slot])
            result.has_response = bool(has_response[slot])
            result.is_block = bool(is_block[slot])
            result.elapsed = elapsed[slot]
            if result.ok and not result.is_block and slot_cacheable[slot]:
                cached.add(uid)
            return result

        urls = self.urls
        for entry in entries:
            task = entry.task
            probe_time = None
            if task.task_type is TaskType.INLINE_FRAME:
                page = slot_result(entry.main_slot, True)
                page_ok = page.from_cache or (
                    page.ok and not page.is_block
                    and bool(page_table[url_id[entry.main_slot]])
                )
                page_elapsed = page.elapsed
                if page_ok and not page.from_cache:
                    for embedded_slot in entry.embedded_slots:
                        embedded = slot_result(embedded_slot, True)
                        page_elapsed = page_elapsed + embedded.elapsed
                probe = slot_result(entry.probe_slot, True)
                probe_renders = (
                    probe.ok and not probe.is_block
                    and bool(image_table[url_id[entry.probe_slot]])
                )
                probe_error = (
                    not probe.from_cache
                    and profile.reports_image_events
                    and not probe_renders
                )
                probe_time = float(probe.elapsed)
                if probe_error:
                    code = OUT_FAILURE
                elif probe.elapsed <= CACHED_PROBE_THRESHOLD_MS:
                    code = OUT_SUCCESS
                else:
                    code = OUT_FAILURE
                elapsed_total = float(page_elapsed + probe.elapsed)
            else:
                load = slot_result(entry.main_slot, True)
                code = _scalar_task_outcome(
                    task.task_type, load, urls, int(url_id[entry.main_slot]), profile
                )
                elapsed_total = float(load.elapsed)
            rows.append(
                (task, code, elapsed_total, probe_time, bool(submit_ok[entry.submit_slot]))
            )
        return rows


# ----------------------------------------------------------------------
# Campaign sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRecord:
    """Summary of one campaign configuration inside a sweep."""

    seed: int
    country_code: str | None
    testbed_fraction: float
    visits: int
    measurements: int
    countries: int
    unreachable_submissions: int
    detected_pairs: frozenset
    duration_s: float

    @property
    def visits_per_second(self) -> float:
        return self.visits / self.duration_s if self.duration_s > 0 else float("inf")


class CampaignSweep:
    """Runs many campaign configurations against one shared :class:`World`.

    Building a world (sites, censors, population) dominates small-campaign
    runtime, so sweeping seeds × pinned countries × testbed fractions reuses
    a single world and restores its global interceptor list between
    deployments (each deployment attaches its own testbed censors).
    """

    def __init__(self, world=None, base_config=None, mode: str = "batch") -> None:
        from repro.core.pipeline import CampaignConfig
        from repro.population.world import World

        self.world = world or World()
        self.base_config = base_config or CampaignConfig()
        self.mode = mode

    def run(
        self,
        seeds: Iterable[int] = (0,),
        countries: Iterable[str | None] = (None,),
        testbed_fractions: Iterable[float | None] = (None,),
        visits: int | None = None,
    ) -> list[SweepRecord]:
        from repro.core.pipeline import EncoreDeployment

        records = []
        for seed in seeds:
            for country in countries:
                for fraction in testbed_fractions:
                    config = replace(
                        self.base_config,
                        seed=seed,
                        country_code=country,
                        testbed_fraction=(
                            fraction if fraction is not None
                            else self.base_config.testbed_fraction
                        ),
                        visits=visits if visits is not None else self.base_config.visits,
                    )
                    interceptors_before = list(self.world.global_interceptors)
                    started = monotonic()
                    try:
                        deployment = EncoreDeployment(self.world, config)
                        result = deployment.run_campaign(mode=self.mode)
                    finally:
                        self.world.global_interceptors[:] = interceptors_before
                    report = result.detect()
                    records.append(
                        SweepRecord(
                            seed=seed,
                            country_code=country,
                            testbed_fraction=config.testbed_fraction,
                            visits=result.visits_simulated,
                            measurements=len(result.collection),
                            countries=result.collection.distinct_countries(),
                            unreachable_submissions=result.collection.unreachable_submissions,
                            detected_pairs=frozenset(report.detected_pairs()),
                            duration_s=monotonic() - started,
                        )
                    )
        return records
