"""Measurement tasks: the four mechanisms of Table 1 and their execution.

A measurement task is a small, self-contained snippet that a client's browser
runs after rendering the origin page.  It attempts to load one cross-origin
resource from a measurement target and reports whether the load succeeded.
Four mechanisms are available, each with different applicability constraints
and feedback quality (paper §4.2–§4.3, Table 1):

* **Images** — embed with ``<img>``; ``onload``/``onerror`` give explicit
  feedback, but only image resources can be tested and tasks should keep them
  small.
* **Style sheets** — load the sheet and verify its effect via
  ``getComputedStyle``; only non-empty style sheets.
* **Inline frames** — load a whole page in a hidden iframe and then time the
  load of an image that page embeds; a fast (cached) load implies the page
  loaded.  Only pages with cacheable images, small pages, pages without side
  effects.
* **Scripts** — load any resource via ``<script>``; Chrome fires ``onload``
  iff the fetch returned HTTP 200, so this works only on Chrome and only for
  targets with strict MIME-type checking.
"""

from __future__ import annotations

import enum
import uuid
from dataclasses import dataclass, field

from repro.browser.engine import Browser
from repro.browser.events import LoadEvent
from repro.web.url import URL

#: An image that loads within this many milliseconds after its page was
#: rendered in an iframe is considered to have come from the browser cache
#: (paper §7.1, Fig. 7: cached images load within tens of milliseconds while
#: uncached loads take at least ~50 ms longer).
CACHED_PROBE_THRESHOLD_MS = 50.0


class TaskType(enum.Enum):
    """The four measurement mechanisms of Table 1."""

    IMAGE = "image"
    STYLE_SHEET = "style_sheet"
    INLINE_FRAME = "inline_frame"
    SCRIPT = "script"

    @property
    def gives_explicit_feedback(self) -> bool:
        """Image, style sheet, and script tasks give explicit binary feedback;
        the inline-frame task infers the outcome from timing (paper §7.1)."""
        return self is not TaskType.INLINE_FRAME

    @property
    def requires_chrome(self) -> bool:
        return self is TaskType.SCRIPT

    @property
    def tests_whole_pages(self) -> bool:
        """Whether the mechanism can test arbitrary Web pages rather than
        auxiliary resources."""
        return self in (TaskType.INLINE_FRAME, TaskType.SCRIPT)


class TaskOutcome(enum.Enum):
    """What a task reports back to the collection server."""

    SUCCESS = "success"
    FAILURE = "failure"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class MeasurementTask:
    """A concrete measurement task ready for delivery to a client.

    ``measurement_id`` links every submission of the same logical measurement
    (paper Appendix A); ``target_domain`` is the domain whose filtering the
    task measures, which is what the inference stage aggregates over.
    """

    measurement_id: str
    task_type: TaskType
    target_url: URL
    target_domain: str
    #: For inline-frame tasks: the cacheable image embedded by the target page
    #: whose load time is the success signal.
    probe_image_url: URL | None = None
    #: Rough number of bytes the task causes the client to transfer, used for
    #: the §6.3 overhead accounting.
    estimated_overhead_bytes: int = 0
    category: str = "uncategorised"

    def __post_init__(self) -> None:
        if self.task_type is TaskType.INLINE_FRAME and self.probe_image_url is None:
            raise ValueError("inline-frame tasks need a probe image URL")

    @classmethod
    def new(
        cls,
        task_type: TaskType,
        target_url: URL | str,
        probe_image_url: URL | str | None = None,
        estimated_overhead_bytes: int = 0,
        category: str = "uncategorised",
        measurement_id: str | None = None,
    ) -> "MeasurementTask":
        """Create a task with a fresh measurement ID."""
        url = target_url if isinstance(target_url, URL) else URL.parse(target_url)
        probe = (
            probe_image_url
            if isinstance(probe_image_url, URL) or probe_image_url is None
            else URL.parse(probe_image_url)
        )
        return cls(
            measurement_id=measurement_id or uuid.uuid4().hex,
            task_type=task_type,
            target_url=url,
            target_domain=url.domain,
            probe_image_url=probe,
            estimated_overhead_bytes=estimated_overhead_bytes,
            category=category,
        )

    def runnable_by(self, browser_profile) -> bool:
        """Whether a client with ``browser_profile`` can run this task."""
        if not browser_profile.javascript_enabled:
            return False
        if self.task_type is TaskType.SCRIPT:
            return browser_profile.supports_script_task
        if self.task_type is TaskType.STYLE_SHEET:
            return browser_profile.supports_computed_style_check
        return True


@dataclass(frozen=True)
class TaskResult:
    """The result a client submits after running a task."""

    measurement_id: str
    task_type: TaskType
    target_url: URL
    target_domain: str
    outcome: TaskOutcome
    elapsed_ms: float
    #: For inline-frame tasks, the probe image's observed load time.
    probe_time_ms: float | None = None
    detail: str = ""

    @property
    def succeeded(self) -> bool:
        return self.outcome is TaskOutcome.SUCCESS

    @property
    def failed(self) -> bool:
        return self.outcome is TaskOutcome.FAILURE


# ----------------------------------------------------------------------
# Task execution
# ----------------------------------------------------------------------
def _execute_image(task: MeasurementTask, browser: Browser) -> TaskResult:
    load = browser.load_image(task.target_url)
    if load.event is LoadEvent.NONE:
        outcome = TaskOutcome.INCONCLUSIVE
    else:
        outcome = TaskOutcome.SUCCESS if load.succeeded else TaskOutcome.FAILURE
    return TaskResult(
        measurement_id=task.measurement_id,
        task_type=task.task_type,
        target_url=task.target_url,
        target_domain=task.target_domain,
        outcome=outcome,
        elapsed_ms=load.elapsed_ms,
        detail="from_cache" if load.from_cache else "",
    )


def _execute_stylesheet(task: MeasurementTask, browser: Browser) -> TaskResult:
    load = browser.load_stylesheet(task.target_url)
    if not load.conclusive:
        outcome = TaskOutcome.INCONCLUSIVE
    else:
        outcome = TaskOutcome.SUCCESS if load.applied else TaskOutcome.FAILURE
    return TaskResult(
        measurement_id=task.measurement_id,
        task_type=task.task_type,
        target_url=task.target_url,
        target_domain=task.target_domain,
        outcome=outcome,
        elapsed_ms=load.elapsed_ms,
    )


def _execute_script(task: MeasurementTask, browser: Browser) -> TaskResult:
    if not browser.profile.supports_script_task:
        # The scheduler should never send a script task to a non-Chrome
        # client; if it happens anyway, report an inconclusive result rather
        # than risking arbitrary execution semantics.
        return TaskResult(
            measurement_id=task.measurement_id,
            task_type=task.task_type,
            target_url=task.target_url,
            target_domain=task.target_domain,
            outcome=TaskOutcome.INCONCLUSIVE,
            elapsed_ms=0.0,
            detail="browser_unsupported",
        )
    load = browser.load_script(task.target_url)
    outcome = TaskOutcome.SUCCESS if load.succeeded else TaskOutcome.FAILURE
    return TaskResult(
        measurement_id=task.measurement_id,
        task_type=task.task_type,
        target_url=task.target_url,
        target_domain=task.target_domain,
        outcome=outcome,
        elapsed_ms=load.elapsed_ms,
    )


def _execute_inline_frame(
    task: MeasurementTask, browser: Browser, cached_threshold_ms: float
) -> TaskResult:
    probe = browser.iframe_probe(task.target_url, task.probe_image_url)
    if probe.probe_event is LoadEvent.ERROR:
        # The probe image itself failed to load; we cannot tell whether the
        # page was filtered or the image is simply unreachable.
        outcome = TaskOutcome.FAILURE
        detail = "probe_error"
    elif probe.probe_time_ms <= cached_threshold_ms:
        outcome = TaskOutcome.SUCCESS
        detail = "probe_cached"
    else:
        outcome = TaskOutcome.FAILURE
        detail = "probe_uncached"
    return TaskResult(
        measurement_id=task.measurement_id,
        task_type=task.task_type,
        target_url=task.target_url,
        target_domain=task.target_domain,
        outcome=outcome,
        elapsed_ms=probe.iframe_elapsed_ms + probe.probe_time_ms,
        probe_time_ms=probe.probe_time_ms,
        detail=detail,
    )


def execute_task(
    task: MeasurementTask,
    browser: Browser,
    cached_threshold_ms: float = CACHED_PROBE_THRESHOLD_MS,
) -> TaskResult:
    """Run ``task`` inside ``browser`` and return the result it would submit."""
    if task.task_type is TaskType.IMAGE:
        return _execute_image(task, browser)
    if task.task_type is TaskType.STYLE_SHEET:
        return _execute_stylesheet(task, browser)
    if task.task_type is TaskType.SCRIPT:
        return _execute_script(task, browser)
    if task.task_type is TaskType.INLINE_FRAME:
        return _execute_inline_frame(task, browser, cached_threshold_ms)
    raise ValueError(f"unknown task type {task.task_type!r}")


# ----------------------------------------------------------------------
# Client-side code generation (what the coordination server actually serves)
# ----------------------------------------------------------------------
def origin_embed_html(coordination_url: URL | str) -> str:
    """The one-line snippet a webmaster adds to their page (paper §5.4).

    The prototype "adds only 100 bytes to each origin page and requires no
    additional requests or connections between the client and the origin
    server" (§6.3).
    """
    url = coordination_url if isinstance(coordination_url, URL) else URL.parse(coordination_url)
    return f'<script src="//{url.host}{url.path}" async></script>'


def measurement_snippet_js(task: MeasurementTask, collection_url: URL | str) -> str:
    """JavaScript for ``task``, in the style of the paper's Appendix A.

    The coordination server would minify and obfuscate this before serving
    it; the readable form is what the tests assert against.
    """
    collector = (
        collection_url if isinstance(collection_url, URL) else URL.parse(collection_url)
    )
    submit = (
        f"function submit(state) {{\n"
        f"  $.ajax({{url: '//{collector.host}{collector.path}"
        f"?cmh-id={task.measurement_id}&cmh-result=' + state}});\n"
        f"}}"
    )
    target = f"//{task.target_url.host}{task.target_url.path}"
    if task.task_type is TaskType.IMAGE:
        body = (
            f"var img = $('<img>');\n"
            f"img.attr('src', '{target}');\n"
            f"img.style('display', 'none');\n"
            f"img.on('load', function() {{ submit('success'); }});\n"
            f"img.on('error', function() {{ submit('failure'); }});\n"
            f"img.appendTo('html');"
        )
    elif task.task_type is TaskType.STYLE_SHEET:
        body = (
            f"var frame = hiddenIframe();\n"
            f"loadStylesheet(frame, '{target}');\n"
            f"checkComputedStyle(frame, function(applied) {{\n"
            f"  submit(applied ? 'success' : 'failure');\n"
            f"}});"
        )
    elif task.task_type is TaskType.SCRIPT:
        body = (
            f"var script = $('<script>');\n"
            f"script.attr('src', '{target}');\n"
            f"script.on('load', function() {{ submit('success'); }});\n"
            f"script.on('error', function() {{ submit('failure'); }});\n"
            f"script.appendTo('html');"
        )
    else:
        probe = f"//{task.probe_image_url.host}{task.probe_image_url.path}"
        body = (
            f"var frame = hiddenIframe();\n"
            f"frame.attr('src', '{target}');\n"
            f"frame.on('load', function() {{\n"
            f"  timeImageLoad('{probe}', function(elapsedMs) {{\n"
            f"    submit(elapsedMs <= {CACHED_PROBE_THRESHOLD_MS} ? 'success' : 'failure');\n"
            f"  }});\n"
            f"}});"
        )
    return (
        f"// Encore measurement task {task.measurement_id}\n"
        f"{submit}\n"
        f"submit('init');\n"
        f"{body}\n"
    )
