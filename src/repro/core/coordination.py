"""The coordination server (paper §5.4).

Origin pages reference a script hosted on the coordination server; when a
client renders the page, its browser fetches that script, which contains the
measurement task the scheduler picked for this client.  Because the censor
may block the coordination server itself (the second adversary capability of
§3.1), task delivery is modelled as a real fetch through the client's network
path: a client that cannot reach the coordination domain simply contributes
no measurements.

The server can also be mirrored across several domains, which raises the
collateral damage of blocking it (paper §8); delivery succeeds if any mirror
is reachable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.engine import Browser
from repro.core.scheduler import ScheduleDecision, Scheduler
from repro.core.tasks import MeasurementTask, measurement_snippet_js
from repro.population.clients import Client
from repro.web.url import URL


@dataclass
class DeliveryRecord:
    """Bookkeeping about one attempted task delivery."""

    client: Client
    reachable: bool
    mirror_used: str | None
    tasks_delivered: int


class CoordinationServer:
    """Generates and delivers measurement tasks to clients."""

    def __init__(
        self,
        scheduler: Scheduler,
        task_url: URL | str,
        collection_url: URL | str,
        mirror_urls: list[URL | str] | None = None,
    ) -> None:
        self.scheduler = scheduler
        self.task_url = task_url if isinstance(task_url, URL) else URL.parse(task_url)
        self.collection_url = (
            collection_url if isinstance(collection_url, URL) else URL.parse(collection_url)
        )
        self.mirrors: list[URL] = [
            url if isinstance(url, URL) else URL.parse(url) for url in (mirror_urls or [])
        ]
        self.delivery_log: list[DeliveryRecord] = []
        #: Aggregate counters maintained by the batched campaign runner, which
        #: skips per-visit :class:`DeliveryRecord` objects for throughput.
        self.batched_deliveries_attempted = 0
        self.batched_deliveries_failed = 0

    # ------------------------------------------------------------------
    @property
    def all_delivery_urls(self) -> list[URL]:
        return [self.task_url] + self.mirrors

    def _reachable_mirror(self, browser: Browser) -> URL | None:
        """The first delivery URL the client can actually fetch, if any."""
        for url in self.all_delivery_urls:
            outcome, from_cache, _ = browser.fetch(url, use_cache=False)
            if from_cache or (outcome is not None and outcome.succeeded_with_content):
                return url
        return None

    # ------------------------------------------------------------------
    def deliver(self, client: Client, browser: Browser) -> ScheduleDecision:
        """Deliver tasks to ``client``: schedule, then fetch the task script.

        Returns the scheduling decision with an empty task list if the client
        cannot reach any delivery URL (or was never going to run a task).
        """
        decision = self.scheduler.schedule(client)
        if not decision.tasks:
            self.delivery_log.append(
                DeliveryRecord(client=client, reachable=True, mirror_used=None, tasks_delivered=0)
            )
            return decision
        mirror = self._reachable_mirror(browser)
        if mirror is None:
            # The censor (or an outage) blocked access to every delivery URL;
            # the client runs nothing.
            self.delivery_log.append(
                DeliveryRecord(client=client, reachable=False, mirror_used=None, tasks_delivered=0)
            )
            decision.tasks = []
            return decision
        self.delivery_log.append(
            DeliveryRecord(
                client=client,
                reachable=True,
                mirror_used=str(mirror),
                tasks_delivered=len(decision.tasks),
            )
        )
        return decision

    def render_task_script(self, tasks: list[MeasurementTask]) -> str:
        """The JavaScript the server would send for ``tasks`` (Appendix A style)."""
        return "\n".join(measurement_snippet_js(task, self.collection_url) for task in tasks)

    # ------------------------------------------------------------------
    def note_batch_deliveries(self, attempted: int, failed: int) -> None:
        """Fold a batch of delivery outcomes into the aggregate counters.

        ``attempted`` counts visits whose schedule produced tasks (the only
        visits that fetch the task script); ``failed`` the subset that could
        not reach any delivery URL — the same population the per-visit
        :attr:`delivery_log` bookkeeping considers.
        """
        if failed > attempted or attempted < 0 or failed < 0:
            raise ValueError("invalid delivery counts")
        self.batched_deliveries_attempted += attempted
        self.batched_deliveries_failed += failed

    @property
    def delivery_failure_rate(self) -> float:
        """Fraction of deliveries that failed because the server was unreachable."""
        attempted = [r for r in self.delivery_log if r.tasks_delivered > 0 or not r.reachable]
        total = len(attempted) + self.batched_deliveries_attempted
        if not total:
            return 0.0
        failures = sum(1 for r in attempted if not r.reachable) + self.batched_deliveries_failed
        return failures / total
