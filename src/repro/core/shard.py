"""Sharded multi-process campaign execution: worker pool + store merging.

The paper's deployment collected measurements from millions of browsers in
parallel; the reproduction's vectorized runner and columnar store are fast
but, on their own, capped by one core and one address space.  This module
runs one campaign across N worker processes and merges the results into a
single coherent :class:`~repro.core.store.MeasurementStore`:

1. **Plan.**  A :class:`ShardPlanner` deterministically partitions the
   campaign's planning blocks (the fixed-size units whose randomness derives
   from ``(seed, epoch, block_index)`` alone — see :mod:`repro.core.runner`)
   round-robin across shards.  Because every block is a pure function of the
   campaign key, the union of any shard partition's outputs is bit-identical
   to the single-process ``mode="batch"`` campaign, for any shard count.
2. **Execute.**  Each worker (:func:`shard_worker` — forked when the
   platform allows, rebuilt from the pickled configs otherwise, or run
   inline for tests) drives the vectorized ``BatchExecutor`` over its
   blocks, ingesting into a private collection server whose store seals and
   spills one ``.npz`` segment per block into the worker's shard directory.
   No measurement row ever crosses a process boundary: the only thing a
   worker sends back is the path of its JSON **manifest** — segment paths,
   dictionary value tables, and counters — written atomically as the
   shard's commit marker, which doubles as a crash-resume checkpoint.
3. **Merge.**  A :class:`StoreMerger` mounts every worker's segments into
   the deployment's store by *segment adoption*: the files stay where they
   are, dictionary codes are reconciled through per-shard translation
   arrays applied lazily at read time, and blocks are adopted in campaign
   order — so the merged store's rows come back in exactly the order the
   single-process campaign would have appended them.

``EncoreDeployment.run_campaign(mode="sharded")`` is the front door;
``CampaignConfig.num_shards`` / ``worker_spill_dir`` / ``shard_executor``
configure it.  Re-running a sharded campaign with the same
``worker_spill_dir`` adopts the manifests of shards that already completed
and re-executes only the missing ones (the crash-resume path).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import weakref
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

import multiprocessing

import numpy as np

from repro.core.collection import CollectionServer
from repro.core.runner import CampaignRunner
from repro.core.store import MeasurementStore
from repro.obs.clock import monotonic
from repro.obs.trace import NULL_TRACER, TRACE_FILENAME, Tracer, progress_listener
from repro.web.url import URL

MANIFEST_NAME = "manifest.json"
CAMPAIGN_FILE_NAME = "campaign.json"

#: Cap on the *default* worker count.  Past this, fan-out wins little for
#: Encore-sized campaigns while multiplying per-worker world-build memory;
#: an explicit ``num_shards`` is never capped.
MAX_DEFAULT_SHARDS = 16


def available_cpu_count() -> int:
    """CPUs actually usable by this process, not merely present in the box.

    On Linux the scheduler affinity mask reflects cgroup/NUMA/taskset
    restrictions (a container pinned to one node of a big machine should
    not fork one worker per physical core), so it is preferred over
    ``os.cpu_count()``; platforms without affinity fall back.  Always ≥ 1.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return max(1, os.cpu_count() or 1)


def default_num_shards(block_count: int) -> int:
    """The worker count used when ``CampaignConfig.num_shards`` is unset.

    The available-CPU count (affinity-aware), capped by the number of
    planning blocks (extra workers would receive empty assignments) and by
    :data:`MAX_DEFAULT_SHARDS`, never below 1.
    """
    return max(1, min(available_cpu_count(), MAX_DEFAULT_SHARDS, max(1, block_count)))


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardAssignment:
    """The planning blocks one worker executes."""

    shard_index: int
    num_shards: int
    block_indices: tuple[int, ...]

    @property
    def directory_name(self) -> str:
        # The partition is part of the name: re-running one campaign with a
        # different shard count writes (and, for manifest-less shards,
        # clears) its own directories, never the old partition's — whose
        # segments an earlier merged store may still read lazily.
        return f"shard-{self.shard_index:03d}-of{self.num_shards:03d}"


class ShardPlanner:
    """Partitions a campaign's planning blocks into seed-stable shards.

    Blocks are dealt round-robin (shard ``s`` gets blocks ``s``, ``s + N``,
    ``s + 2N``, …) so shard workloads stay balanced even when measurement
    density drifts across the campaign.  The partition depends only on
    ``(visits, plan_block_visits, num_shards)`` — no RNG — and shards whose
    slice is empty (more workers than blocks) are simply dropped.
    """

    def __init__(self, visits: int, plan_block_visits: int, num_shards: int) -> None:
        if visits < 0:
            raise ValueError("visits must be non-negative")
        if plan_block_visits < 1:
            raise ValueError("plan_block_visits must be positive")
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        self.visits = visits
        self.plan_block_visits = plan_block_visits
        self.num_shards = num_shards

    @property
    def block_count(self) -> int:
        return (self.visits + self.plan_block_visits - 1) // self.plan_block_visits

    def plan(self) -> list[ShardAssignment]:
        """Non-empty shard assignments covering every block exactly once."""
        blocks = self.block_count
        assignments = []
        for shard in range(self.num_shards):
            indices = tuple(range(shard, blocks, self.num_shards))
            if indices:
                assignments.append(
                    ShardAssignment(
                        shard_index=shard,
                        num_shards=self.num_shards,
                        block_indices=indices,
                    )
                )
        return assignments


@dataclass(frozen=True)
class ShardProgress:
    """Progress information passed to the hook as each shard completes.

    The sharded sibling of :class:`~repro.core.runner.BatchProgress`:
    ``shard_index`` identifies the finished shard, the ``*_completed``
    fields accumulate across finished shards, and ``resumed`` marks shards
    adopted from an existing manifest instead of re-executed.
    """

    shard_index: int
    shard_count: int
    shards_completed: int
    blocks_completed: int
    blocks_total: int
    visits_completed: int
    visits_total: int
    measurements_added: int
    measurements_total: int
    duration_s: float
    resumed: bool = False


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def campaign_signature(deployment, epoch: int, visits: int, visit_base: int = 0) -> dict:
    """What a manifest must match to belong to this campaign run.

    Covers everything that shapes campaign *content* — the full world
    config and every campaign-config field except runtime-only knobs
    (executor kind, spill locations, memory bounds, shard count) — so a
    manifest from a materially different campaign sharing the same seed is
    rejected rather than silently adopted.  The shard count is deliberately
    *not* part of the signature: it shapes the partition, not the campaign,
    and per-shard ``block_indices`` checks already reject manifests cut for
    a different partition.  JSON round-tripped so the in-memory form
    compares equal to what comes back off disk.
    """
    from dataclasses import asdict

    config = deployment.config
    campaign = asdict(config)
    for runtime_only in (
        "mode", "batch_size", "max_rows_in_memory", "spill_dir",
        "num_shards", "worker_spill_dir", "shard_executor",
    ):
        campaign.pop(runtime_only, None)
    signature = {
        "epoch": epoch,
        "visits": visits,
        "visit_base": visit_base,
        "campaign": campaign,
        "world": asdict(deployment.world.config),
        "mode": "batch",
    }
    return json.loads(json.dumps(signature))


def campaign_directory_name(signature: dict) -> str:
    """The spill-root subdirectory one campaign's shards live under.

    Keyed by the signature digest, so different campaigns (different seeds,
    epochs, configs) sharing one ``worker_spill_dir`` never touch each
    other's directories — in particular, re-executing a shard of campaign B
    can never delete segment files that campaign A's merged store still
    reads lazily.
    """
    digest = hashlib.sha1(
        json.dumps(signature, sort_keys=True).encode()
    ).hexdigest()[:10]
    return f"campaign-{signature['epoch']:02d}-{digest}"


def execute_shard(
    deployment,
    assignment: ShardAssignment,
    epoch: int,
    visits: int,
    shard_dir: str | Path,
    signature: dict,
    visit_base: int = 0,
    trace: bool = False,
) -> dict:
    """Run one shard's blocks and seal the results under ``shard_dir``.

    Every block is executed with the vectorized ``BatchExecutor`` and
    ingested into a shard-private collection server; after each block the
    store spills, so each block becomes exactly one ``.npz`` segment on
    disk.  The manifest — segment paths, value tables, counters — is
    written last via an atomic rename (and returned): its presence is the
    shard's commit marker, and a worker killed mid-shard leaves no manifest
    and is simply re-executed on resume.

    With ``trace`` on, the shard writes its own span stream next to its
    segments; ``run_sharded`` absorbs it into the campaign trace after the
    manifest commits (or salvages it, aborted, after a kill).
    """
    shard_dir = Path(shard_dir)
    if shard_dir.exists():
        # A shard only (re)executes when it has no valid manifest, so
        # whatever sits here is a dead attempt's partial output; clear it
        # rather than letting orphaned segments pile up across retries.
        shutil.rmtree(shard_dir)
    shard_dir.mkdir(parents=True, exist_ok=True)
    tracer = Tracer(shard_dir / TRACE_FILENAME) if trace else NULL_TRACER
    store = MeasurementStore(spill_dir=shard_dir)
    collection = CollectionServer(
        deployment.collection.submit_url,
        geoip=deployment.world.geoip,
        store=store,
    )
    runner = CampaignRunner(deployment, mode="batch", tracer=tracer)
    ctx = runner.plan_context(visits, epoch, visit_base)
    started = monotonic()
    blocks = []
    deliveries_attempted = 0
    deliveries_failed = 0
    with tracer.span(
        "shard.execute",
        shard=assignment.shard_index,
        blocks=len(assignment.block_indices),
    ):
        for block_index in assignment.block_indices:
            segments_before = len(store.segment_files)
            execution = runner.execute_block(ctx, block_index, collection)
            with tracer.span("seal", block=block_index):
                store.spill()
            new_segments = store.segment_files[segments_before:]
            deliveries_attempted += execution.deliveries_attempted
            deliveries_failed += execution.deliveries_failed
            blocks.append(
                {
                    "block": block_index,
                    "visits": execution.visits,
                    "rows": execution.stored,
                    "segments": [
                        {"path": str(path), "rows": rows}
                        for path, rows in segment_row_counts(
                            new_segments, execution.stored
                        )
                    ],
                }
            )
    manifest = {
        "signature": signature,
        "shard_index": assignment.shard_index,
        "num_shards": assignment.num_shards,
        "block_indices": list(assignment.block_indices),
        "blocks": blocks,
        "value_tables": serialize_value_tables(store.value_tables()),
        "counters": {
            "stored": len(store),
            "unreachable_submissions": collection.unreachable_submissions,
            "deliveries_attempted": deliveries_attempted,
            "deliveries_failed": deliveries_failed,
        },
        "assignment_counts": ctx.assignment_counts,
        "duration_s": monotonic() - started,
    }
    with tracer.span("manifest", shard=assignment.shard_index):
        write_manifest(shard_dir, manifest)
    tracer.record_metrics(scope=f"shard-{assignment.shard_index:03d}")
    tracer.close()
    return manifest


def serialize_value_tables(tables: dict[str, list]) -> dict[str, list]:
    """A store's dictionary value tables in JSON form (URLs as strings)."""
    return {
        kind: ([str(url) for url in values] if kind == "url" else values)
        for kind, values in tables.items()
    }


def write_json_atomic(path: str | Path, payload: dict) -> Path:
    """Write ``payload`` as JSON via scratch file + fsync + rename.

    The rename is what makes the file's *presence* trustworthy as a commit
    marker: a process killed mid-write leaves only the ``.tmp`` scratch,
    which readers ignore (and which the next write reclaims).  The scratch
    is fsynced before the rename — and the directory entry after it — so
    the committed file survives power loss, not just process death.  Shard
    manifests, campaign files, and the longitudinal monitor's resume
    markers all go through here; repro-lint's ``atomic-json-write`` rule
    keeps it that way.
    """
    path = Path(path)
    scratch = path.with_suffix(".tmp")
    encoded = json.dumps(payload, indent=1)
    try:
        with open(scratch, "w") as handle:
            handle.write(encoded)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(scratch, path)
    except BaseException:
        try:
            os.unlink(scratch)
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


def _fsync_directory(directory: Path) -> None:
    """Flush a rename's directory entry; best-effort off POSIX."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic/readonly platforms
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def write_manifest(shard_dir: str | Path, manifest: dict) -> Path:
    """Atomically write ``manifest`` as ``shard_dir``'s commit marker.

    A worker killed mid-write leaves no manifest, so partial output is
    re-executed instead of adopted.
    """
    return write_json_atomic(Path(shard_dir) / MANIFEST_NAME, manifest)


def read_manifest(path: str | Path) -> dict | None:
    """The manifest at ``path``, or ``None`` if missing or unparseable."""
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError):
        return None


def manifest_segments_exist(manifest: dict) -> bool:
    """Whether every segment file a manifest references is still on disk."""
    for block in manifest.get("blocks", ()):
        for segment in block["segments"]:
            if not Path(segment["path"]).is_file():
                return False
    return True


def segment_row_counts(paths: Sequence[Path], total_rows: int):
    """Pair each new segment with its row count (one segment per block in
    the normal flow; lengths are read back only in the defensive case)."""
    if not paths:
        return []
    if len(paths) == 1:
        return [(paths[0], total_rows)]
    pairs = []
    for path in paths:
        with np.load(path) as data:
            pairs.append((path, int(len(data["day"]))))
    return pairs


#: Deployment inherited by forked worker processes.  Set by the parent just
#: before the pool is created (fork children see it through copy-on-write
#: memory); workers fall back to rebuilding the deployment from the pickled
#: configs when the platform cannot fork.
_FORK_DEPLOYMENT = None


def _adopt_task_ids(deployment, task_ids: Sequence[str]) -> None:
    """Give a rebuilt deployment the parent deployment's measurement ids.

    Rebuilding from the pickled configs regenerates the same tasks in the
    same order, but ``MeasurementTask.new`` draws fresh uuid4 ids — which
    would leave each worker's ``measurement_id`` column (and its scheduling
    counts) speaking a different dialect than the parent's.  Replacing every
    task with an id-adopted copy, position for position, restores the
    cross-process id space the fork path gets for free.
    """
    from dataclasses import replace

    pools = deployment.scheduler.pools
    flat = [task for pool in pools for task in pool.tasks]
    if len(flat) != len(task_ids):
        raise ValueError(
            f"rebuilt deployment generated {len(flat)} tasks but the parent "
            f"shipped {len(task_ids)} ids; world/campaign configs must match"
        )
    adopted: dict[int, object] = {}
    for task, measurement_id in zip(flat, task_ids):
        if id(task) not in adopted:
            adopted[id(task)] = replace(task, measurement_id=measurement_id)
    for pool in pools:
        pool.tasks[:] = [adopted[id(task)] for task in pool.tasks]
    deployment.target_tasks[:] = [
        adopted.get(id(task), task) for task in deployment.target_tasks
    ]
    deployment.testbed_tasks[:] = [
        adopted.get(id(task), task) for task in deployment.testbed_tasks
    ]


def shard_worker(payload: dict) -> str:
    """Process-pool entrypoint: run one shard, return its manifest path."""
    deployment = _FORK_DEPLOYMENT
    if deployment is None:
        from repro.core.pipeline import EncoreDeployment
        from repro.population.world import World

        world = World(payload["world_config"])
        deployment = EncoreDeployment(world, payload["campaign_config"])
        _adopt_task_ids(deployment, payload["task_ids"])
    execute_shard(
        deployment,
        payload["assignment"],
        payload["epoch"],
        payload["visits"],
        payload["shard_dir"],
        payload["signature"],
        payload["visit_base"],
        trace=payload.get("trace", False),
    )
    # Only the path crosses the process boundary; the parent re-reads the
    # committed manifest (never measurement rows) off disk.
    return str(Path(payload["shard_dir"]) / MANIFEST_NAME)


# ----------------------------------------------------------------------
# Merge side
# ----------------------------------------------------------------------
class StoreMerger:
    """Mounts shard manifests into one store by segment adoption.

    Nothing is re-copied: each worker's ``.npz`` segments are adopted in
    place, and the workers' dictionary codes are reconciled against the
    target store's value tables through per-shard translation arrays
    (:meth:`MeasurementStore.merge_value_table`) applied lazily at column
    read time.  Adopting blocks in campaign order makes the merged store's
    row order identical to the single-process campaign's.
    """

    #: Manifest value-table kinds that need parsing back into objects.
    _PARSERS: dict[str, Callable] = {"url": URL.parse}

    def __init__(self, store: MeasurementStore) -> None:
        self.store = store

    def remap_for(self, manifest: dict) -> dict[str, np.ndarray]:
        """Code-translation arrays folding one manifest's tables into the store."""
        remap = {}
        for kind, values in manifest["value_tables"].items():
            parser = self._PARSERS.get(kind)
            if parser is not None:
                values = [parser(value) for value in values]
            remap[kind] = self.store.merge_value_table(kind, values)
        return remap

    def merge(self, manifests: Sequence[dict]) -> int:
        """Adopt every manifest's segments, in campaign (block) order."""
        remaps = {m["shard_index"]: self.remap_for(m) for m in manifests}
        entries = [
            (block["block"], block, m["shard_index"])
            for m in manifests
            for block in m["blocks"]
        ]
        entries.sort(key=lambda entry: entry[0])
        adopted = 0
        for _, block, shard_index in entries:
            for segment in block["segments"]:
                self.store.adopt_spilled_segment(
                    segment["path"], segment["rows"], remap=remaps[shard_index]
                )
                adopted += segment["rows"]
        return adopted


def _pool_task_ids(deployment) -> list[str]:
    """Every task's measurement id, in pool order (the cross-process id space)."""
    return [
        task.measurement_id
        for pool in deployment.scheduler.pools
        for task in pool.tasks
    ]


def establish_campaign_state(
    deployment, campaign_root: Path, signature: dict,
    requested_num_shards: int | None, block_count: int = 0,
) -> int:
    """Pin the campaign's cross-restart state; return the shard count to use.

    Two things must survive a process restart for crash resume to be sound:

    * **The measurement-id space.**  Task ids are uuid4-per-deployment, so
      a resumed run in a fresh process would otherwise adopt surviving
      manifests (written under the dead process's ids) while re-executing
      missing shards under new ids — splitting every task's rows across two
      id spaces.  The first run writes its id list to the campaign file; a
      matching resume adopts those ids into the current deployment *before*
      any worker starts.
    * **The shard partition.**  With ``num_shards`` unconfigured it falls
      back to :func:`default_num_shards` (affinity-aware CPUs, capped by
      ``block_count``), which may differ on the resuming host; reusing the
      recorded count keeps the old manifests adoptable instead of silently
      re-executing the whole campaign.  An *explicitly* requested count
      wins (the old manifests are then rejected by their ``block_indices``,
      which is safe, just not a cache hit).
    """
    path = campaign_root / CAMPAIGN_FILE_NAME
    current_ids = _pool_task_ids(deployment)
    stored = None
    if path.is_file():
        try:
            candidate = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            candidate = None
        if (
            candidate is not None
            and candidate.get("signature") == signature
            and len(candidate.get("task_ids", ())) == len(current_ids)
        ):
            stored = candidate
    if stored is not None:
        if stored["task_ids"] != current_ids:
            _adopt_task_ids(deployment, stored["task_ids"])
        stored_shards = stored.get("num_shards")
        if requested_num_shards is None:
            if stored_shards:
                return int(stored_shards)
        elif requested_num_shards == stored_shards:
            return requested_num_shards
        current_ids = stored["task_ids"]
    num_shards = (
        requested_num_shards
        if requested_num_shards is not None
        else default_num_shards(block_count)
    )
    write_json_atomic(
        path,
        {"signature": signature, "task_ids": current_ids, "num_shards": num_shards},
    )
    return num_shards


def load_manifest(
    shard_dir: Path, signature: dict, assignment: ShardAssignment
) -> dict | None:
    """The shard's manifest, if it exists and belongs to this campaign run.

    A manifest from a different campaign (seed, epoch, visit count, shard
    layout…) or one whose segment files have gone missing is ignored, which
    makes a stale ``worker_spill_dir`` merely a cache miss, never silent
    corruption.
    """
    manifest = read_manifest(shard_dir / MANIFEST_NAME)
    if manifest is None:
        return None
    if manifest.get("signature") != signature:
        return None
    if manifest.get("block_indices") != list(assignment.block_indices):
        return None
    if not manifest_segments_exist(manifest):
        return None
    return manifest


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
def run_sharded(
    deployment,
    visits: int | None = None,
    num_shards: int | None = None,
    worker_spill_dir: str | Path | None = None,
    shard_executor: str | None = None,
    progress: Callable[[ShardProgress], None] | None = None,
    tracer=None,
):
    """Run one campaign across worker processes; return a ``CampaignResult``.

    The parent plans the shard partition, launches workers (skipping shards
    whose manifest already sits in ``worker_spill_dir`` — the crash-resume
    path), merges every worker's spilled segments into the deployment's
    collection store by adoption, and folds the workers' delivery /
    scheduling / unreachable counters back so the deployment looks exactly
    as if the campaign had run in-process.

    Inside ``worker_spill_dir`` each campaign owns a signature-keyed
    subdirectory (so one spill root is safely shareable across campaigns
    and deployments), holding the shard directories plus the campaign file
    that pins the run's measurement-id space across process restarts.  With
    no directory configured, a temporary root is used and reclaimed when
    the merged store is garbage-collected (or at interpreter exit).
    """
    from repro.core.pipeline import CampaignResult  # local: avoids a cycle

    tracer = tracer if tracer is not None else NULL_TRACER
    config = deployment.config
    visits = visits if visits is not None else config.visits
    executor_kind = shard_executor or config.shard_executor
    if executor_kind not in ("process", "inline"):
        raise ValueError(f"unknown shard executor {executor_kind!r}")
    requested_num_shards = num_shards if num_shards is not None else config.num_shards
    epoch = deployment.next_campaign_epoch()
    visit_base = deployment.claim_visit_range(visits)
    signature = campaign_signature(deployment, epoch, visits, visit_base)
    spill_root = worker_spill_dir or config.worker_spill_dir
    temporary_root = spill_root is None
    if temporary_root:
        spill_root = tempfile.mkdtemp(prefix="encore-shards-")
    # Every campaign gets its own signature-keyed subdirectory, so spill
    # roots are safely shareable across campaigns and deployments.
    campaign_root = Path(spill_root) / campaign_directory_name(signature)
    campaign_root.mkdir(parents=True, exist_ok=True)
    if temporary_root:
        # The merged store reads the adopted segments lazily for as long as
        # it lives; reclaim the unnamed temp root when the store goes away
        # (or at interpreter exit) instead of leaking a campaign per run.
        weakref.finalize(
            deployment.collection.store, shutil.rmtree, str(spill_root), True
        )
    # Pin the cross-restart state first: a resume must speak the original
    # run's measurement ids and (unless overridden) its shard partition.
    block_count = ShardPlanner(visits, config.plan_block_visits, 1).block_count
    num_shards = establish_campaign_state(
        deployment, campaign_root, signature, requested_num_shards, block_count
    )
    planner = ShardPlanner(visits, config.plan_block_visits, num_shards)
    assignments = planner.plan()

    started = monotonic()
    # Progress and telemetry share one code path: shard completions are
    # "shard" events on the tracer's stream, and the legacy callback rides
    # them as a listener (NullTracer still dispatches listeners).
    listener = None
    if progress is not None:
        listener = progress_listener(progress, "shard", ShardProgress)
        tracer.add_listener(listener)
    try:
        with tracer.span("campaign", epoch=epoch, visits=visits, shards=num_shards):
            manifests: dict[int, dict] = {}
            resumed: set[int] = set()
            pending: list[ShardAssignment] = []
            for assignment in assignments:
                manifest = load_manifest(
                    campaign_root / assignment.directory_name, signature, assignment
                )
                if manifest is not None:
                    manifests[assignment.shard_index] = manifest
                    resumed.add(assignment.shard_index)
                else:
                    pending.append(assignment)

            # A killed worker leaves a partial trace but no manifest; fold
            # it into the campaign stream (open spans close as ``aborted``)
            # before re-execution clears its directory.
            for assignment in pending:
                _salvage_aborted_trace(
                    tracer, campaign_root / assignment.directory_name, assignment
                )

            completed: list[int] = []

            def note_progress(shard_index: int) -> None:
                completed.append(shard_index)
                done = [manifests[i] for i in completed]
                tracer.event(
                    "shard",
                    shard_index=shard_index,
                    shard_count=len(assignments),
                    shards_completed=len(completed),
                    blocks_completed=sum(len(m["blocks"]) for m in done),
                    blocks_total=planner.block_count,
                    visits_completed=sum(
                        block["visits"] for m in done for block in m["blocks"]
                    ),
                    visits_total=visits,
                    measurements_added=manifests[shard_index]["counters"]["stored"],
                    measurements_total=sum(m["counters"]["stored"] for m in done),
                    duration_s=monotonic() - started,
                    resumed=shard_index in resumed,
                )

            for shard_index in sorted(resumed):
                note_progress(shard_index)

            if pending:
                if executor_kind == "inline":
                    for assignment in pending:
                        manifests[assignment.shard_index] = execute_shard(
                            deployment,
                            assignment,
                            epoch,
                            visits,
                            campaign_root / assignment.directory_name,
                            signature,
                            visit_base,
                            trace=tracer.enabled,
                        )
                        note_progress(assignment.shard_index)
                else:
                    _run_process_pool(
                        deployment, pending, epoch, visits, visit_base,
                        campaign_root, signature, manifests, note_progress,
                        trace=tracer.enabled,
                    )

            # Fold each shard's committed span stream into the campaign
            # trace, preserving parentage under a per-shard wrapper span.
            if tracer.enabled:
                for assignment in assignments:
                    shard_trace = (
                        campaign_root / assignment.directory_name / TRACE_FILENAME
                    )
                    with tracer.span(
                        "shard",
                        shard=assignment.shard_index,
                        resumed=assignment.shard_index in resumed,
                    ) as span:
                        tracer.absorb_file(shard_trace, parent_id=span.id)

            merged = [manifests[a.shard_index] for a in assignments]
            merger = StoreMerger(deployment.collection.store)
            with tracer.span("adopt", shards=len(merged)):
                executions = merger.merge(merged)
            attempted = sum(m["counters"]["deliveries_attempted"] for m in merged)
            failed = sum(m["counters"]["deliveries_failed"] for m in merged)
            deployment.coordination.note_batch_deliveries(attempted, failed)
            deployment.collection.unreachable_submissions += sum(
                m["counters"]["unreachable_submissions"] for m in merged
            )
            for manifest in merged:
                deployment.scheduler.absorb_counts(manifest["assignment_counts"])
            tracer.record_metrics(scope="campaign")
            return CampaignResult(
                config=config,
                collection=deployment.collection,
                coordination=deployment.coordination,
                visits_simulated=visits,
                task_executions=executions,
                feasibility=deployment.feasibility,
                mode="sharded",
            )
    finally:
        if listener is not None:
            tracer.remove_listener(listener)


def _salvage_aborted_trace(tracer, shard_dir: Path, assignment) -> None:
    """Absorb a dead attempt's partial trace before its directory is cleared.

    The spans a killed worker left open are closed with ``aborted`` status
    by :meth:`Tracer.absorb_file`, so the evidence of where the attempt
    died survives the retry instead of being rmtree'd with the rest of the
    partial output.
    """
    orphan = shard_dir / TRACE_FILENAME
    if not tracer.enabled or not orphan.is_file():
        return
    with tracer.span(
        "shard.aborted", shard=assignment.shard_index
    ) as span:
        tracer.absorb_file(orphan, parent_id=span.id)


def _run_process_pool(
    deployment, pending, epoch, visits, visit_base, campaign_root, signature,
    manifests, note_progress, trace=False,
) -> None:
    """Fan the pending shards out over a process pool.

    Prefers the ``fork`` start method so workers inherit the already-built
    deployment through copy-on-write memory (no pickling, no rebuild); on
    platforms without it, workers rebuild the deployment from the pickled
    world/campaign configs and adopt the parent's task ids, producing the
    same campaign either way.
    """
    global _FORK_DEPLOYMENT
    methods = multiprocessing.get_all_start_methods()
    use_fork = "fork" in methods
    context = multiprocessing.get_context("fork" if use_fork else None)
    # The rebuild fields (configs + task ids) are only shipped when workers
    # cannot inherit the deployment; forked children never read them.
    rebuild_fields = (
        {}
        if use_fork
        else {
            "world_config": deployment.world.config,
            "campaign_config": deployment.config,
            "task_ids": _pool_task_ids(deployment),
        }
    )
    payloads = {
        assignment.shard_index: {
            "assignment": assignment,
            "epoch": epoch,
            "visits": visits,
            "visit_base": visit_base,
            "shard_dir": campaign_root / assignment.directory_name,
            "signature": signature,
            "trace": trace,
            **rebuild_fields,
        }
        for assignment in pending
    }
    if use_fork:
        _FORK_DEPLOYMENT = deployment
    try:
        with ProcessPoolExecutor(
            max_workers=len(pending), mp_context=context
        ) as pool:
            futures = {
                pool.submit(shard_worker, payload): shard_index
                for shard_index, payload in payloads.items()
            }
            for future in as_completed(futures):
                shard_index = futures[future]
                manifest_path = Path(future.result())
                manifests[shard_index] = json.loads(manifest_path.read_text())
                note_progress(shard_index)
    finally:
        _FORK_DEPLOYMENT = None
