"""Columnar measurement storage: struct-of-arrays with disk spill.

The paper's deployment collected ~141k measurements from 88k clients (§7),
and every analysis the reproduction runs — filtering, per-region success
counts, detection, reports — is an aggregation over that corpus.  Holding
each measurement as a frozen dataclass in a Python list makes those
aggregations per-row Python loops; this module stores the corpus as columns
instead:

* **Struct of arrays.**  Each :class:`Measurement` field is one numpy column.
  Low-cardinality fields (task type, outcome, target URL/domain, country,
  ISP, browser family, origin) are dictionary-encoded as small integer codes
  with store-level value tables, so filters compare integers and group-bys
  are ``bincount`` reductions.  High-cardinality strings (measurement id,
  client IP) stay as numpy unicode arrays.
* **Vectorized queries.**  :meth:`MeasurementStore.select` evaluates all
  filter criteria as boolean masks and returns a :class:`Selection` (mask +
  column views); :meth:`MeasurementStore.query` hands any keyed reduction —
  per-(domain, country[, day]) counts, timing quantiles, distinct clients —
  to the one group-by kernel in :mod:`repro.core.query`.  The legacy
  bespoke reductions (``success_counts`` and friends) survive as deprecated
  thin wrappers over it, pinned row-identical by equivalence tests.
* **Bounded memory.**  With ``max_rows_in_memory=`` set, sealed column
  segments spill to ``.npz`` files under ``spill_dir`` (a temporary
  directory if none is given).  Queries transparently concatenate spilled
  and resident segments — and only load the columns they touch, so the
  detection pipeline over a spilled store never reads the string columns.
* **Row compatibility.**  :meth:`rows` materializes
  :class:`~repro.core.collection.Measurement` dataclasses on demand,
  field-for-field identical to what the row-list collection server stored,
  which is what keeps ``CollectionServer.measurements`` and
  ``CampaignResult.measurements`` working unchanged.
"""

from __future__ import annotations

import tempfile
import warnings
from collections import Counter
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, NamedTuple, Sequence

import numpy as np

from repro.core.tasks import TaskOutcome, TaskType
from repro.obs.metrics import get_registry
from repro.web.url import URL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (collection imports us)
    from repro.core.collection import Measurement

# Fixed enum encodings shared by every store.
TASK_TYPES: tuple[TaskType, ...] = tuple(TaskType)
OUTCOMES: tuple[TaskOutcome, ...] = tuple(TaskOutcome)
_TASK_CODES = {t: i for i, t in enumerate(TASK_TYPES)}
_OUTCOME_CODES = {o: i for i, o in enumerate(OUTCOMES)}
OUTCOME_SUCCESS = _OUTCOME_CODES[TaskOutcome.SUCCESS]
OUTCOME_FAILURE = _OUTCOME_CODES[TaskOutcome.FAILURE]
OUTCOME_INCONCLUSIVE = _OUTCOME_CODES[TaskOutcome.INCONCLUSIVE]

#: Column name -> dtype of the empty column (string columns widen on append).
_COLUMN_DTYPES = {
    "measurement_id": np.dtype("U1"),
    "task": np.dtype(np.int8),
    "url": np.dtype(np.int32),
    "domain": np.dtype(np.int32),
    "outcome": np.dtype(np.int8),
    "elapsed_ms": np.dtype(np.float64),
    "probe_time_ms": np.dtype(np.float64),
    "client_ip": np.dtype("U1"),
    "country": np.dtype(np.int16),
    "isp": np.dtype(np.int32),
    "family": np.dtype(np.int16),
    "origin": np.dtype(np.int32),
    "day": np.dtype(np.int32),
    "automated": np.dtype(bool),
}
_COLUMN_NAMES = tuple(_COLUMN_DTYPES)


class DictColumn(NamedTuple):
    """A column given as ``values[indices]`` without expanding it row-wise.

    Producers that already know a column's distinct (or per-group) values —
    the batch executor knows every row's task, and every client attribute
    per *visit* rather than per row — hand the store the small ``values``
    table plus a per-row ``indices`` array.  The store encodes ``values``
    once (``len(values)`` dictionary operations instead of one per row) and
    broadcasts the codes with a single fancy-index, which is what makes bulk
    ingestion free of per-row Python work.
    """

    values: Sequence
    indices: np.ndarray


def _column_length(column) -> int:
    return len(column.indices) if isinstance(column, DictColumn) else len(column)


class GroupedCounts:
    """Per-(domain, country) measurement totals as parallel arrays.

    The cells are sorted by ``(domain, country)`` — the order the detector
    reports statistics in — and ``totals``/``successes`` line up with
    ``domains``/``countries`` index-for-index.  :meth:`as_dict` recovers the
    legacy ``{(domain, country): (n, successes)}`` mapping.
    """

    __slots__ = ("domains", "countries", "totals", "successes")

    def __init__(
        self,
        domains: np.ndarray,
        countries: np.ndarray,
        totals: np.ndarray,
        successes: np.ndarray,
    ) -> None:
        self.domains = domains
        self.countries = countries
        self.totals = totals
        self.successes = successes

    def __len__(self) -> int:
        return len(self.totals)

    @classmethod
    def from_dict(cls, counts: dict) -> "GroupedCounts":
        """Build sorted cell arrays from a legacy counts mapping."""
        items = sorted(counts.items())
        domains = np.asarray([d for (d, _), _ in items], dtype=np.str_)
        countries = np.asarray([c for (_, c), _ in items], dtype=np.str_)
        totals = np.asarray([n for _, (n, _) in items], dtype=np.int64)
        successes = np.asarray([s for _, (_, s) in items], dtype=np.int64)
        return cls(domains, countries, totals, successes)

    def as_dict(self) -> dict[tuple[str, str], tuple[int, int]]:
        """The legacy ``(domain, country) -> (n, successes)`` mapping."""
        return {
            (str(d), str(c)): (int(n), int(s))
            for d, c, n, s in zip(self.domains, self.countries, self.totals, self.successes)
        }


class DayGroupedCounts:
    """Per-(domain, country, day) measurement totals as parallel arrays.

    The day-bucketed sibling of :class:`GroupedCounts` — what the
    longitudinal pipeline consumes.  Cells are sorted by ``(domain,
    country, day)`` and the arrays line up index-for-index; days with no
    measurements for a pair simply have no cell.  ``n_days`` is the day-axis
    extent (one past the largest day seen).  :meth:`cell_series` densifies
    the ragged cells into per-(domain, country) day matrices for the
    change-point detector.
    """

    __slots__ = ("domains", "countries", "days", "totals", "successes", "n_days")

    def __init__(
        self,
        domains: np.ndarray,
        countries: np.ndarray,
        days: np.ndarray,
        totals: np.ndarray,
        successes: np.ndarray,
        n_days: int,
    ) -> None:
        self.domains = domains
        self.countries = countries
        self.days = days
        self.totals = totals
        self.successes = successes
        self.n_days = n_days

    def __len__(self) -> int:
        return len(self.totals)

    @classmethod
    def from_dict(cls, counts: dict, n_days: int | None = None) -> "DayGroupedCounts":
        """Build sorted cell arrays from a ``{(domain, country, day): (n, s)}`` map.

        ``n_days`` may widen the day axis beyond the data (trailing empty
        days) but never truncate it — a too-small value would make
        :meth:`cell_series` index past its matrices, so it is rejected here.
        """
        items = sorted(counts.items())
        domains = np.asarray([d for (d, _, _), _ in items], dtype=np.str_)
        countries = np.asarray([c for (_, c, _), _ in items], dtype=np.str_)
        days = np.asarray([day for (_, _, day), _ in items], dtype=np.int64)
        totals = np.asarray([n for _, (n, _) in items], dtype=np.int64)
        successes = np.asarray([s for _, (_, s) in items], dtype=np.int64)
        least = int(days.max()) + 1 if len(days) else 0
        if n_days is None:
            n_days = least
        elif n_days < least:
            raise ValueError(
                f"n_days={n_days} cannot cover days up to {least - 1}"
            )
        return cls(domains, countries, days, totals, successes, n_days)

    def as_dict(self) -> dict[tuple[str, str, int], tuple[int, int]]:
        """The ``(domain, country, day) -> (n, successes)`` mapping."""
        return {
            (str(d), str(c), int(day)): (int(n), int(s))
            for d, c, day, n, s in zip(
                self.domains, self.countries, self.days, self.totals, self.successes
            )
        }

    def cell_series(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dense per-pair day series: ``(domains, countries, totals, successes)``.

        The first two arrays name the ``C`` distinct (domain, country) pairs
        (in sorted order); the matrices are ``(C, n_days)`` with zeros where
        a pair has no measurements on a day — the layout the vectorized
        CUSUM detector scans day-column by day-column.
        """
        if len(self) == 0:
            empty = np.empty(0, dtype=np.str_)
            return empty, empty, np.zeros((0, self.n_days), dtype=np.int64), np.zeros(
                (0, self.n_days), dtype=np.int64
            )
        # Cells are already sorted by (domain, country, day), so pair
        # boundaries are where either name changes.
        new_pair = np.r_[
            True, (self.domains[1:] != self.domains[:-1])
            | (self.countries[1:] != self.countries[:-1])
        ]
        pair_of_cell = np.cumsum(new_pair) - 1
        starts = np.flatnonzero(new_pair)
        n_pairs = len(starts)
        totals = np.zeros((n_pairs, self.n_days), dtype=np.int64)
        successes = np.zeros((n_pairs, self.n_days), dtype=np.int64)
        totals[pair_of_cell, self.days] = self.totals
        successes[pair_of_cell, self.days] = self.successes
        return self.domains[starts], self.countries[starts], totals, successes


class DenseDayCounts:
    """Per-pair day matrices served straight off the incremental fold state.

    Duck-type compatible with the slice of :class:`DayGroupedCounts` the
    CUSUM change-point scan consumes (``n_days`` plus :meth:`cell_series`),
    but built without the ragged (domain, country, day) materialization —
    no per-cell string arrays, no lexsort over every cell of history — so
    an always-on monitor's per-epoch aggregation cost tracks the *new*
    rows, not the length of history.  Pairs carry the same members and the
    same sorted (domain, country) order as ``DayGroupedCounts.cell_series``
    on the same corpus, which keeps the two paths' events bit-identical.
    """

    __slots__ = ("domains", "countries", "totals", "successes", "n_days")

    def __init__(
        self,
        domains: np.ndarray,
        countries: np.ndarray,
        totals: np.ndarray,
        successes: np.ndarray,
        n_days: int,
    ) -> None:
        self.domains = domains
        self.countries = countries
        self.totals = totals
        self.successes = successes
        self.n_days = n_days

    def __len__(self) -> int:
        return len(self.domains)

    def cell_series(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Already dense: ``(domains, countries, totals, successes)``."""
        return self.domains, self.countries, self.totals, self.successes


class Selection:
    """The result of :meth:`MeasurementStore.select`: a row mask over the store.

    Exposes the matching rows as column views (no copies of non-selected
    data) and materializes :class:`Measurement` rows only on request.
    """

    __slots__ = ("store", "mask", "_indices", "_count")

    def __init__(self, store: "MeasurementStore", mask: np.ndarray) -> None:
        self.store = store
        self.mask = mask
        self._indices: np.ndarray | None = None
        self._count: int | None = None

    def __len__(self) -> int:
        if self._count is None:
            self._count = int(np.count_nonzero(self.mask))
        return self._count

    @property
    def count(self) -> int:
        return len(self)

    @property
    def indices(self) -> np.ndarray:
        if self._indices is None:
            self._indices = np.flatnonzero(self.mask)
        return self._indices

    def column(self, name: str) -> np.ndarray:
        """The selected rows of one store column."""
        return self.store.column(name)[self.mask]

    def invert(self) -> "Selection":
        """The complementary selection (rows this one excludes)."""
        return Selection(self.store, ~self.mask)

    @property
    def succeeded(self) -> np.ndarray:
        return self.column("outcome") == OUTCOME_SUCCESS

    @property
    def failed(self) -> np.ndarray:
        return self.column("outcome") == OUTCOME_FAILURE

    @property
    def elapsed_ms(self) -> np.ndarray:
        return self.column("elapsed_ms")

    @property
    def successes(self) -> int:
        return int(np.count_nonzero(self.succeeded))

    @property
    def success_rate(self) -> float:
        n = len(self)
        return self.successes / n if n else 0.0

    def materialize(self) -> "list[Measurement]":
        """The selected rows as :class:`Measurement` dataclasses, in store order."""
        return self.store.rows(self.indices)


class _Segment:
    """One sealed block of column arrays, resident or spilled to an ``.npz``.

    ``remap`` holds per-column code-translation arrays for *adopted*
    segments — segments written by another store (a shard worker) whose
    dictionary codes reference that store's value tables.  Translation is a
    single fancy-index applied lazily at read time, so adopting a foreign
    segment never rewrites its rows on disk or in memory.
    """

    __slots__ = ("length", "columns", "path", "remap")

    def __init__(self, length: int, columns: dict[str, np.ndarray] | None,
                 path: Path | None = None,
                 remap: dict[str, np.ndarray] | None = None) -> None:
        self.length = length
        self.columns = columns
        self.path = path
        self.remap = remap

    @property
    def spilled(self) -> bool:
        return self.columns is None

    def _translated(self, name: str, values: np.ndarray) -> np.ndarray:
        if self.remap is None:
            return values
        translation = self.remap.get(name)
        if translation is None:
            return values
        # The sentinel tail entry maps code -1 (stripped origins) to itself.
        return translation[values]

    def column(self, name: str) -> np.ndarray:
        if self.columns is not None:
            return self._translated(name, self.columns[name])
        assert self.path is not None
        with np.load(self.path) as data:
            return self._translated(name, data[name])

    def load_columns(self, names: Sequence[str]) -> dict[str, np.ndarray]:
        """Several columns with one file open (streamed aggregation path)."""
        if self.columns is not None:
            return {name: self._translated(name, self.columns[name]) for name in names}
        assert self.path is not None
        with np.load(self.path) as data:
            return {name: self._translated(name, data[name]) for name in names}

    def spill(self, path: Path) -> None:
        assert self.columns is not None
        np.savez(path, **self.columns)
        self.path = path
        self.columns = None
        get_registry().counter("store.segments_spilled").add(1)


class MeasurementStore:
    """Struct-of-arrays storage for measurements, with optional disk spill.

    ``segment_rows`` controls how many pending rows are batched before they
    are sealed into an immutable segment; ``max_rows_in_memory`` bounds the
    rows kept resident (sealed segments beyond the bound spill, oldest
    first, to ``spill_dir``).
    """

    DEFAULT_SEGMENT_ROWS = 65_536

    def __init__(
        self,
        segment_rows: int | None = None,
        max_rows_in_memory: int | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        if segment_rows is not None and segment_rows < 1:
            raise ValueError("segment_rows must be positive")
        if max_rows_in_memory is not None and max_rows_in_memory < 1:
            raise ValueError("max_rows_in_memory must be positive")
        self.segment_rows = segment_rows or self.DEFAULT_SEGMENT_ROWS
        self.max_rows_in_memory = max_rows_in_memory
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        #: Unique per-store directory under ``spill_dir``, created on first
        #: spill, so stores sharing one configured directory (e.g. a sweep's
        #: campaigns) never overwrite each other's segment files.
        self._spill_subdir: Path | None = None
        self._segments: list[_Segment] = []
        #: Stores whose segments were adopted wholesale; held strongly so
        #: their lifetime-keyed cleanup (temp spill roots) cannot outrun ours.
        self._adopted_sources: list["MeasurementStore"] = []
        self._pending: list[dict[str, np.ndarray]] = []
        self._pending_rows = 0
        self._length = 0
        self._version = 0
        self._spill_count = 0
        # Dictionary-encoded value tables (store-level, shared by segments).
        self._url_values: list[URL] = []
        self._url_codes: dict[URL, int] = {}
        self._domain_values: list[str] = []
        self._domain_codes: dict[str, int] = {}
        self._country_values: list[str] = []
        self._country_codes: dict[str, int] = {}
        self._isp_values: list[str] = []
        self._isp_codes: dict[str, int] = {}
        self._family_values: list[str] = []
        self._family_codes: dict[str, int] = {}
        self._origin_values: list[str] = []
        #: ``None`` origins (stripped Referer) encode as -1.
        self._origin_codes: dict[str | None, int] = {None: -1}
        # Query-time caches, all invalidated by version comparison.
        self._column_cache: dict[str, np.ndarray] = {}
        self._column_cache_version = -1
        self._derived_cache: dict[object, object] = {}
        self._derived_cache_version = -1
        # Incremental fold state for the query kernel: unlike
        # ``_derived_cache`` (whole results, discarded on every append)
        # these survive version bumps and track how far into the
        # sealed-segment list they have folded (repro.core.query).
        self._query_states: dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    @property
    def version(self) -> int:
        """Monotone counter bumped by every append (cache invalidation key)."""
        return self._version

    @property
    def url_values(self) -> Sequence[URL]:
        return self._url_values

    @property
    def domain_values(self) -> Sequence[str]:
        return self._domain_values

    @property
    def country_values(self) -> Sequence[str]:
        return self._country_values

    @property
    def spill_dir(self) -> Path | None:
        return self._spill_dir

    @property
    def segment_files(self) -> list[Path]:
        """Paths of the segments currently spilled to disk."""
        return [seg.path for seg in self._segments if seg.spilled and seg.path is not None]

    @property
    def rows_in_memory(self) -> int:
        """Rows currently resident (pending plus unspilled segments)."""
        return self._pending_rows + sum(
            seg.length for seg in self._segments if not seg.spilled
        )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append_columns(
        self,
        *,
        measurement_id: Sequence[str],
        task_type: Sequence[TaskType],
        target_url: Sequence[URL],
        target_domain: Sequence[str],
        outcome: Sequence[TaskOutcome],
        elapsed_ms,
        client_ip: Sequence[str],
        country_code: Sequence[str],
        isp: Sequence[str],
        browser_family: Sequence[str],
        origin_domain: Sequence[str | None],
        day,
        probe_time_ms=None,
        is_automated=None,
    ) -> int:
        """Append ``n`` rows given column-wise, returning ``n``.

        Every argument is either a sequence of length ``n`` in
        :class:`Measurement` field semantics or a :class:`DictColumn`
        (``values`` table + per-row ``indices``), which the store expands
        with one fancy-index after encoding only the table;
        ``probe_time_ms`` entries may be ``None`` (stored as NaN) and
        ``origin_domain`` entries may be ``None`` (stored as code -1).  This
        is the zero-object ingestion path: no per-row :class:`Measurement`
        is ever constructed.
        """
        n = _column_length(measurement_id)
        if n == 0:
            return 0
        chunk = {
            "measurement_id": _string_column(measurement_id),
            "task": self._encode(task_type, _TASK_CODES, None, np.int8),
            "url": self._encode(target_url, self._url_codes, self._url_values, np.int32),
            "domain": self._encode(
                target_domain, self._domain_codes, self._domain_values, np.int32
            ),
            "outcome": self._encode(outcome, _OUTCOME_CODES, None, np.int8),
            "elapsed_ms": np.asarray(elapsed_ms, dtype=np.float64),
            "probe_time_ms": _as_optional_floats(probe_time_ms, n),
            "client_ip": _string_column(client_ip),
            "country": self._encode(
                country_code, self._country_codes, self._country_values, np.int16
            ),
            "isp": self._encode(isp, self._isp_codes, self._isp_values, np.int32),
            "family": self._encode(
                browser_family, self._family_codes, self._family_values, np.int16
            ),
            "origin": self._encode(
                origin_domain, self._origin_codes, self._origin_values, np.int32
            ),
            "day": np.asarray(day, dtype=np.int32),
            "automated": (
                np.zeros(n, dtype=bool)
                if is_automated is None
                else np.asarray(is_automated, dtype=bool)
            ),
        }
        self._append_chunk(chunk, n)
        return n

    def append_rows(self, measurements: "Iterable[Measurement]") -> int:
        """Append already-materialized :class:`Measurement` rows."""
        ms = measurements if isinstance(measurements, (list, tuple)) else list(measurements)
        if not ms:
            return 0
        return self.append_columns(
            measurement_id=[m.measurement_id for m in ms],
            task_type=[m.task_type for m in ms],
            target_url=[m.target_url for m in ms],
            target_domain=[m.target_domain for m in ms],
            outcome=[m.outcome for m in ms],
            elapsed_ms=[m.elapsed_ms for m in ms],
            client_ip=[m.client_ip for m in ms],
            country_code=[m.country_code for m in ms],
            isp=[m.isp for m in ms],
            browser_family=[m.browser_family for m in ms],
            origin_domain=[m.origin_domain for m in ms],
            day=[m.day for m in ms],
            probe_time_ms=[m.probe_time_ms for m in ms],
            is_automated=[m.is_automated for m in ms],
        )

    def _encode(self, values, code_map: dict, value_list: list | None, dtype) -> np.ndarray:
        """Dictionary-encode ``values`` into integer codes.

        A :class:`DictColumn` encodes only its (small) value table and
        broadcasts the codes by fancy-index.  Otherwise the fast path maps
        every value through the existing code table in one C-level pass; the
        first sight of a new value falls back to an inserting scan
        (``value_list is None`` means the table is closed — fixed enum
        encodings — and unknown values are an error).
        """
        if isinstance(values, DictColumn):
            return self._encode(values.values, code_map, value_list, dtype)[values.indices]
        try:
            return np.fromiter(
                map(code_map.__getitem__, values), dtype=dtype, count=len(values)
            )
        except KeyError:
            if value_list is None:
                raise
        out = np.empty(len(values), dtype=dtype)
        get = code_map.get
        for index, value in enumerate(values):
            code = get(value)
            if code is None:
                code = len(value_list)
                code_map[value] = code
                value_list.append(value)
            out[index] = code
        return out

    def _append_chunk(self, chunk: dict[str, np.ndarray], n: int) -> None:
        self._pending.append(chunk)
        self._pending_rows += n
        self._length += n
        self._version += 1
        get_registry().counter("store.rows_ingested").add(n)
        threshold = self.segment_rows
        if self.max_rows_in_memory is not None:
            threshold = min(threshold, self.max_rows_in_memory)
        if self._pending_rows >= threshold:
            self._seal_pending()
            self._maybe_spill()

    def _seal_pending(self) -> None:
        if not self._pending:
            return
        if len(self._pending) == 1:
            columns = self._pending[0]
        else:
            columns = {
                name: np.concatenate([chunk[name] for chunk in self._pending])
                for name in _COLUMN_NAMES
            }
        self._segments.append(_Segment(self._pending_rows, columns))
        self._pending = []
        self._pending_rows = 0
        get_registry().counter("store.segments_sealed").add(1)

    def _maybe_spill(self) -> None:
        if self.max_rows_in_memory is None:
            return
        resident = self.rows_in_memory
        for seg in self._segments:
            if resident <= self.max_rows_in_memory:
                break
            if seg.spilled:
                continue
            seg.spill(self._next_spill_path())
            resident -= seg.length

    def _next_spill_path(self) -> Path:
        if self._spill_subdir is None:
            if self._spill_dir is None:
                self._spill_subdir = Path(tempfile.mkdtemp(prefix="measurement-store-"))
            else:
                self._spill_dir.mkdir(parents=True, exist_ok=True)
                self._spill_subdir = Path(
                    tempfile.mkdtemp(prefix="store-", dir=self._spill_dir)
                )
        self._spill_count += 1
        return self._spill_subdir / f"segment-{self._spill_count:05d}.npz"

    def seal_pending(self) -> None:
        """Seal the pending row buffer into an immutable segment now.

        Sealed segments are folded into the persistent aggregates behind
        :meth:`success_counts` exactly once; pending rows are re-folded on
        every call (they are still mutable).  Callers that aggregate after
        every small append — the longitudinal monitor after each epoch —
        seal first so per-call work stays proportional to the new rows, not
        to however many epochs fit under ``segment_rows``.
        """
        self._seal_pending()
        self._maybe_spill()

    def spill(self) -> int:
        """Seal pending rows and spill every resident segment; returns spilled count."""
        self._seal_pending()
        spilled = 0
        for seg in self._segments:
            if not seg.spilled:
                seg.spill(self._next_spill_path())
                spilled += 1
        self._column_cache.clear()
        self._column_cache_version = -1
        return spilled

    # ------------------------------------------------------------------
    # Segment adoption (multi-process merge support)
    # ------------------------------------------------------------------
    #: Columns whose codes reference store-level value tables (and therefore
    #: need translation when a segment written by another store is adopted).
    DICT_KINDS = ("url", "domain", "country", "isp", "family", "origin")

    def _dict_tables(self, kind: str) -> tuple[dict, list]:
        tables = {
            "url": (self._url_codes, self._url_values),
            "domain": (self._domain_codes, self._domain_values),
            "country": (self._country_codes, self._country_values),
            "isp": (self._isp_codes, self._isp_values),
            "family": (self._family_codes, self._family_values),
            "origin": (self._origin_codes, self._origin_values),
        }
        return tables[kind]

    def value_tables(self) -> dict[str, list]:
        """The dictionary value tables, in code order, per :data:`DICT_KINDS`."""
        return {kind: list(self._dict_tables(kind)[1]) for kind in self.DICT_KINDS}

    def merge_value_table(self, kind: str, values: Sequence) -> np.ndarray:
        """Fold another store's value table into this one; return the translation.

        ``translation[code]`` is this store's code for the foreign store's
        ``code``; the extra tail entry maps the stripped-origin sentinel
        ``-1`` to itself, so translating a foreign code column is one
        fancy-index regardless of sentinels.
        """
        code_map, value_list = self._dict_tables(kind)
        translation = np.empty(len(values) + 1, dtype=np.int64)
        translation[-1] = -1
        for index, value in enumerate(values):
            code = code_map.get(value)
            if code is None:
                code = len(value_list)
                code_map[value] = code
                value_list.append(value)
            translation[index] = code
        return translation

    def adopt_spilled_segment(
        self,
        path: str | Path,
        length: int,
        remap: dict[str, np.ndarray] | None = None,
    ) -> None:
        """Mount a segment ``.npz`` written by another store, without copying rows.

        The file stays where it is and is read on demand like any spilled
        segment; ``remap`` (column name -> translation array, typically from
        :meth:`merge_value_table`) reconciles the writer's dictionary codes
        with this store's at read time.  Pending rows are sealed first so
        store order stays append-consistent.
        """
        if length <= 0:
            return
        self._seal_pending()
        self._segments.append(_Segment(length, None, Path(path), remap=remap))
        self._length += length
        self._version += 1
        registry = get_registry()
        registry.counter("store.segments_adopted").add(1)
        registry.counter("store.rows_adopted").add(length)

    def adopt_segments_from(self, other: "MeasurementStore") -> int:
        """Mount every row of ``other`` into this store without copying any.

        The sibling of :meth:`adopt_spilled_segment` for whole stores:
        resident segments (and pending chunks) are shared by reference,
        spilled segments by path, and ``other``'s dictionary codes are
        reconciled through translation arrays applied lazily at read time —
        composed with any remap ``other`` itself carries for segments *it*
        adopted, so merged (sharded) stores adopt correctly too.  ``other``
        is not mutated and both stores stay independently usable; segment
        arrays are immutable by convention, so sharing is safe.  This is
        what lets an adversarial sweep build one poisoned store per grid
        cell on top of a shared honest corpus in O(segments), not O(rows).
        Returns the number of rows adopted.
        """
        if other is self:
            raise ValueError("a store cannot adopt its own segments")
        self._seal_pending()
        translations = {
            kind: self.merge_value_table(kind, values)
            for kind, values in other.value_tables().items()
        }
        identity = {
            kind: _is_identity_translation(translation)
            for kind, translation in translations.items()
        }

        def composed_remap(base: dict[str, np.ndarray] | None) -> dict[str, np.ndarray] | None:
            remap: dict[str, np.ndarray] = {}
            for kind, translation in translations.items():
                own = None if base is None else base.get(kind)
                if own is None:
                    if not identity[kind]:
                        remap[kind] = translation
                elif identity[kind]:
                    remap[kind] = own
                else:
                    # own's tail sentinel (-1) indexes translation's own
                    # tail, so the composition keeps mapping -1 -> -1.
                    remap[kind] = translation[own]
            return remap or None

        adopted = 0
        for seg in other._segments:
            self._segments.append(
                _Segment(seg.length, seg.columns, seg.path, remap=composed_remap(seg.remap))
            )
            adopted += seg.length
        for chunk in other._pending:
            length = len(chunk["day"])
            self._segments.append(_Segment(length, chunk, None, remap=composed_remap(None)))
            adopted += length
        # Keep the source alive for as long as this store can read its
        # segments: cleanup hooks keyed to the source's lifetime (e.g. the
        # sharded runner reclaiming an unnamed temp spill root via
        # weakref.finalize) must not fire while adopted paths are still
        # referenced here.
        self._adopted_sources.append(other)
        self._length += adopted
        self._version += 1
        registry = get_registry()
        registry.counter("store.segments_adopted").add(
            len(other._segments) + len(other._pending)
        )
        registry.counter("store.rows_adopted").add(adopted)
        return adopted

    # ------------------------------------------------------------------
    # Columnar access
    # ------------------------------------------------------------------
    def column(self, name: str) -> np.ndarray:
        """The full column ``name``, transparently concatenated across segments.

        Spilled segments are read back on demand; only the requested column
        is loaded from each ``.npz``, so queries that never touch the string
        columns never pay for them.
        """
        if name not in _COLUMN_DTYPES:
            raise KeyError(f"unknown column {name!r}")
        if self._column_cache_version != self._version:
            self._column_cache.clear()
            self._column_cache_version = self._version
        cached = self._column_cache.get(name)
        if cached is None:
            parts = [seg.column(name) for seg in self._segments]
            parts.extend(chunk[name] for chunk in self._pending)
            if not parts:
                cached = np.empty(0, dtype=_COLUMN_DTYPES[name])
            elif len(parts) == 1:
                cached = parts[0]
            else:
                cached = np.concatenate(parts)
            # Keeping a concatenated *string* column alive on a spilled
            # store would quietly grow memory back to full-corpus size; the
            # small code/numeric columns are the ones queries hit repeatedly.
            if _COLUMN_DTYPES[name].kind != "U" or not any(
                seg.spilled for seg in self._segments
            ):
                self._column_cache[name] = cached
        return cached

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def select(
        self,
        domain: str | None = None,
        country_code: str | None = None,
        task_type: TaskType | None = None,
        *,
        domain_suffix: str | None = None,
        exclude_automated: bool = True,
        exclude_inconclusive: bool = True,
    ) -> Selection:
        """Rows matching the given criteria, as a mask-backed :class:`Selection`.

        Matches the legacy ``CollectionServer.filtered`` semantics: automated
        traffic and inconclusive outcomes are excluded by default (paper
        §7.1), and each criterion narrows the selection.
        """
        mask = np.ones(len(self), dtype=bool)
        if exclude_automated:
            mask &= ~self.column("automated")
        if exclude_inconclusive:
            mask &= self.column("outcome") != OUTCOME_INCONCLUSIVE
        if domain is not None:
            code = self._domain_codes.get(domain)
            if code is None:
                mask[:] = False
            else:
                mask &= self.column("domain") == code
        if domain_suffix is not None:
            codes = [
                code
                for value, code in self._domain_codes.items()
                if value.endswith(domain_suffix)
            ]
            mask &= np.isin(self.column("domain"), codes)
        if country_code is not None:
            code = self._country_codes.get(country_code)
            if code is None:
                mask[:] = False
            else:
                mask &= self.column("country") == code
        if task_type is not None:
            mask &= self.column("task") == _TASK_CODES[task_type]
        return Selection(self, mask)

    def _segment_chunks(self, names: Sequence[str]):
        """Yield ``(offset, length, columns)`` segment-by-segment (pending too).

        The query kernel's streaming surface: each spilled ``.npz`` is
        opened once for all requested columns, nothing is ever concatenated
        into a full-corpus array, and the running row offset lets a caller
        slice a store-wide mask per segment.
        """
        offset = 0
        for seg in self._segments:
            yield offset, seg.length, seg.load_columns(names)
            offset += seg.length
        for chunk in self._pending:
            length = len(chunk["day"])
            yield offset, length, {name: chunk[name] for name in names}
            offset += length

    def _segment_parts(self, names: Sequence[str]):
        """Yield the requested columns segment-by-segment (pending included)."""
        for _, _, part in self._segment_chunks(names):
            yield part

    def query(
        self,
        keys: Sequence[str] = ("domain", "country"),
        aggregates=None,
        *,
        mask: np.ndarray | None = None,
        exclude_automated: bool = True,
        exclude_inconclusive: bool = True,
        shape: str = "cells",
        tracer=None,
    ):
        """Group rows by ``keys`` and reduce with ``aggregates`` — the one
        query surface every reduction goes through.

        ``keys`` is any subset of ``("domain", "country", "day", "isp",
        "family", "task")``; ``aggregates`` are specs from
        :mod:`repro.core.query` (:class:`~repro.core.query.Count`,
        :class:`~repro.core.query.SuccessCount`,
        :class:`~repro.core.query.Sum`,
        :class:`~repro.core.query.Quantiles`,
        :class:`~repro.core.query.DistinctCount`), defaulting to
        ``(Count(), SuccessCount())``.  ``mask`` restricts to a boolean
        row subset; ``shape="dense"`` returns full key-space accumulator
        arrays instead of per-group cells (foldable maskless queries only).
        Maskless all-foldable queries advance a fold-once incremental
        accumulator (each sealed segment folded exactly once over the
        store's lifetime), so an always-on monitor's per-call cost tracks
        the new rows.  See ``docs/query_api.md`` for the model and the
        migration table from the deprecated bespoke reductions.
        """
        from repro.core import query as _query

        return _query.run_query(
            self,
            keys,
            _query._COUNT_AGGS if aggregates is None else aggregates,
            mask=mask,
            exclude_automated=exclude_automated,
            exclude_inconclusive=exclude_inconclusive,
            shape=shape,
            tracer=_query.NULL_TRACER if tracer is None else tracer,
        )

    def success_counts(
        self, exclude_automated: bool = True, *, by_day: bool = False
    ) -> "GroupedCounts | DayGroupedCounts":
        """Deprecated: per-(domain, country[, day]) totals and successes.

        A thin wrapper over :meth:`query` (keys ``(domain, country[, day])``,
        aggregates ``(Count(), SuccessCount())``), kept for callers of the
        pre-kernel API and pinned row-identical to it by equivalence tests.
        Use :meth:`query` or :func:`repro.core.query.grouped_success_counts`.
        """
        warnings.warn(
            "MeasurementStore.success_counts() is deprecated; use "
            "store.query() or repro.core.query.grouped_success_counts()",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.query import grouped_success_counts

        return grouped_success_counts(self, exclude_automated, by_day=by_day)

    def success_counts_reference(
        self, exclude_automated: bool = True, *, by_day: bool = False
    ) -> "GroupedCounts | DayGroupedCounts":
        """Per-row reference for the grouped success reduction.

        The readable dict-update walk over materialized rows that the
        equivalence tests pin the query kernel against.
        """
        counts: dict[tuple, tuple[int, int]] = {}
        for m in self.rows():
            if m.outcome is TaskOutcome.INCONCLUSIVE:
                continue
            if exclude_automated and m.is_automated:
                continue
            if by_day:
                key = (m.target_domain, m.country_code, m.day)
            else:
                key = (m.target_domain, m.country_code)
            n, s = counts.get(key, (0, 0))
            counts[key] = (n + 1, s + (m.outcome is TaskOutcome.SUCCESS))
        if by_day:
            return DayGroupedCounts.from_dict(counts)
        return GroupedCounts.from_dict(counts)

    def success_day_series(self, exclude_automated: bool = True) -> DenseDayCounts:
        """Deprecated: dense (pair, day) success matrices for the monitor loop.

        A thin wrapper over :meth:`query` with ``shape="dense"`` — same
        fold-once accumulator and watermark as the by-day grouped counts,
        no ragged cell materialization, so per-epoch monitor cost stays
        flat.  Use :func:`repro.core.query.dense_day_series`.
        """
        warnings.warn(
            "MeasurementStore.success_day_series() is deprecated; use "
            "repro.core.query.dense_day_series()",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.query import dense_day_series

        return dense_day_series(self, exclude_automated)

    def success_day_series_reference(
        self, exclude_automated: bool = True
    ) -> DenseDayCounts:
        """Per-row reference for the dense day series (densified reference cells)."""
        ref = self.success_counts_reference(exclude_automated, by_day=True)
        domains, countries, totals, successes = ref.cell_series()
        return DenseDayCounts(domains, countries, totals, successes, ref.n_days)

    def masked_success_counts(
        self, mask: np.ndarray, exclude_automated: bool = True, *, by_day: bool = False
    ) -> "GroupedCounts | DayGroupedCounts":
        """Deprecated: :meth:`success_counts` restricted to ``mask`` rows.

        A thin wrapper over :meth:`query` with a row mask — what the
        reputation filter's store verdict uses to re-run detection over only
        the surviving rows of a poisoned store.  Use :meth:`query` or
        :func:`repro.core.query.masked_grouped_success_counts`.
        """
        warnings.warn(
            "MeasurementStore.masked_success_counts() is deprecated; use "
            "store.query(mask=...) or "
            "repro.core.query.masked_grouped_success_counts()",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.query import masked_grouped_success_counts

        return masked_grouped_success_counts(
            self, mask, exclude_automated, by_day=by_day
        )

    def masked_success_counts_reference(
        self, mask: np.ndarray, exclude_automated: bool = True, *, by_day: bool = False
    ) -> "GroupedCounts | DayGroupedCounts":
        """Per-row reference for the masked grouped reduction."""
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(self):
            raise ValueError(
                f"mask has {len(mask)} entries for a store of {len(self)} rows"
            )
        counts: dict[tuple, tuple[int, int]] = {}
        for m, keep in zip(self.rows(), mask.tolist()):
            if not keep or m.outcome is TaskOutcome.INCONCLUSIVE:
                continue
            if exclude_automated and m.is_automated:
                continue
            if by_day:
                key = (m.target_domain, m.country_code, m.day)
            else:
                key = (m.target_domain, m.country_code)
            n, s = counts.get(key, (0, 0))
            counts[key] = (n + 1, s + (m.outcome is TaskOutcome.SUCCESS))
        if by_day:
            return DayGroupedCounts.from_dict(counts)
        return GroupedCounts.from_dict(counts)

    def distinct_ips(self) -> int:
        """Deprecated: distinct client addresses over all rows.

        A thin wrapper over :meth:`query` with a
        :class:`~repro.core.query.DistinctCount` aggregate (per-segment
        deduplication keeps a spilled store from concatenating the full
        string column).  Use :meth:`query` or
        :func:`repro.core.query.distinct_ip_count`.
        """
        warnings.warn(
            "MeasurementStore.distinct_ips() is deprecated; use "
            "store.query() with DistinctCount('client_ip') or "
            "repro.core.query.distinct_ip_count()",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.query import distinct_ip_count

        return distinct_ip_count(self)

    def distinct_ips_reference(self) -> int:
        """Per-row reference for the distinct-client count (no exclusions)."""
        return len({m.client_ip for m in self.rows()})

    def distinct_countries(self) -> int:
        cached = self._derived("distinct_countries")
        if cached is None:
            present = np.bincount(
                self.column("country"), minlength=len(self._country_values)
            )
            cached = self._derive("distinct_countries", int(np.count_nonzero(present)))
        return cached

    def measurements_by_country(self) -> Counter:
        """Measurement volume per country (all rows, like the legacy Counter)."""
        cached = self._derived("by_country")
        if cached is None:
            counts = np.bincount(
                self.column("country"), minlength=len(self._country_values)
            )
            cached = self._derive(
                "by_country",
                Counter(
                    {
                        self._country_values[code]: int(count)
                        for code, count in enumerate(counts.tolist())
                        if count
                    }
                ),
            )
        return cached

    def _derived(self, key):
        if self._derived_cache_version != self._version:
            self._derived_cache.clear()
            self._derived_cache_version = self._version
        return self._derived_cache.get(key)

    def _derive(self, key, value):
        self._derived_cache[key] = value
        return value

    # ------------------------------------------------------------------
    # Row materialization (the backward-compatible view)
    # ------------------------------------------------------------------
    def rows(self, indices: np.ndarray | Sequence[int] | None = None) -> "list[Measurement]":
        """Materialize rows as :class:`Measurement` dataclasses, in store order."""
        from repro.core.collection import Measurement  # deferred: collection imports us

        if indices is not None:
            indices = np.asarray(indices, dtype=np.int64)

        def pick(name: str) -> list:
            col = self.column(name)
            if indices is not None:
                col = col[indices]
            return col.tolist()

        urls = self._url_values
        domains = self._domain_values
        countries = self._country_values
        isps = self._isp_values
        families = self._family_values
        origins = self._origin_values
        return [
            Measurement(
                measurement_id=mid,
                task_type=TASK_TYPES[task],
                target_url=urls[url],
                target_domain=domains[dom],
                outcome=OUTCOMES[out],
                elapsed_ms=elapsed,
                client_ip=ip,
                country_code=countries[country],
                isp=isps[isp_code],
                browser_family=families[family],
                origin_domain=origins[origin] if origin >= 0 else None,
                day=day,
                probe_time_ms=None if probe != probe else probe,
                is_automated=automated,
            )
            for mid, task, url, dom, out, elapsed, probe, ip, country, isp_code,
                family, origin, day, automated in zip(
                pick("measurement_id"), pick("task"), pick("url"), pick("domain"),
                pick("outcome"), pick("elapsed_ms"), pick("probe_time_ms"),
                pick("client_ip"), pick("country"), pick("isp"), pick("family"),
                pick("origin"), pick("day"), pick("automated"),
            )
        ]


def _is_identity_translation(translation: np.ndarray) -> bool:
    """True when a :meth:`MeasurementStore.merge_value_table` result is a no-op.

    Adopting into a store whose tables already list the same values in the
    same order (e.g. a fresh store) yields identity translations; skipping
    them keeps reads of adopted columns copy-free.
    """
    return bool(
        np.array_equal(translation[:-1], np.arange(len(translation) - 1))
    )


def _string_column(values) -> np.ndarray:
    """A per-row unicode array from a plain sequence or a :class:`DictColumn`."""
    if isinstance(values, DictColumn):
        return np.asarray(values.values, dtype=np.str_)[values.indices]
    return np.asarray(values, dtype=np.str_)


def _as_optional_floats(values, n: int) -> np.ndarray:
    """Float column from a sequence that may contain ``None`` (stored as NaN)."""
    if values is None:
        return np.full(n, np.nan)
    if isinstance(values, np.ndarray) and values.dtype.kind == "f":
        return values.astype(np.float64, copy=False)
    return np.fromiter(
        (np.nan if value is None else value for value in values),
        dtype=np.float64,
        count=n,
    )
