"""Measurement-task generation: Pattern Expander → Target Fetcher → Task Generator.

This is the offline pipeline of paper §5.2 (Fig. 3).  It runs ahead of any
client interaction (e.g. once per day): URL patterns from the target list are
expanded into concrete URLs via site-restricted search, each URL is rendered
by a headless browser into a HAR file, and the HARs are analysed to decide
which of the four measurement-task types can test each resource.

The same machinery, with a statistics-emitting hook, produces the feasibility
numbers of §6.1 (Figs. 4–6): how many images of which sizes each domain
hosts, how heavy each page is, and how many cacheable images each page
embeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.tasks import MeasurementTask, TaskType
from repro.datasets.herdict import TargetListEntry
from repro.web.har import HAR, merge_domain_images
from repro.web.headless import HeadlessBrowser
from repro.web.resources import KILOBYTE
from repro.web.search import SearchEngine
from repro.web.url import URL, URLPattern


@dataclass(frozen=True)
class TaskGenerationLimits:
    """Resource-size and safety limits the Task Generator enforces (§5.2).

    The defaults follow the paper: tasks should prefer images deliverable in
    roughly a single packet (the 1 KB analysis bound of Fig. 4; 5 KB is the
    permissive bound), pages loaded in hidden iframes must stay under 100 KB,
    heavy media (flash, video) disqualifies a page, and URLs with obvious
    server side effects are excluded.
    """

    max_image_bytes: int = 1 * KILOBYTE
    permissive_image_bytes: int = 5 * KILOBYTE
    max_page_bytes: int = 100 * KILOBYTE
    require_cacheable_probe: bool = True
    exclude_side_effects: bool = True
    exclude_heavy_media: bool = True
    favicons_only: bool = False
    max_urls_per_pattern: int = 50


# ----------------------------------------------------------------------
# Stage 1: Pattern Expander
# ----------------------------------------------------------------------
class PatternExpander:
    """Expands URL patterns into concrete URLs via site-restricted search."""

    def __init__(self, search_engine: SearchEngine, max_urls: int = 50) -> None:
        self._search = search_engine
        self._max_urls = max_urls

    def expand(self, pattern: URLPattern) -> list[URL]:
        """Concrete URLs matching ``pattern`` (at most ``max_urls``)."""
        return self._search.expand_pattern(pattern, limit=self._max_urls)

    def expand_all(self, patterns: Iterable[URLPattern]) -> dict[str, list[URL]]:
        """Expand every pattern, keyed by its anchor domain."""
        result: dict[str, list[URL]] = {}
        for pattern in patterns:
            result.setdefault(pattern.anchor_domain, []).extend(self.expand(pattern))
        return result


# ----------------------------------------------------------------------
# Stage 2: Target Fetcher
# ----------------------------------------------------------------------
class TargetFetcher:
    """Renders candidate URLs in a headless browser and records HARs."""

    def __init__(self, headless: HeadlessBrowser) -> None:
        self._headless = headless

    def fetch(self, urls: Iterable[URL]) -> list[HAR]:
        """HARs for every URL that rendered successfully."""
        hars = []
        for url in urls:
            har = self._headless.render(url)
            if har.ok:
                hars.append(har)
        return hars

    def fetch_by_domain(self, urls_by_domain: dict[str, list[URL]]) -> dict[str, list[HAR]]:
        """Fetch every domain's candidate URLs, preserving the grouping."""
        return {domain: self.fetch(urls) for domain, urls in urls_by_domain.items()}


# ----------------------------------------------------------------------
# Feasibility statistics (paper §6.1)
# ----------------------------------------------------------------------
@dataclass
class PageStatistics:
    """Per-page numbers behind Figs. 5 and 6."""

    url: URL
    total_size_bytes: int
    cacheable_image_count: int
    loads_heavy_media: bool
    has_side_effects: bool


@dataclass
class DomainAmenability:
    """Per-domain numbers behind Fig. 4 and the §6.1 amenability claims."""

    domain: str
    category: str
    pages_crawled: int
    image_count_total: int
    image_count_under_1kb: int
    image_count_under_5kb: int
    has_favicon: bool
    page_stats: list[PageStatistics] = field(default_factory=list)

    def measurable_with_images(self, limit_bytes: int = KILOBYTE) -> bool:
        """Can the image task measure this domain under ``limit_bytes``?"""
        if limit_bytes >= 5 * KILOBYTE:
            return self.image_count_under_5kb > 0
        if limit_bytes >= KILOBYTE:
            return self.image_count_under_1kb > 0
        return False

    @property
    def measurable_pages(self) -> int:
        """Pages testable by the inline-frame task (Fig. 6 / §6.1)."""
        return sum(
            1
            for stats in self.page_stats
            if stats.total_size_bytes <= 100 * KILOBYTE
            and stats.cacheable_image_count > 0
            and not stats.loads_heavy_media
            and not stats.has_side_effects
        )


@dataclass
class FeasibilityReport:
    """Aggregated feasibility statistics across all crawled domains."""

    domains: list[DomainAmenability] = field(default_factory=list)

    @property
    def all_pages(self) -> list[PageStatistics]:
        return [stats for domain in self.domains for stats in domain.page_stats]

    def images_per_domain(self, limit_bytes: int | None = None) -> list[int]:
        """Image counts per domain, optionally restricted to a size class."""
        counts = []
        for domain in self.domains:
            if limit_bytes is None:
                counts.append(domain.image_count_total)
            elif limit_bytes <= KILOBYTE:
                counts.append(domain.image_count_under_1kb)
            else:
                counts.append(domain.image_count_under_5kb)
        return counts

    def page_sizes_bytes(self) -> list[int]:
        return [stats.total_size_bytes for stats in self.all_pages]

    def cacheable_images_per_page(self, max_page_bytes: int | None = None) -> list[int]:
        return [
            stats.cacheable_image_count
            for stats in self.all_pages
            if max_page_bytes is None or stats.total_size_bytes <= max_page_bytes
        ]

    def fraction_domains_measurable(self, limit_bytes: int = KILOBYTE) -> float:
        """Fraction of domains the image task can measure (paper: >50% at 1 KB)."""
        if not self.domains:
            return 0.0
        return sum(1 for d in self.domains if d.measurable_with_images(limit_bytes)) / len(
            self.domains
        )

    def fraction_pages_measurable(self, max_page_bytes: int = 100 * KILOBYTE) -> float:
        """Fraction of URLs the inline-frame task can measure (paper: <10%)."""
        pages = self.all_pages
        if not pages:
            return 0.0
        measurable = sum(
            1
            for stats in pages
            if stats.total_size_bytes <= max_page_bytes
            and stats.cacheable_image_count > 0
            and not stats.loads_heavy_media
            and not stats.has_side_effects
        )
        return measurable / len(pages)


# ----------------------------------------------------------------------
# Stage 3: Task Generator
# ----------------------------------------------------------------------
class TaskGenerator:
    """Turns HARs into measurement tasks and feasibility statistics."""

    def __init__(self, limits: TaskGenerationLimits | None = None) -> None:
        self.limits = limits or TaskGenerationLimits()

    # -- statistics ------------------------------------------------------
    def analyse_domain(
        self, domain: str, hars: list[HAR], category: str = "uncategorised"
    ) -> DomainAmenability:
        """Compute the per-domain feasibility statistics for ``domain``."""
        images = merge_domain_images(hars)
        domain_images = [
            entry for entry in images.values() if self._url_on_domain(entry.url, domain)
        ]
        page_stats = [
            PageStatistics(
                url=har.page_url,
                total_size_bytes=har.total_size_bytes,
                cacheable_image_count=len(har.cacheable_images),
                loads_heavy_media=har.loads_heavy_media(),
                has_side_effects=har.page_has_side_effects,
            )
            for har in hars
        ]
        has_favicon = any(entry.url.path == "/favicon.ico" for entry in domain_images)
        return DomainAmenability(
            domain=domain,
            category=category,
            pages_crawled=len(hars),
            image_count_total=len(domain_images),
            image_count_under_1kb=sum(
                1 for e in domain_images if e.size_bytes <= KILOBYTE
            ),
            image_count_under_5kb=sum(
                1 for e in domain_images if e.size_bytes <= 5 * KILOBYTE
            ),
            has_favicon=has_favicon,
            page_stats=page_stats,
        )

    @staticmethod
    def _url_on_domain(url: URL, domain: str) -> bool:
        return url.host == domain or url.host.endswith("." + domain)

    # -- task generation ---------------------------------------------------
    def domain_tasks(
        self, domain: str, hars: list[HAR], category: str = "uncategorised"
    ) -> list[MeasurementTask]:
        """Tasks that test filtering of the entire domain (paper §4.3.1)."""
        tasks: list[MeasurementTask] = []
        images = merge_domain_images(hars)
        candidates = [
            entry
            for entry in images.values()
            if self._url_on_domain(entry.url, domain)
            and entry.size_bytes <= self.limits.max_image_bytes
        ]
        if self.limits.favicons_only:
            candidates = [c for c in candidates if c.url.path == "/favicon.ico"]
        if candidates:
            best = min(candidates, key=lambda e: e.size_bytes)
            tasks.append(
                MeasurementTask.new(
                    TaskType.IMAGE,
                    best.url,
                    estimated_overhead_bytes=best.size_bytes,
                    category=category,
                )
            )
        if self.limits.favicons_only:
            return tasks

        stylesheets = {
            str(entry.url): entry
            for har in hars
            for entry in har.entries
            if entry.content_type is not None
            and entry.content_type.name == "STYLESHEET"
            and self._url_on_domain(entry.url, domain)
            and entry.size_bytes > 0
        }
        if stylesheets:
            sheet = min(stylesheets.values(), key=lambda e: e.size_bytes)
            tasks.append(
                MeasurementTask.new(
                    TaskType.STYLE_SHEET,
                    sheet.url,
                    estimated_overhead_bytes=sheet.size_bytes,
                    category=category,
                )
            )

        nosniff_resources = [
            entry
            for har in hars
            for entry in har.entries
            if entry.nosniff and self._url_on_domain(entry.url, domain)
        ]
        if nosniff_resources:
            target = min(nosniff_resources, key=lambda e: e.size_bytes)
            tasks.append(
                MeasurementTask.new(
                    TaskType.SCRIPT,
                    target.url,
                    estimated_overhead_bytes=target.size_bytes,
                    category=category,
                )
            )
        return tasks

    def page_tasks(self, har: HAR, category: str = "uncategorised") -> list[MeasurementTask]:
        """Inline-frame tasks that test filtering of one specific page (§4.3.2)."""
        if self.limits.favicons_only:
            return []
        if self.limits.exclude_side_effects and har.page_has_side_effects:
            return []
        if self.limits.exclude_heavy_media and har.loads_heavy_media():
            return []
        if har.total_size_bytes > self.limits.max_page_bytes:
            return []
        probes = har.cacheable_images if self.limits.require_cacheable_probe else har.images
        if not probes:
            return []
        probe = min(probes, key=lambda e: e.size_bytes)
        return [
            MeasurementTask.new(
                TaskType.INLINE_FRAME,
                har.page_url,
                probe_image_url=probe.url,
                estimated_overhead_bytes=har.total_size_bytes,
                category=category,
            )
        ]

    def generate(
        self, domain: str, hars: list[HAR], category: str = "uncategorised"
    ) -> list[MeasurementTask]:
        """All tasks (domain-level and per-page) for ``domain``."""
        tasks = self.domain_tasks(domain, hars, category)
        for har in hars:
            tasks.extend(self.page_tasks(har, category))
        return tasks


# ----------------------------------------------------------------------
# The full pipeline
# ----------------------------------------------------------------------
@dataclass
class TaskGenerationResult:
    """Output of one run of the generation pipeline."""

    tasks: list[MeasurementTask]
    report: FeasibilityReport
    urls_expanded: int

    def tasks_for_domain(self, domain: str) -> list[MeasurementTask]:
        return [t for t in self.tasks if t.target_domain == domain or t.target_url.host.endswith("." + domain)]

    def tasks_of_type(self, task_type: TaskType) -> list[MeasurementTask]:
        return [t for t in self.tasks if t.task_type is task_type]


class TaskGenerationPipeline:
    """Pattern Expander → Target Fetcher → Task Generator, end to end."""

    def __init__(
        self,
        search_engine: SearchEngine,
        headless: HeadlessBrowser,
        limits: TaskGenerationLimits | None = None,
    ) -> None:
        self.limits = limits or TaskGenerationLimits()
        self.expander = PatternExpander(search_engine, max_urls=self.limits.max_urls_per_pattern)
        self.fetcher = TargetFetcher(headless)
        self.generator = TaskGenerator(self.limits)

    def run(self, entries: Iterable[TargetListEntry]) -> TaskGenerationResult:
        """Run the pipeline over the online entries of a target list."""
        tasks: list[MeasurementTask] = []
        report = FeasibilityReport()
        urls_expanded = 0
        for entry in entries:
            if not entry.online:
                continue
            urls = self.expander.expand(entry.pattern)
            urls_expanded += len(urls)
            hars = self.fetcher.fetch(urls)
            if not hars:
                continue
            report.domains.append(
                self.generator.analyse_domain(entry.domain, hars, entry.category)
            )
            tasks.extend(self.generator.generate(entry.domain, hars, entry.category))
        return TaskGenerationResult(tasks=tasks, report=report, urls_expanded=urls_expanded)
