"""Robustness against measurement poisoning (paper §8).

"Attackers may attempt to submit poisoned measurement results to alter the
conclusions that Encore draws about censorship.  We could try to employ
reputation systems to thwart such attacks, although it would be practically
impossible to completely prevent such poisoning from untrusted clients."

This module implements both sides of that sentence so the trade-off can be
studied: a :class:`PoisoningAttacker` that fabricates submissions designed to
invent (or hide) censorship in a chosen country, and a
:class:`ReputationFilter` that applies the practical defences a collection
server actually has — per-client submission rate limits, consistency checks
against each client's other reports, and down-weighting of clients whose
reports disagree with the rest of their region.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.collection import CollectionServer, Measurement
from repro.core.store import OUTCOME_FAILURE, MeasurementStore
from repro.core.tasks import TaskOutcome, TaskType
from repro.population.geoip import GeoIPDatabase
from repro.web.url import URL


@dataclass
class PoisoningCampaign:
    """What an attacker wants the data to say."""

    target_domain: str
    country_code: str
    #: ``fabricate_blocking`` floods failure reports to invent censorship;
    #: otherwise the attacker floods success reports to mask real censorship.
    fabricate_blocking: bool = True
    #: How many fake submissions the attacker sends.
    submissions: int = 500
    #: How many distinct client identities (IP addresses) the attacker controls.
    client_identities: int = 10


class PoisoningAttacker:
    """Fabricates measurement submissions and injects them into a collection."""

    def __init__(self, geoip: GeoIPDatabase | None = None,
                 rng: np.random.Generator | int | None = None) -> None:
        self.geoip = geoip or GeoIPDatabase()
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._ids = itertools.count(10_000_000)

    def forge_measurements(self, campaign: PoisoningCampaign) -> list[Measurement]:
        """Build the fake measurements for ``campaign``."""
        outcome = TaskOutcome.FAILURE if campaign.fabricate_blocking else TaskOutcome.SUCCESS
        identities = [
            self.geoip.allocate_ip(campaign.country_code, self._rng)
            for _ in range(max(1, campaign.client_identities))
        ]
        url = URL.parse(f"http://{campaign.target_domain}/favicon.ico")
        forged = []
        for index in range(campaign.submissions):
            forged.append(
                Measurement(
                    measurement_id=f"forged-{next(self._ids)}",
                    task_type=TaskType.IMAGE,
                    target_url=url,
                    target_domain=campaign.target_domain,
                    outcome=outcome,
                    elapsed_ms=float(self._rng.uniform(10.0, 200.0)),
                    client_ip=identities[index % len(identities)],
                    country_code=campaign.country_code,
                    isp=f"{campaign.country_code.lower()}-attacker",
                    browser_family="chrome",
                    origin_domain=None,
                    day=int(self._rng.integers(0, 30)),
                )
            )
        return forged

    def inject(self, collection: CollectionServer, campaign: PoisoningCampaign) -> int:
        """Append forged measurements to ``collection``; returns how many."""
        forged = self.forge_measurements(campaign)
        return collection.ingest_measurements(forged)


@dataclass
class ReputationReport:
    """What the filter kept, what it dropped, and why."""

    kept: list[Measurement] = field(default_factory=list)
    dropped_rate_limited: int = 0
    dropped_low_reputation: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_rate_limited + self.dropped_low_reputation


@dataclass
class StoreReputationReport:
    """A reputation verdict over a columnar store: a row mask plus drop tallies.

    The store-native sibling of :class:`ReputationReport`: nothing is
    materialized until asked, so filtering a spilled or multi-worker merged
    corpus stays cheap.
    """

    store: MeasurementStore
    keep_mask: np.ndarray
    dropped_rate_limited: int = 0
    dropped_low_reputation: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_rate_limited + self.dropped_low_reputation

    @property
    def kept_indices(self) -> np.ndarray:
        return np.flatnonzero(self.keep_mask)

    def kept_measurements(self) -> list[Measurement]:
        return self.store.rows(self.kept_indices)


class ReputationFilter:
    """Practical defences against poisoned submissions.

    Two mechanisms, both of which a real collection server can apply without
    trusting clients:

    * **Rate limiting** — a single client IP contributing far more
      submissions per (domain, country) than its peers is capped at
      ``max_submissions_per_client``; an attacker must therefore control many
      addresses to move the aggregate.
    * **Minority down-weighting** — if a client's verdicts for a (domain,
      country) pair disagree with the verdict of the majority of *other
      clients* in that pair and that client contributes more than
      ``suspicious_share`` of the pair's submissions, the client's
      submissions are dropped.  Honest regional censorship is unaffected
      because there the majority of clients agree.
    """

    def __init__(self, max_submissions_per_client: int = 10,
                 suspicious_share: float = 0.2) -> None:
        if max_submissions_per_client < 1:
            raise ValueError("max_submissions_per_client must be positive")
        if not 0.0 < suspicious_share <= 1.0:
            raise ValueError("suspicious_share must be in (0, 1]")
        self.max_submissions_per_client = max_submissions_per_client
        self.suspicious_share = suspicious_share

    # ------------------------------------------------------------------
    def apply(self, measurements: list[Measurement]) -> ReputationReport:
        """Filter ``measurements`` and report what was kept and dropped.

        Implemented as columnar group-bys over (domain, country, client)
        keys — identical verdicts to the readable per-row
        :meth:`apply_reference` walk (an equivalence the tests pin), at
        array speed.
        """
        if not measurements:
            return ReputationReport()
        _, domain = np.unique(
            np.asarray([m.target_domain for m in measurements], dtype=np.str_),
            return_inverse=True,
        )
        countries, country = np.unique(
            np.asarray([m.country_code for m in measurements], dtype=np.str_),
            return_inverse=True,
        )
        _, ip = np.unique(
            np.asarray([m.client_ip for m in measurements], dtype=np.str_),
            return_inverse=True,
        )
        failed = np.asarray([m.failed for m in measurements], dtype=bool)
        pair = domain.astype(np.int64) * len(countries) + country
        keep, dropped_rate, dropped_rep = self._columnar_verdict(pair, ip, failed)
        return ReputationReport(
            kept=[m for m, kept in zip(measurements, keep.tolist()) if kept],
            dropped_rate_limited=dropped_rate,
            dropped_low_reputation=dropped_rep,
        )

    def apply_store(
        self, collection: "MeasurementStore | CollectionServer"
    ) -> StoreReputationReport:
        """Filter a columnar store (or a collection server) in place.

        Runs the same group-by verdict straight over the store's
        dictionary-code columns — no :class:`Measurement` is ever built, so
        this is the natural path for spilled or multi-worker merged corpora.
        """
        store = collection.store if isinstance(collection, CollectionServer) else collection
        if len(store) == 0:
            return StoreReputationReport(store, np.zeros(0, dtype=bool))
        domain = store.column("domain").astype(np.int64)
        country = store.column("country").astype(np.int64)
        _, ip = np.unique(store.column("client_ip"), return_inverse=True)
        failed = store.column("outcome") == OUTCOME_FAILURE
        pair = domain * (int(country.max()) + 1) + country
        keep, dropped_rate, dropped_rep = self._columnar_verdict(pair, ip, failed)
        return StoreReputationReport(
            store=store,
            keep_mask=keep,
            dropped_rate_limited=dropped_rate,
            dropped_low_reputation=dropped_rep,
        )

    def _columnar_verdict(
        self, pair: np.ndarray, ip: np.ndarray, failed: np.ndarray
    ) -> tuple[np.ndarray, int, int]:
        """(keep mask, rate-limited drops, reputation drops) for coded rows.

        ``pair`` encodes (domain, country) and ``ip`` the client identity as
        integer codes; both passes of the reference walk become grouped
        reductions over a combined ``pair * n_clients + ip`` key.
        """
        n = len(pair)
        n_ips = int(ip.max()) + 1
        key = pair * n_ips + ip

        # Pass 1: per-client rate limiting = "keep each key's first
        # ``max_submissions_per_client`` occurrences, in arrival order".
        # A stable sort groups the keys without losing arrival order, so the
        # occurrence rank is the position within the sorted run.
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        run_starts = np.flatnonzero(np.r_[True, sorted_key[1:] != sorted_key[:-1]])
        run_lengths = np.diff(np.r_[run_starts, n])
        occurrence = np.empty(n, dtype=np.int64)
        occurrence[order] = np.arange(n) - np.repeat(run_starts, run_lengths)
        keep = occurrence < self.max_submissions_per_client
        dropped_rate = int(n - np.count_nonzero(keep))

        # Pass 2 over the rate-limited survivors: per (pair, client) counts,
        # per-pair medians, dominance, and the minority-verdict test.
        survivors = np.flatnonzero(keep)
        triple_keys, triple_of_row, triple_rows = np.unique(
            key[survivors], return_inverse=True, return_counts=True
        )
        pair_of_triple = triple_keys // n_ips
        _, pair_of = np.unique(pair_of_triple, return_inverse=True)
        n_pairs = pair_of.max() + 1 if len(pair_of) else 0
        clients_per_pair = np.bincount(pair_of, minlength=n_pairs)
        rows_per_pair = np.bincount(
            pair_of, weights=triple_rows, minlength=n_pairs
        ).astype(np.int64)

        # Median client volume per pair: sort the per-client counts within
        # each pair and take the element at ``len // 2``, exactly like the
        # reference's ``counts[len(counts) // 2]``.
        by_pair_then_count = np.lexsort((triple_rows, pair_of))
        pair_starts = np.r_[0, np.cumsum(clients_per_pair)[:-1]]
        median_rows = triple_rows[by_pair_then_count][
            pair_starts + clients_per_pair // 2
        ]

        dominant = (
            triple_rows / rows_per_pair[pair_of] > self.suspicious_share
        ) | (triple_rows > np.maximum(3, 5 * median_rows[pair_of]))

        fails_per_triple = np.bincount(
            triple_of_row, weights=failed[survivors]
        ).astype(np.int64)
        baseline_rows = np.bincount(
            pair_of, weights=np.where(dominant, 0, triple_rows), minlength=n_pairs
        ).astype(np.int64)
        baseline_fails = np.bincount(
            pair_of, weights=np.where(dominant, 0, fails_per_triple), minlength=n_pairs
        ).astype(np.int64)
        baseline_rate = np.divide(
            baseline_fails,
            baseline_rows,
            out=np.zeros(n_pairs, dtype=np.float64),
            where=baseline_rows > 0,
        )
        own_rate = fails_per_triple / triple_rows
        suspicious = (
            dominant
            & (clients_per_pair[pair_of] >= 2)
            & (baseline_rows[pair_of] > 0)
            & (np.abs(own_rate - baseline_rate[pair_of]) > 0.5)
        )
        dropped_rows = suspicious[triple_of_row]
        keep[survivors[dropped_rows]] = False
        return keep, dropped_rate, int(np.count_nonzero(dropped_rows))

    # ------------------------------------------------------------------
    def apply_reference(self, measurements: list[Measurement]) -> ReputationReport:
        """The readable per-row reference implementation of :meth:`apply`.

        Kept verbatim from the original filter: the equivalence tests pin
        that the columnar verdict matches this walk row for row.
        """
        report = ReputationReport()

        # Pass 1: per-client rate limiting within each (domain, country) pair.
        per_client_counts: Counter = Counter()
        rate_limited: list[Measurement] = []
        for m in measurements:
            key = (m.target_domain, m.country_code, m.client_ip)
            per_client_counts[key] += 1
            if per_client_counts[key] > self.max_submissions_per_client:
                report.dropped_rate_limited += 1
            else:
                rate_limited.append(m)

        # Pass 2: drop dominant clients whose verdicts contradict their peers.
        by_pair: dict[tuple[str, str], list[Measurement]] = defaultdict(list)
        for m in rate_limited:
            by_pair[(m.target_domain, m.country_code)].append(m)

        suspicious_clients: set[tuple[str, str, str]] = set()
        for (domain, country), pair_measurements in by_pair.items():
            total = len(pair_measurements)
            by_client: dict[str, list[Measurement]] = defaultdict(list)
            for m in pair_measurements:
                by_client[m.client_ip].append(m)
            if len(by_client) < 2:
                continue
            counts = sorted(len(own) for own in by_client.values())
            median_count = counts[len(counts) // 2]

            # A client is "dominant" if it supplies an outsized share of the
            # pair's submissions, either relative to the pair total or
            # relative to what a typical client contributes.  The honest
            # baseline is formed from the *non-dominant* clients so that a
            # flood of Sybil identities cannot vote itself into the majority.
            def is_dominant(own: list[Measurement]) -> bool:
                return (
                    len(own) / total > self.suspicious_share
                    or len(own) > max(3, 5 * median_count)
                )

            baseline = [
                m
                for client_ip, own in by_client.items()
                if not is_dominant(own)
                for m in own
            ]
            if not baseline:
                continue
            baseline_failure_rate = sum(1 for m in baseline if m.failed) / len(baseline)
            for client_ip, own in by_client.items():
                if not is_dominant(own):
                    continue
                own_failure_rate = sum(1 for m in own if m.failed) / len(own)
                if abs(own_failure_rate - baseline_failure_rate) > 0.5:
                    suspicious_clients.add((domain, country, client_ip))

        for m in rate_limited:
            if (m.target_domain, m.country_code, m.client_ip) in suspicious_clients:
                report.dropped_low_reputation += 1
            else:
                report.kept.append(m)
        return report

    def filtered_measurements(self, measurements: list[Measurement]) -> list[Measurement]:
        """Just the measurements that survive filtering."""
        return self.apply(measurements).kept
