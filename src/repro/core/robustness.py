"""Robustness against measurement poisoning (paper §8), on the columnar store.

"Attackers may attempt to submit poisoned measurement results to alter the
conclusions that Encore draws about censorship.  We could try to employ
reputation systems to thwart such attacks, although it would be practically
impossible to completely prevent such poisoning from untrusted clients."

This module implements both sides of that sentence so the trade-off can be
studied at campaign scale:

* :class:`PoisoningAttacker` fabricates submissions designed to invent (or
  hide) censorship in a chosen country.  :meth:`PoisoningAttacker.forge_columns`
  is the native path: it emits a
  :class:`~repro.core.collection.ColumnarRecords` payload (dictionary-encoded
  value tables + index arrays) that ingests straight into a
  :class:`~repro.core.store.MeasurementStore` — spilled or resident — with
  zero per-row Python work, and is pinned row-for-row identical to the
  readable :meth:`~PoisoningAttacker.forge_measurements` row builder for a
  fixed rng.
* :class:`ReputationFilter` applies the practical defences a collection
  server actually has — per-client submission rate limits and down-weighting
  of dominant clients whose verdicts contradict their region's peers — as
  columnar group-bys; :meth:`ReputationFilter.apply_store` runs straight on a
  store, and its :class:`StoreReputationReport` re-runs detection over only
  the surviving rows (:meth:`StoreReputationReport.success_counts`) without
  materializing any of them.
* :class:`AdversarySweep` drives attack-budget × identity grids end-to-end on
  the store path: each grid cell's forged corpus is sealed into ``.npz``
  segments plus a JSON manifest (the same seal/manifest/adopt machinery
  :mod:`repro.core.shard` uses for sharded campaigns, optionally fanned out
  across worker processes), merged with the honest store by zero-copy
  segment adoption into a per-cell poisoned store, and scored with the
  binomial detector before and after reputation filtering.
"""

from __future__ import annotations

import multiprocessing
import shutil
import tempfile
from collections import Counter, defaultdict
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.collection import CollectionServer, ColumnarRecords, Measurement
from repro.core.inference import BinomialFilteringDetector
from repro.core.query import masked_grouped_success_counts
from repro.core.shard import (
    MANIFEST_NAME,
    StoreMerger,
    available_cpu_count,
    manifest_segments_exist,
    read_manifest,
    segment_row_counts,
    serialize_value_tables,
    write_manifest,
)
from repro.core.store import (
    OUTCOME_FAILURE,
    DictColumn,
    GroupedCounts,
    MeasurementStore,
)
from repro.core.tasks import TaskOutcome, TaskType
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_TRACER
from repro.population.geoip import GeoIPDatabase
from repro.web.url import URL


@dataclass
class PoisoningCampaign:
    """What an attacker wants the data to say."""

    target_domain: str
    country_code: str
    #: ``fabricate_blocking`` floods failure reports to invent censorship;
    #: otherwise the attacker floods success reports to mask real censorship.
    fabricate_blocking: bool = True
    #: How many fake submissions the attacker sends.
    submissions: int = 500
    #: How many distinct client identities (IP addresses) the attacker controls.
    client_identities: int = 10


class PoisoningAttacker:
    """Fabricates measurement submissions and injects them into a collection.

    Both forge paths draw from the same attacker state (rng stream, GeoIP
    identity counters, measurement-id counter) in the same order, so for a
    fixed rng :meth:`forge_columns` is row-for-row identical to
    :meth:`forge_measurements` — an equivalence the tests pin.
    """

    #: First forged measurement-id ordinal (far above any campaign's ids).
    FIRST_FORGED_ID = 10_000_000

    def __init__(self, geoip: GeoIPDatabase | None = None,
                 rng: np.random.Generator | int | None = None) -> None:
        self.geoip = geoip or GeoIPDatabase()
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._next_id = self.FIRST_FORGED_ID

    def _draw(self, campaign: PoisoningCampaign, rng: np.random.Generator | None):
        """The shared per-campaign draws, consumed identically by both paths."""
        rng = rng if rng is not None else self._rng
        n = campaign.submissions
        identities = self.geoip.allocate_ips(
            campaign.country_code, max(1, campaign.client_identities)
        )
        first_id = self._next_id
        self._next_id += n
        ids = np.char.add(
            "forged-", np.arange(first_id, first_id + n, dtype=np.int64).astype(np.str_)
        )
        elapsed = rng.uniform(10.0, 200.0, size=n)
        day = rng.integers(0, 30, size=n)
        outcome = TaskOutcome.FAILURE if campaign.fabricate_blocking else TaskOutcome.SUCCESS
        url = URL.parse(f"http://{campaign.target_domain}/favicon.ico")
        return ids, identities, elapsed, day, outcome, url

    def forge_measurements(
        self, campaign: PoisoningCampaign, *, rng: np.random.Generator | None = None
    ) -> list[Measurement]:
        """The fake measurements for ``campaign``, as materialized rows.

        The readable row-builder reference; :meth:`forge_columns` produces
        the same corpus without constructing any of these objects.
        """
        ids, identities, elapsed, day, outcome, url = self._draw(campaign, rng)
        k = len(identities)
        isp = f"{campaign.country_code.lower()}-attacker"
        return [
            Measurement(
                measurement_id=measurement_id,
                task_type=TaskType.IMAGE,
                target_url=url,
                target_domain=campaign.target_domain,
                outcome=outcome,
                elapsed_ms=elapsed_ms,
                client_ip=identities[index % k],
                country_code=campaign.country_code,
                isp=isp,
                browser_family="chrome",
                origin_domain=None,
                day=day_of_row,
            )
            for index, (measurement_id, elapsed_ms, day_of_row) in enumerate(
                zip(ids.tolist(), elapsed.tolist(), day.tolist())
            )
        ]

    def forge_columns(
        self, campaign: PoisoningCampaign, *, rng: np.random.Generator | None = None
    ) -> ColumnarRecords:
        """The fake submissions for ``campaign`` as a columnar payload.

        Everything repeated travels as a :class:`DictColumn` value table —
        the Sybil identities are the "visits", sharing one index array
        between ``client_ip`` and ``country_code`` exactly like the batch
        executor's payloads — so the corpus ingests into a store (via
        :meth:`ColumnarRecords.append_to` or
        :meth:`CollectionServer.ingest_columns`) with zero per-row Python
        work.
        """
        ids, identities, elapsed, day, outcome, url = self._draw(campaign, rng)
        n = campaign.submissions
        k = len(identities)
        identity_of_row = np.arange(n, dtype=np.int64) % k
        constant = np.zeros(n, dtype=np.int64)
        return ColumnarRecords(
            measurement_id=ids,
            task_type=DictColumn((TaskType.IMAGE,), constant),
            target_url=DictColumn((url,), constant),
            target_domain=DictColumn((campaign.target_domain,), constant),
            outcome=DictColumn((outcome,), constant),
            elapsed_ms=elapsed,
            probe_time_ms=np.full(n, np.nan),
            client_ip=DictColumn(np.asarray(identities, dtype=np.str_), identity_of_row),
            country_code=DictColumn([campaign.country_code] * k, identity_of_row),
            isp=DictColumn((f"{campaign.country_code.lower()}-attacker",), constant),
            browser_family=DictColumn(("chrome",), constant),
            origin_domain=DictColumn((None,), constant),
            day=day,
            is_automated=np.zeros(n, dtype=bool),
        )

    def inject(self, collection: CollectionServer, campaign: PoisoningCampaign) -> int:
        """Forge and ingest ``campaign``'s submissions; returns how many.

        Rides the columnar path end to end: the collection server geolocates
        the Sybil identity table (one lookup per identity, not per row) and
        appends the columns to its store.
        """
        return collection.ingest_columns(self.forge_columns(campaign))


@dataclass
class ReputationReport:
    """What the filter kept, what it dropped, and why."""

    kept: list[Measurement] = field(default_factory=list)
    dropped_rate_limited: int = 0
    dropped_low_reputation: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_rate_limited + self.dropped_low_reputation


@dataclass
class StoreReputationReport:
    """A reputation verdict over a columnar store: a row mask plus drop tallies.

    The store-native sibling of :class:`ReputationReport`: nothing is
    materialized until asked, so filtering a spilled or multi-worker merged
    corpus stays cheap.
    """

    store: MeasurementStore
    keep_mask: np.ndarray
    dropped_rate_limited: int = 0
    dropped_low_reputation: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_rate_limited + self.dropped_low_reputation

    @property
    def kept_indices(self) -> np.ndarray:
        return np.flatnonzero(self.keep_mask)

    def kept_measurements(self) -> list[Measurement]:
        return self.store.rows(self.kept_indices)

    def success_counts(self, exclude_automated: bool = True) -> GroupedCounts:
        """Per-(domain, country) totals over only the kept rows.

        Feed this to ``BinomialFilteringDetector.detect_from_counts`` to
        re-run detection on the filtered corpus — the store-path equivalent
        of detecting over ``report.kept`` — without materializing a row.
        """
        return masked_grouped_success_counts(
            self.store, self.keep_mask, exclude_automated=exclude_automated
        )


class ReputationFilter:
    """Practical defences against poisoned submissions.

    Two mechanisms, both of which a real collection server can apply without
    trusting clients:

    * **Rate limiting** — a single client IP contributing far more
      submissions per (domain, country) than its peers is capped at
      ``max_submissions_per_client``; an attacker must therefore control many
      addresses to move the aggregate.
    * **Minority down-weighting** — if a client's verdicts for a (domain,
      country) pair disagree with the verdict of the majority of *other
      clients* in that pair by more than the pair's disagreement threshold
      and that client contributes more than ``suspicious_share`` of the
      pair's submissions, the client's submissions are dropped.  Honest
      regional censorship is unaffected because there the majority of
      clients agree.

    The disagreement threshold is per-country via the
    :meth:`_country_thresholds` hook — the filter-side mirror of the
    detector's ``_cell_priors`` — which the base class pins to the constant
    ``disagreement_threshold`` and :class:`AdaptiveReputationFilter` derives
    from each country's background failure rate.
    """

    def __init__(self, max_submissions_per_client: int = 10,
                 suspicious_share: float = 0.2,
                 disagreement_threshold: float = 0.5) -> None:
        if max_submissions_per_client < 1:
            raise ValueError("max_submissions_per_client must be positive")
        if not 0.0 < suspicious_share <= 1.0:
            raise ValueError("suspicious_share must be in (0, 1]")
        if not 0.0 < disagreement_threshold <= 1.0:
            raise ValueError("disagreement_threshold must be in (0, 1]")
        self.max_submissions_per_client = max_submissions_per_client
        self.suspicious_share = suspicious_share
        self.disagreement_threshold = disagreement_threshold

    # ------------------------------------------------------------------
    def _country_thresholds(
        self, country_rows: np.ndarray, country_fails: np.ndarray
    ) -> np.ndarray:
        """Per-country disagreement thresholds; the adaptive subclass overrides.

        ``country_rows``/``country_fails`` are the corpus's per-country
        submission and failure tallies, in country-code order; the base
        filter ignores them and applies one constant.
        """
        return np.full(len(country_rows), self.disagreement_threshold)

    # ------------------------------------------------------------------
    def apply(self, measurements: list[Measurement]) -> ReputationReport:
        """Filter ``measurements`` and report what was kept and dropped.

        Implemented as columnar group-bys over (domain, country, client)
        keys — identical verdicts to the readable per-row
        :meth:`apply_reference` walk (an equivalence the tests pin), at
        array speed.
        """
        if not measurements:
            return ReputationReport()
        _, domain = np.unique(
            np.asarray([m.target_domain for m in measurements], dtype=np.str_),
            return_inverse=True,
        )
        countries, country = np.unique(
            np.asarray([m.country_code for m in measurements], dtype=np.str_),
            return_inverse=True,
        )
        _, ip = np.unique(
            np.asarray([m.client_ip for m in measurements], dtype=np.str_),
            return_inverse=True,
        )
        failed = np.asarray([m.failed for m in measurements], dtype=bool)
        pair = domain.astype(np.int64) * len(countries) + country
        keep, dropped_rate, dropped_rep = self._columnar_verdict(
            pair, ip, failed, len(countries),
            self._threshold_table(country, failed, len(countries)),
        )
        return ReputationReport(
            kept=[m for m, kept in zip(measurements, keep.tolist()) if kept],
            dropped_rate_limited=dropped_rate,
            dropped_low_reputation=dropped_rep,
        )

    def apply_store(
        self, collection: "MeasurementStore | CollectionServer"
    ) -> StoreReputationReport:
        """Filter a columnar store (or a collection server) in place.

        Runs the same group-by verdict straight over the store's
        dictionary-code columns — no :class:`Measurement` is ever built, so
        this is the natural path for spilled or multi-worker merged corpora.
        """
        store = collection.store if isinstance(collection, CollectionServer) else collection
        if len(store) == 0:
            return StoreReputationReport(store, np.zeros(0, dtype=bool))
        domain = store.column("domain").astype(np.int64)
        country = store.column("country").astype(np.int64)
        _, ip = np.unique(store.column("client_ip"), return_inverse=True)
        failed = store.column("outcome") == OUTCOME_FAILURE
        n_countries = int(country.max()) + 1
        pair = domain * n_countries + country
        keep, dropped_rate, dropped_rep = self._columnar_verdict(
            pair, ip, failed, n_countries,
            self._threshold_table(country, failed, n_countries),
        )
        return StoreReputationReport(
            store=store,
            keep_mask=keep,
            dropped_rate_limited=dropped_rate,
            dropped_low_reputation=dropped_rep,
        )

    def _threshold_table(
        self, country: np.ndarray, failed: np.ndarray, n_countries: int
    ) -> np.ndarray:
        """Per-country-code disagreement thresholds for this corpus."""
        rows = np.bincount(country, minlength=n_countries)
        fails = np.bincount(country[failed], minlength=n_countries)
        return np.asarray(
            self._country_thresholds(rows, fails), dtype=np.float64
        )

    def _columnar_verdict(
        self, pair: np.ndarray, ip: np.ndarray, failed: np.ndarray,
        n_countries: int, thresholds: np.ndarray,
    ) -> tuple[np.ndarray, int, int]:
        """(keep mask, rate-limited drops, reputation drops) for coded rows.

        ``pair`` encodes (domain, country) and ``ip`` the client identity as
        integer codes (``pair % n_countries`` recovers the country, which
        selects each pair's disagreement threshold from ``thresholds``);
        both passes of the reference walk become grouped reductions over a
        combined ``pair * n_clients + ip`` key.
        """
        n = len(pair)
        n_ips = int(ip.max()) + 1
        key = pair * n_ips + ip

        # Pass 1: per-client rate limiting = "keep each key's first
        # ``max_submissions_per_client`` occurrences, in arrival order".
        # A stable sort groups the keys without losing arrival order, so the
        # occurrence rank is the position within the sorted run.
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        run_starts = np.flatnonzero(np.r_[True, sorted_key[1:] != sorted_key[:-1]])
        run_lengths = np.diff(np.r_[run_starts, n])
        occurrence = np.empty(n, dtype=np.int64)
        occurrence[order] = np.arange(n) - np.repeat(run_starts, run_lengths)
        keep = occurrence < self.max_submissions_per_client
        dropped_rate = int(n - np.count_nonzero(keep))

        # Pass 2 over the rate-limited survivors: per (pair, client) counts,
        # per-pair medians, dominance, and the minority-verdict test.
        survivors = np.flatnonzero(keep)
        triple_keys, triple_of_row, triple_rows = np.unique(
            key[survivors], return_inverse=True, return_counts=True
        )
        pair_of_triple = triple_keys // n_ips
        unique_pairs, pair_of = np.unique(pair_of_triple, return_inverse=True)
        pair_thresholds = thresholds[unique_pairs % n_countries]
        n_pairs = pair_of.max() + 1 if len(pair_of) else 0
        clients_per_pair = np.bincount(pair_of, minlength=n_pairs)
        rows_per_pair = np.bincount(
            pair_of, weights=triple_rows, minlength=n_pairs
        ).astype(np.int64)

        # Median client volume per pair: sort the per-client counts within
        # each pair and take the element at ``len // 2``, exactly like the
        # reference's ``counts[len(counts) // 2]``.
        by_pair_then_count = np.lexsort((triple_rows, pair_of))
        pair_starts = np.r_[0, np.cumsum(clients_per_pair)[:-1]]
        median_rows = triple_rows[by_pair_then_count][
            pair_starts + clients_per_pair // 2
        ]

        dominant = (
            triple_rows / rows_per_pair[pair_of] > self.suspicious_share
        ) | (triple_rows > np.maximum(3, 5 * median_rows[pair_of]))

        fails_per_triple = np.bincount(
            triple_of_row, weights=failed[survivors]
        ).astype(np.int64)
        baseline_rows = np.bincount(
            pair_of, weights=np.where(dominant, 0, triple_rows), minlength=n_pairs
        ).astype(np.int64)
        baseline_fails = np.bincount(
            pair_of, weights=np.where(dominant, 0, fails_per_triple), minlength=n_pairs
        ).astype(np.int64)
        baseline_rate = np.divide(
            baseline_fails,
            baseline_rows,
            out=np.zeros(n_pairs, dtype=np.float64),
            where=baseline_rows > 0,
        )
        own_rate = fails_per_triple / triple_rows
        suspicious = (
            dominant
            & (clients_per_pair[pair_of] >= 2)
            & (baseline_rows[pair_of] > 0)
            & (np.abs(own_rate - baseline_rate[pair_of]) > pair_thresholds[pair_of])
        )
        dropped_rows = suspicious[triple_of_row]
        keep[survivors[dropped_rows]] = False
        return keep, dropped_rate, int(np.count_nonzero(dropped_rows))

    # ------------------------------------------------------------------
    def apply_reference(self, measurements: list[Measurement]) -> ReputationReport:
        """The readable per-row reference implementation of :meth:`apply`.

        Kept verbatim from the original filter (the 0.5 constant became the
        per-country threshold lookup when the adaptive hook landed): the
        equivalence tests pin that the columnar verdict matches this walk
        row for row.
        """
        report = ReputationReport()
        thresholds = self.country_thresholds(measurements)

        # Pass 1: per-client rate limiting within each (domain, country) pair.
        per_client_counts: Counter = Counter()
        rate_limited: list[Measurement] = []
        for m in measurements:
            key = (m.target_domain, m.country_code, m.client_ip)
            per_client_counts[key] += 1
            if per_client_counts[key] > self.max_submissions_per_client:
                report.dropped_rate_limited += 1
            else:
                rate_limited.append(m)

        # Pass 2: drop dominant clients whose verdicts contradict their peers.
        by_pair: dict[tuple[str, str], list[Measurement]] = defaultdict(list)
        for m in rate_limited:
            by_pair[(m.target_domain, m.country_code)].append(m)

        suspicious_clients: set[tuple[str, str, str]] = set()
        for (domain, country), pair_measurements in by_pair.items():
            total = len(pair_measurements)
            by_client: dict[str, list[Measurement]] = defaultdict(list)
            for m in pair_measurements:
                by_client[m.client_ip].append(m)
            if len(by_client) < 2:
                continue
            counts = sorted(len(own) for own in by_client.values())
            median_count = counts[len(counts) // 2]

            # A client is "dominant" if it supplies an outsized share of the
            # pair's submissions, either relative to the pair total or
            # relative to what a typical client contributes.  The honest
            # baseline is formed from the *non-dominant* clients so that a
            # flood of Sybil identities cannot vote itself into the majority.
            def is_dominant(own: list[Measurement]) -> bool:
                return (
                    len(own) / total > self.suspicious_share
                    or len(own) > max(3, 5 * median_count)
                )

            baseline = [
                m
                for client_ip, own in by_client.items()
                if not is_dominant(own)
                for m in own
            ]
            if not baseline:
                continue
            baseline_failure_rate = sum(1 for m in baseline if m.failed) / len(baseline)
            for client_ip, own in by_client.items():
                if not is_dominant(own):
                    continue
                own_failure_rate = sum(1 for m in own if m.failed) / len(own)
                if abs(own_failure_rate - baseline_failure_rate) > thresholds[country]:
                    suspicious_clients.add((domain, country, client_ip))

        for m in rate_limited:
            if (m.target_domain, m.country_code, m.client_ip) in suspicious_clients:
                report.dropped_low_reputation += 1
            else:
                report.kept.append(m)
        return report

    def country_thresholds(self, measurements: list[Measurement]) -> dict[str, float]:
        """The per-country disagreement thresholds this corpus would get.

        The row-level view of the :meth:`_country_thresholds` hook, used by
        the reference walk (and handy for inspecting what the adaptive
        subclass decided); per-country values are identical to what the
        columnar verdict applies.
        """
        codes = sorted({m.country_code for m in measurements})
        if not codes:
            return {}
        index = {code: i for i, code in enumerate(codes)}
        rows = np.zeros(len(codes), dtype=np.int64)
        fails = np.zeros(len(codes), dtype=np.int64)
        for m in measurements:
            i = index[m.country_code]
            rows[i] += 1
            if m.failed:
                fails[i] += 1
        thresholds = np.asarray(self._country_thresholds(rows, fails), dtype=np.float64)
        return dict(zip(codes, thresholds.tolist()))

    def filtered_measurements(self, measurements: list[Measurement]) -> list[Measurement]:
        """Just the measurements that survive filtering."""
        return self.apply(measurements).kept


class AdaptiveReputationFilter(ReputationFilter):
    """Per-country disagreement thresholds (ROADMAP follow-up to §8 defences).

    The fixed filter judges a dominant client "contradictory" when its
    failure rate strays more than 0.5 from its peers' — conservative in
    pristine countries and trigger-happy in countries whose networks fail a
    lot on their own (where honest heavy contributors naturally scatter).
    Mirroring :class:`~repro.core.inference.AdaptiveFilteringDetector`'s
    ``_cell_priors`` hook, this subclass derives each country's threshold
    from its background failure rate: ``clamp(margin + failure_rate,
    min_threshold, max_threshold)`` — the flakier the country's baseline,
    the more disagreement a dominant client is allowed before being
    dropped.  Countries with no submissions get ``min_threshold``.
    """

    def __init__(
        self,
        max_submissions_per_client: int = 10,
        suspicious_share: float = 0.2,
        min_threshold: float = 0.5,
        max_threshold: float = 0.85,
        margin: float = 0.45,
    ) -> None:
        super().__init__(
            max_submissions_per_client=max_submissions_per_client,
            suspicious_share=suspicious_share,
            disagreement_threshold=min_threshold,
        )
        if not 0.0 < min_threshold <= max_threshold <= 1.0:
            raise ValueError("need 0 < min_threshold <= max_threshold <= 1")
        if not 0.0 < margin < 1.0:
            raise ValueError("margin must be in (0, 1)")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.margin = margin

    def _country_thresholds(
        self, country_rows: np.ndarray, country_fails: np.ndarray
    ) -> np.ndarray:
        failure_rate = np.divide(
            country_fails,
            country_rows,
            out=np.zeros(len(country_rows), dtype=np.float64),
            where=country_rows > 0,
        )
        return np.clip(self.margin + failure_rate, self.min_threshold, self.max_threshold)


# ----------------------------------------------------------------------
# Attack-budget sweeps on the store path
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepCell:
    """One grid cell's verdicts: an attack budget and what the defences saw."""

    submissions: int
    identities: int
    #: Rows the attacker actually forged (== ``submissions``).
    forged: int
    #: Rows in the cell's poisoned store (honest corpus + forged).
    poisoned_rows: int
    #: (domain, country) pairs the undefended detector flags.
    naive_pairs: frozenset[tuple[str, str]]
    #: (domain, country) pairs still flagged after reputation filtering.
    defended_pairs: frozenset[tuple[str, str]]
    dropped_rate_limited: int
    dropped_low_reputation: int
    #: The detection the attacker tried to fabricate (or mask).
    target_pair: tuple[str, str]
    #: The attack's direction: ``True`` floods failures to *invent* the
    #: target detection, ``False`` floods successes to *mask* a real one.
    fabricate_blocking: bool = True

    @property
    def naive_fooled(self) -> bool:
        """Whether the undefended detector flags the fabricated target pair."""
        return self.target_pair in self.naive_pairs

    @property
    def defended_fooled(self) -> bool:
        """Whether the fabricated pair survives reputation filtering."""
        return self.target_pair in self.defended_pairs

    @property
    def naive_masked(self) -> bool:
        """Whether the undefended detector lost the (real) target detection."""
        return self.target_pair not in self.naive_pairs

    @property
    def defended_masked(self) -> bool:
        """Whether the target detection stays lost after reputation filtering."""
        return self.target_pair not in self.defended_pairs

    @property
    def attack_succeeded_naive(self) -> bool:
        """Did the attack achieve its goal against the undefended detector?"""
        return self.naive_fooled if self.fabricate_blocking else self.naive_masked

    @property
    def attack_succeeded_defended(self) -> bool:
        """Did the attack achieve its goal despite reputation filtering?"""
        return self.defended_fooled if self.fabricate_blocking else self.defended_masked

    def detections_survive(self, expected) -> bool:
        """Whether every expected real detection is still flagged after filtering."""
        return set(expected) <= set(self.defended_pairs)


def _forge_cell(payload: dict) -> str:
    """Worker entrypoint: forge one cell's corpus, seal it, commit a manifest.

    The forged columns ingest into a cell-private store that spills one or
    more ``.npz`` segments under the cell directory; the manifest — segment
    paths, value tables, counters — is written last via an atomic rename,
    exactly like a campaign shard's, and only its path crosses the process
    boundary.
    """
    campaign = PoisoningCampaign(
        target_domain=payload["target_domain"],
        country_code=payload["country_code"],
        fabricate_blocking=payload["fabricate_blocking"],
        submissions=payload["submissions"],
        client_identities=payload["identities"],
    )
    attacker = PoisoningAttacker(rng=np.random.default_rng(payload["entropy"]))
    cell_dir = Path(payload["cell_dir"])
    if cell_dir.exists():
        # No valid manifest means whatever sits here is a dead attempt's
        # partial output; clear it rather than adopting orphaned segments.
        shutil.rmtree(cell_dir)
    cell_dir.mkdir(parents=True, exist_ok=True)
    store = MeasurementStore(spill_dir=cell_dir)
    attacker.forge_columns(campaign).append_to(store)
    store.spill()
    manifest = {
        "signature": payload["signature"],
        "shard_index": payload["cell"],
        "blocks": [
            {
                "block": 0,
                "rows": len(store),
                "segments": [
                    {"path": str(path), "rows": rows}
                    for path, rows in segment_row_counts(store.segment_files, len(store))
                ],
            }
        ],
        "value_tables": serialize_value_tables(store.value_tables()),
        "counters": {"stored": len(store)},
    }
    return str(write_manifest(cell_dir, manifest))


class AdversarySweep:
    """Attack-budget × identity grids, end-to-end on the columnar store path.

    For each ``(submissions, identities)`` budget the sweep forges a
    poisoning corpus (deterministically from ``(seed, cell index)``), seals
    it into spilled segments plus a manifest with the same machinery shard
    workers use, builds a per-cell poisoned store by **segment adoption** —
    the honest store's segments are shared zero-copy, the forged segments
    merged through a :class:`~repro.core.shard.StoreMerger` — and scores the
    cell: what the binomial detector flags on the raw poisoned store, and
    what it still flags after :meth:`ReputationFilter.apply_store`.  No
    :class:`Measurement` row is ever materialized.

    ``fabricate_blocking=False`` runs the *masking* direction of §8: each
    budget floods success reports over a real detection (point
    ``target_domain``/``country_code`` at a pair the honest campaign
    detects), and :attr:`SweepCell.naive_masked` /
    :attr:`SweepCell.defended_masked` answer whether the detection
    disappeared — before and after reputation filtering.

    ``executor="process"`` fans the forging out over worker processes (one
    per pending cell, capped at the CPU count); ``"inline"`` runs them
    sequentially in-process — same results, used by tests and 1-core hosts.
    With a persistent ``spill_dir``, re-running the sweep adopts cells whose
    manifest already matches instead of re-forging them (the same
    cache-or-recompute contract as sharded campaign resume).
    """

    def __init__(
        self,
        detector: BinomialFilteringDetector | None = None,
        reputation: ReputationFilter | None = None,
        *,
        fabricate_blocking: bool = True,
        executor: str = "process",
        num_workers: int | None = None,
        spill_dir: str | Path | None = None,
        seed: int = 0,
        tracer=None,
    ) -> None:
        if executor not in ("process", "inline"):
            raise ValueError(f"unknown sweep executor {executor!r}")
        self.detector = detector if detector is not None else BinomialFilteringDetector()
        self.reputation = reputation if reputation is not None else ReputationFilter()
        self.fabricate_blocking = fabricate_blocking
        self.executor = executor
        self.num_workers = num_workers
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER

    # ------------------------------------------------------------------
    def run(
        self,
        collection: MeasurementStore | CollectionServer,
        target_domain: str,
        country_code: str,
        budgets: Sequence[tuple[int, int]],
    ) -> list[SweepCell]:
        """Score every ``(submissions, identities)`` budget against ``collection``."""
        store = collection.store if isinstance(collection, CollectionServer) else collection
        budgets = [(int(submissions), int(identities)) for submissions, identities in budgets]
        temporary = self.spill_dir is None
        root = (
            Path(tempfile.mkdtemp(prefix="adversary-sweep-")) if temporary else self.spill_dir
        )
        root.mkdir(parents=True, exist_ok=True)
        try:
            with self.tracer.span(
                "sweep", cells=len(budgets), target=target_domain
            ):
                manifests, payloads = self._plan_cells(
                    root, target_domain, country_code, budgets
                )
                if payloads:
                    with self.tracer.span("forge", cells=len(payloads)):
                        self._forge_pending(manifests, payloads)
                    get_registry().counter("sweep.cells_forged").add(len(payloads))
                cells = []
                for index, (submissions, identities) in enumerate(budgets):
                    with self.tracer.span(
                        "score",
                        cell=index,
                        submissions=submissions,
                        identities=identities,
                        resumed=index not in payloads,
                    ):
                        cells.append(
                            self._score_cell(
                                store, manifests[index], submissions, identities,
                                (target_domain, country_code),
                            )
                        )
                return cells
        finally:
            if temporary:
                # Verdicts only leave this method — the per-cell stores (and
                # with them the forged segments) are never needed again.
                shutil.rmtree(root, ignore_errors=True)

    # ------------------------------------------------------------------
    def _plan_cells(self, root, target_domain, country_code, budgets):
        """Split the grid into already-forged manifests and pending payloads."""
        manifests: dict[int, dict] = {}
        payloads: dict[int, dict] = {}
        for index, (submissions, identities) in enumerate(budgets):
            signature = {
                "kind": "adversary-sweep",
                "target_domain": target_domain,
                "country_code": country_code,
                "fabricate_blocking": self.fabricate_blocking,
                "submissions": submissions,
                "identities": identities,
                "seed": self.seed,
                "cell": index,
            }
            cell_dir = root / f"cell-{index:03d}-s{submissions}-k{identities}"
            manifest = read_manifest(cell_dir / MANIFEST_NAME)
            if (
                manifest is not None
                and manifest.get("signature") == signature
                and manifest_segments_exist(manifest)
            ):
                manifests[index] = manifest
            else:
                payloads[index] = {
                    "cell": index,
                    "cell_dir": str(cell_dir),
                    "signature": signature,
                    "target_domain": target_domain,
                    "country_code": country_code,
                    "fabricate_blocking": self.fabricate_blocking,
                    "submissions": submissions,
                    "identities": identities,
                    "entropy": [self.seed, index],
                }
        return manifests, payloads

    def _forge_pending(self, manifests: dict[int, dict], payloads: dict[int, dict]) -> None:
        """Forge the cells with no adoptable manifest, inline or fanned out."""
        if self.executor == "inline":
            for index, payload in payloads.items():
                with self.tracer.span("forge.cell", cell=index):
                    manifests[index] = self._committed_manifest(_forge_cell(payload))
            return
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context("fork" if "fork" in methods else None)
        workers = (
            self.num_workers
            if self.num_workers is not None
            else min(len(payloads), available_cpu_count())
        )
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {
                pool.submit(_forge_cell, payload): index
                for index, payload in payloads.items()
            }
            for future in as_completed(futures):
                manifests[futures[future]] = self._committed_manifest(future.result())

    @staticmethod
    def _committed_manifest(path: str) -> dict:
        manifest = read_manifest(path)
        if manifest is None:
            raise RuntimeError(f"forge worker committed no readable manifest at {path}")
        return manifest

    def _score_cell(
        self,
        honest: MeasurementStore,
        manifest: dict,
        submissions: int,
        identities: int,
        target_pair: tuple[str, str],
    ) -> SweepCell:
        """Merge one cell's poisoned store and run both detection passes."""
        poisoned = MeasurementStore()
        poisoned.adopt_segments_from(honest)
        StoreMerger(poisoned).merge([manifest])
        naive = self.detector.detect(poisoned).detected_pairs()
        verdict = self.reputation.apply_store(poisoned)
        defended = self.detector.detect_from_counts(
            verdict.success_counts()
        ).detected_pairs()
        return SweepCell(
            submissions=submissions,
            identities=identities,
            forged=int(manifest["counters"]["stored"]),
            poisoned_rows=len(poisoned),
            naive_pairs=frozenset(naive),
            defended_pairs=frozenset(defended),
            dropped_rate_limited=verdict.dropped_rate_limited,
            dropped_low_reputation=verdict.dropped_low_reputation,
            target_pair=target_pair,
            fabricate_blocking=self.fabricate_blocking,
        )
