"""Robustness against measurement poisoning (paper §8).

"Attackers may attempt to submit poisoned measurement results to alter the
conclusions that Encore draws about censorship.  We could try to employ
reputation systems to thwart such attacks, although it would be practically
impossible to completely prevent such poisoning from untrusted clients."

This module implements both sides of that sentence so the trade-off can be
studied: a :class:`PoisoningAttacker` that fabricates submissions designed to
invent (or hide) censorship in a chosen country, and a
:class:`ReputationFilter` that applies the practical defences a collection
server actually has — per-client submission rate limits, consistency checks
against each client's other reports, and down-weighting of clients whose
reports disagree with the rest of their region.
"""

from __future__ import annotations

import itertools
from collections import Counter, defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.collection import CollectionServer, Measurement
from repro.core.tasks import TaskOutcome, TaskType
from repro.population.geoip import GeoIPDatabase
from repro.web.url import URL


@dataclass
class PoisoningCampaign:
    """What an attacker wants the data to say."""

    target_domain: str
    country_code: str
    #: ``fabricate_blocking`` floods failure reports to invent censorship;
    #: otherwise the attacker floods success reports to mask real censorship.
    fabricate_blocking: bool = True
    #: How many fake submissions the attacker sends.
    submissions: int = 500
    #: How many distinct client identities (IP addresses) the attacker controls.
    client_identities: int = 10


class PoisoningAttacker:
    """Fabricates measurement submissions and injects them into a collection."""

    def __init__(self, geoip: GeoIPDatabase | None = None,
                 rng: np.random.Generator | int | None = None) -> None:
        self.geoip = geoip or GeoIPDatabase()
        self._rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self._ids = itertools.count(10_000_000)

    def forge_measurements(self, campaign: PoisoningCampaign) -> list[Measurement]:
        """Build the fake measurements for ``campaign``."""
        outcome = TaskOutcome.FAILURE if campaign.fabricate_blocking else TaskOutcome.SUCCESS
        identities = [
            self.geoip.allocate_ip(campaign.country_code, self._rng)
            for _ in range(max(1, campaign.client_identities))
        ]
        url = URL.parse(f"http://{campaign.target_domain}/favicon.ico")
        forged = []
        for index in range(campaign.submissions):
            forged.append(
                Measurement(
                    measurement_id=f"forged-{next(self._ids)}",
                    task_type=TaskType.IMAGE,
                    target_url=url,
                    target_domain=campaign.target_domain,
                    outcome=outcome,
                    elapsed_ms=float(self._rng.uniform(10.0, 200.0)),
                    client_ip=identities[index % len(identities)],
                    country_code=campaign.country_code,
                    isp=f"{campaign.country_code.lower()}-attacker",
                    browser_family="chrome",
                    origin_domain=None,
                    day=int(self._rng.integers(0, 30)),
                )
            )
        return forged

    def inject(self, collection: CollectionServer, campaign: PoisoningCampaign) -> int:
        """Append forged measurements to ``collection``; returns how many."""
        forged = self.forge_measurements(campaign)
        return collection.ingest_measurements(forged)


@dataclass
class ReputationReport:
    """What the filter kept, what it dropped, and why."""

    kept: list[Measurement] = field(default_factory=list)
    dropped_rate_limited: int = 0
    dropped_low_reputation: int = 0

    @property
    def dropped(self) -> int:
        return self.dropped_rate_limited + self.dropped_low_reputation


class ReputationFilter:
    """Practical defences against poisoned submissions.

    Two mechanisms, both of which a real collection server can apply without
    trusting clients:

    * **Rate limiting** — a single client IP contributing far more
      submissions per (domain, country) than its peers is capped at
      ``max_submissions_per_client``; an attacker must therefore control many
      addresses to move the aggregate.
    * **Minority down-weighting** — if a client's verdicts for a (domain,
      country) pair disagree with the verdict of the majority of *other
      clients* in that pair and that client contributes more than
      ``suspicious_share`` of the pair's submissions, the client's
      submissions are dropped.  Honest regional censorship is unaffected
      because there the majority of clients agree.
    """

    def __init__(self, max_submissions_per_client: int = 10,
                 suspicious_share: float = 0.2) -> None:
        if max_submissions_per_client < 1:
            raise ValueError("max_submissions_per_client must be positive")
        if not 0.0 < suspicious_share <= 1.0:
            raise ValueError("suspicious_share must be in (0, 1]")
        self.max_submissions_per_client = max_submissions_per_client
        self.suspicious_share = suspicious_share

    # ------------------------------------------------------------------
    def apply(self, measurements: list[Measurement]) -> ReputationReport:
        """Filter ``measurements`` and report what was kept and dropped."""
        report = ReputationReport()

        # Pass 1: per-client rate limiting within each (domain, country) pair.
        per_client_counts: Counter = Counter()
        rate_limited: list[Measurement] = []
        for m in measurements:
            key = (m.target_domain, m.country_code, m.client_ip)
            per_client_counts[key] += 1
            if per_client_counts[key] > self.max_submissions_per_client:
                report.dropped_rate_limited += 1
            else:
                rate_limited.append(m)

        # Pass 2: drop dominant clients whose verdicts contradict their peers.
        by_pair: dict[tuple[str, str], list[Measurement]] = defaultdict(list)
        for m in rate_limited:
            by_pair[(m.target_domain, m.country_code)].append(m)

        suspicious_clients: set[tuple[str, str, str]] = set()
        for (domain, country), pair_measurements in by_pair.items():
            total = len(pair_measurements)
            by_client: dict[str, list[Measurement]] = defaultdict(list)
            for m in pair_measurements:
                by_client[m.client_ip].append(m)
            if len(by_client) < 2:
                continue
            counts = sorted(len(own) for own in by_client.values())
            median_count = counts[len(counts) // 2]

            # A client is "dominant" if it supplies an outsized share of the
            # pair's submissions, either relative to the pair total or
            # relative to what a typical client contributes.  The honest
            # baseline is formed from the *non-dominant* clients so that a
            # flood of Sybil identities cannot vote itself into the majority.
            def is_dominant(own: list[Measurement]) -> bool:
                return (
                    len(own) / total > self.suspicious_share
                    or len(own) > max(3, 5 * median_count)
                )

            baseline = [
                m
                for client_ip, own in by_client.items()
                if not is_dominant(own)
                for m in own
            ]
            if not baseline:
                continue
            baseline_failure_rate = sum(1 for m in baseline if m.failed) / len(baseline)
            for client_ip, own in by_client.items():
                if not is_dominant(own):
                    continue
                own_failure_rate = sum(1 for m in own if m.failed) / len(own)
                if abs(own_failure_rate - baseline_failure_rate) > 0.5:
                    suspicious_clients.add((domain, country, client_ip))

        for m in rate_limited:
            if (m.target_domain, m.country_code, m.client_ip) in suspicious_clients:
                report.dropped_low_reputation += 1
            else:
                report.kept.append(m)
        return report

    def filtered_measurements(self, measurements: list[Measurement]) -> list[Measurement]:
        """Just the measurements that survive filtering."""
        return self.apply(measurements).kept
