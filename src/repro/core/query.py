"""One group-by kernel behind every store reduction.

`MeasurementStore` had accreted bespoke segment-streaming reductions —
``success_counts`` (and its ``by_day=True`` variant), ``masked_success_counts``,
``success_day_series``, ``distinct_ips`` — each hand-rolling the same
bincount-over-segments pattern.  This module is the one engine they all sit
on now, and the door to dimensions and aggregates none of them could express:

* **Composable keys.**  Any subset of the dictionary-encoded / small-domain
  columns — ``domain``, ``country``, ``day``, ``isp``, ``family``, ``task`` —
  composes into a single flat bincount key (``(((k0 * c1) + k1) * c2) + k2``),
  reusing the store's dictionary codes, so adding a grouping dimension is a
  tuple entry, not a new thousand-line reduction.
* **Pluggable aggregates.**  :class:`Count`, :class:`SuccessCount`, and
  :class:`Sum` fold segment-by-segment into dense bincount accumulators;
  :class:`Quantiles` and :class:`DistinctCount` gather per-group values in
  one streamed pass (per-segment deduplication keeps distinct counting from
  ever concatenating a full string column).
* **Row masks.**  An optional boolean mask over the whole store restricts
  the reduction (the reputation filter's re-detection path) without
  materializing the surviving rows.
* **Fold-once incrementality.**  A maskless query whose aggregates all fold
  rides a persistent per-store accumulator with a sealed-segment watermark
  (``_QueryFoldState``): each sealed segment is folded exactly once over the
  store's lifetime, pending chunks only ever touch a per-call snapshot, so
  an always-on monitor's per-epoch aggregation cost tracks the *new* rows.
  This is the PR 6 contract, now owned by the kernel and shared by every
  foldable query with the same signature.

The legacy reductions are thin wrappers over :meth:`MeasurementStore.query`
(kept as deprecation shims on the store), pinned row-identical to their
pre-refactor outputs by equivalence tests; ``repro-lint``'s
``segment-streaming`` rule keeps new hand-rolled segment loops from growing
back outside this module.

Telemetry follows the observer-effect ban: the kernel bumps write-only
counters (``store.query_folds`` and the PR 6 ``store.fold_advances`` /
``store.segments_folded``) and opens per-aggregate spans only on the tracer
it is handed — ``NULL_TRACER`` unless a caller opts in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.store import (
    OUTCOME_INCONCLUSIVE,
    OUTCOME_SUCCESS,
    TASK_TYPES,
    DayGroupedCounts,
    DenseDayCounts,
    GroupedCounts,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_TRACER

if TYPE_CHECKING:  # pragma: no cover - type-only import (store imports us lazily)
    from repro.core.store import MeasurementStore

#: Key name -> the store column its codes come from.
KEY_COLUMNS = {
    "domain": "domain",
    "country": "country",
    "day": "day",
    "isp": "isp",
    "family": "family",
    "task": "task",
}

#: Numeric columns :class:`Sum` and :class:`Quantiles` accept.
NUMERIC_COLUMNS = ("elapsed_ms", "probe_time_ms", "day")

#: Columns :class:`DistinctCount` accepts (strings or small codes).
DISTINCT_COLUMNS = (
    "client_ip", "measurement_id", "domain", "country", "isp", "family", "url",
)


# ----------------------------------------------------------------------
# Aggregate specifications
# ----------------------------------------------------------------------
class Aggregate:
    """Base class for query aggregates.

    ``foldable`` aggregates reduce to a dense per-group accumulator a plain
    ``np.bincount`` can advance segment-by-segment (and therefore ride the
    incremental fold state); gather aggregates (quantiles, distinct counts)
    need per-group row values and run in one streamed pass per store version.
    ``columns`` names the row columns the aggregate reads beyond the query's
    keys and filters.
    """

    foldable = False
    columns: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        raise NotImplementedError

    def state_key(self) -> tuple:
        """Hashable identity (cache and fold-state key component)."""
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return isinstance(other, Aggregate) and self.state_key() == other.state_key()

    def __hash__(self) -> int:
        return hash(self.state_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}{self.state_key()[1:]}"


class Count(Aggregate):
    """Rows per group (after filters and mask)."""

    foldable = True

    @property
    def name(self) -> str:
        return "count"

    def state_key(self) -> tuple:
        return ("count",)


class SuccessCount(Aggregate):
    """Rows per group whose outcome is ``SUCCESS``."""

    foldable = True
    columns = ("outcome",)

    @property
    def name(self) -> str:
        return "success_count"

    def state_key(self) -> tuple:
        return ("success_count",)


class Sum(Aggregate):
    """Per-group sum of a numeric column (float64 accumulator).

    Float addition order follows segment order, so sums are deterministic
    for a given segmentation but are not pinned bit-identical across
    different spill layouts (counts are; see ``docs/query_api.md``).
    """

    foldable = True

    def __init__(self, column: str) -> None:
        if column not in NUMERIC_COLUMNS:
            raise ValueError(f"Sum() supports {NUMERIC_COLUMNS}, not {column!r}")
        self.column = column
        self.columns = (column,)

    @property
    def name(self) -> str:
        return f"sum_{self.column}"

    def state_key(self) -> tuple:
        return ("sum", self.column)


class Quantiles(Aggregate):
    """Per-group interpolated quantiles of a numeric column.

    Matches ``np.quantile``'s default linear interpolation bit-for-bit (the
    same sorted values through the same lerp), which is what lets the scalar
    reference twin pin the vectorized path exactly.
    """

    def __init__(self, column: str, qs: Sequence[float] = (0.5, 0.9, 0.99)) -> None:
        if column not in NUMERIC_COLUMNS:
            raise ValueError(
                f"Quantiles() supports {NUMERIC_COLUMNS}, not {column!r}"
            )
        qs = tuple(float(q) for q in qs)
        if not qs or any(not 0.0 <= q <= 1.0 for q in qs):
            raise ValueError("quantiles must be a non-empty tuple within [0, 1]")
        self.column = column
        self.qs = qs
        self.columns = (column,)

    @property
    def name(self) -> str:
        return f"quantiles_{self.column}"

    def state_key(self) -> tuple:
        return ("quantiles", self.column, self.qs)


class DistinctCount(Aggregate):
    """Distinct values of a column per group.

    Streamed with per-segment deduplication: each segment contributes only
    its unique (group, value) pairs, so distinct-counting a spilled store's
    ``client_ip`` never concatenates the full string column — the invariant
    the legacy ``distinct_ips`` kept.
    """

    def __init__(self, column: str) -> None:
        if column not in DISTINCT_COLUMNS:
            raise ValueError(
                f"DistinctCount() supports {DISTINCT_COLUMNS}, not {column!r}"
            )
        self.column = column
        self.columns = (column,)

    @property
    def name(self) -> str:
        return f"distinct_{self.column}"

    def state_key(self) -> tuple:
        return ("distinct", self.column)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
class QueryResult:
    """Per-group aggregate values, one row per non-empty group.

    Groups are sorted by their decoded key tuple in declared key order (the
    same ``(domain, country[, day])`` order the legacy reductions used).
    ``keys[name]`` are the decoded key arrays, ``values[i]`` lines up with
    ``aggregates[i]`` (a ``(groups, len(qs))`` matrix for
    :class:`Quantiles`, a 1-D array otherwise), and ``extents[name]`` is the
    key's axis cardinality at query time — for ``day``, one past the largest
    day among the rows the query saw.
    """

    __slots__ = ("key_names", "keys", "aggregates", "values", "extents")

    def __init__(
        self,
        key_names: tuple[str, ...],
        keys: dict[str, np.ndarray],
        aggregates: tuple[Aggregate, ...],
        values: tuple[np.ndarray, ...],
        extents: dict[str, int],
    ) -> None:
        self.key_names = key_names
        self.keys = keys
        self.aggregates = aggregates
        self.values = values
        self.extents = extents

    def __len__(self) -> int:
        return len(self.values[0]) if self.values else 0

    def key(self, name: str) -> np.ndarray:
        return self.keys[name]

    def value(self, aggregate: "Aggregate | str | int") -> np.ndarray:
        """The value array for one aggregate (by spec, name, or position)."""
        if isinstance(aggregate, int):
            return self.values[aggregate]
        for spec, column in zip(self.aggregates, self.values):
            if spec == aggregate or spec.name == aggregate:
                return column
        raise KeyError(f"no aggregate {aggregate!r} in this result")

    def as_dict(self) -> dict[tuple, tuple]:
        """``{key_tuple: value_tuple}`` with plain Python scalars.

        Quantile entries are tuples of floats; everything else is a scalar.
        """
        out: dict[tuple, tuple] = {}
        for index in range(len(self)):
            group = tuple(
                self.keys[name][index].item() for name in self.key_names
            )
            row = []
            for spec, column in zip(self.aggregates, self.values):
                if isinstance(spec, Quantiles):
                    row.append(tuple(float(v) for v in column[index]))
                else:
                    row.append(column[index].item())
            out[group] = tuple(row)
        return out


class DenseResult:
    """Dense per-key-cell accumulator arrays from a foldable, maskless query.

    ``values[i]`` is shaped ``tuple(extents[name] for name in key_names)``
    and lines up with ``aggregates[i]``; empty cells hold zero.  The arrays
    are read-only views over the incremental fold state, valid until the
    store's next append — callers that outlive a mutation copy what they
    keep (the monitor's day-series wrapper fancy-indexes, which copies).
    """

    __slots__ = ("key_names", "aggregates", "values", "extents")

    def __init__(
        self,
        key_names: tuple[str, ...],
        aggregates: tuple[Aggregate, ...],
        values: tuple[np.ndarray, ...],
        extents: dict[str, int],
    ) -> None:
        self.key_names = key_names
        self.aggregates = aggregates
        self.values = values
        self.extents = extents

    def value(self, aggregate: "Aggregate | str | int") -> np.ndarray:
        if isinstance(aggregate, int):
            return self.values[aggregate]
        for spec, column in zip(self.aggregates, self.values):
            if spec == aggregate or spec.name == aggregate:
                return column
        raise KeyError(f"no aggregate {aggregate!r} in this result")


class TimingDaySeries:
    """Dense per-(domain, country) day matrices of an ``elapsed_ms`` quantile.

    The timing sibling of the success-rate day series: ``counts`` is the
    ``(C, n_days)`` filtered measurement count per pair-day and ``values``
    the per-day quantile (NaN where a pair-day has no measurements).  Pairs
    carry the same sorted (domain, country) order as the success series on
    the same corpus.  Consumed by
    :class:`repro.core.inference.TimingCusumDetector`.
    """

    __slots__ = ("domains", "countries", "counts", "values", "n_days", "quantile")

    def __init__(
        self,
        domains: np.ndarray,
        countries: np.ndarray,
        counts: np.ndarray,
        values: np.ndarray,
        n_days: int,
        quantile: float,
    ) -> None:
        self.domains = domains
        self.countries = countries
        self.counts = counts
        self.values = values
        self.n_days = n_days
        self.quantile = quantile

    def __len__(self) -> int:
        return len(self.domains)

    def cell_series(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(domains, countries, counts, values)`` — the detector's layout."""
        return self.domains, self.countries, self.counts, self.values


@dataclass(frozen=True)
class Query:
    """A reusable query specification: keys + aggregates + filters.

    ``shape="cells"`` yields a :class:`QueryResult` (one row per non-empty
    group); ``shape="dense"`` yields a :class:`DenseResult` (full key-space
    accumulator arrays, foldable maskless queries only) — what the
    always-on monitor's day series rides.
    """

    keys: tuple[str, ...] = ("domain", "country")
    aggregates: tuple[Aggregate, ...] = (Count(), SuccessCount())
    exclude_automated: bool = True
    exclude_inconclusive: bool = True
    shape: str = "cells"
    mask: np.ndarray | None = field(default=None, compare=False)

    def run(self, store: "MeasurementStore", tracer=NULL_TRACER):
        return run_query(
            store,
            self.keys,
            self.aggregates,
            mask=self.mask,
            exclude_automated=self.exclude_automated,
            exclude_inconclusive=self.exclude_inconclusive,
            shape=self.shape,
            tracer=tracer,
        )


# ----------------------------------------------------------------------
# Key axes
# ----------------------------------------------------------------------
def _axis_tables(store: "MeasurementStore", key: str):
    tables = {
        "domain": store._domain_values,
        "country": store._country_values,
        "isp": store._isp_values,
        "family": store._family_values,
    }
    return tables.get(key)


def _axis_extent(store: "MeasurementStore", key: str) -> int | None:
    """Current cardinality of a key axis; ``None`` for the dynamic day axis."""
    if key == "day":
        return None
    if key == "task":
        return len(TASK_TYPES)
    return len(_axis_tables(store, key))


def _decode_axis(store: "MeasurementStore", key: str, codes: np.ndarray) -> np.ndarray:
    """Per-group decoded key values from axis codes."""
    if key == "day":
        return codes
    if key == "task":
        table = np.asarray([t.value for t in TASK_TYPES], dtype=np.str_)
    else:
        table = np.asarray(_axis_tables(store, key), dtype=np.str_)
    return table[codes]


def _validate(keys, aggregates, mask, shape, store) -> np.ndarray | None:
    if shape not in ("cells", "dense"):
        raise ValueError(f"shape must be 'cells' or 'dense', not {shape!r}")
    seen = []
    for key in keys:
        if key not in KEY_COLUMNS:
            raise KeyError(
                f"unknown query key {key!r}; supported: {tuple(KEY_COLUMNS)}"
            )
        if key in seen:
            raise ValueError(f"duplicate query key {key!r}")
        seen.append(key)
    if not aggregates:
        raise ValueError("a query needs at least one aggregate")
    for spec in aggregates:
        if not isinstance(spec, Aggregate):
            raise TypeError(f"{spec!r} is not an Aggregate")
    if shape == "dense":
        if mask is not None:
            raise ValueError("shape='dense' does not support masks")
        if not all(spec.foldable for spec in aggregates):
            raise ValueError("shape='dense' needs foldable aggregates only")
    if mask is not None:
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != len(store):
            raise ValueError(
                f"mask has {len(mask)} entries for a store of {len(store)} rows"
            )
    return mask


def _needed_columns(keys, aggregates, exclude_automated, exclude_inconclusive):
    needed = [KEY_COLUMNS[key] for key in keys]

    def want(name: str) -> None:
        if name not in needed:
            needed.append(name)

    if exclude_inconclusive:
        want("outcome")
    if exclude_automated:
        want("automated")
    for spec in aggregates:
        for name in spec.columns:
            want(name)
    if not needed:
        # Degenerate query (no keys, Count only, no filters): any cheap
        # column works to size the parts.
        needed.append("day")
    return tuple(needed)


def _valid_rows(part, mask_part, exclude_automated, exclude_inconclusive, length):
    valid = np.ones(length, dtype=bool)
    if mask_part is not None:
        valid &= mask_part
    if exclude_inconclusive:
        valid &= part["outcome"] != OUTCOME_INCONCLUSIVE
    if exclude_automated:
        valid &= ~part["automated"]
    return valid


# ----------------------------------------------------------------------
# Incremental fold state (the PR 6 watermark, generalized)
# ----------------------------------------------------------------------
class _QueryFoldState:
    """Persistent fold accumulators for one foldable query signature.

    Holds one dense array per foldable aggregate over the composed key
    space, plus a watermark of how many *sealed* segments have been folded.
    Sealed segments are immutable, so each is folded exactly once over the
    store's lifetime; pending chunks are only ever folded into a per-call
    :meth:`snapshot`.  Dictionary axes are padded when the store's value
    tables grow (codes are stable once assigned, so old folds stay valid);
    the day axis grows geometrically so per-segment copies amortize.
    """

    __slots__ = (
        "key_names", "agg_specs", "exclude_automated", "exclude_inconclusive",
        "segments_folded", "extents", "capacities", "arrays",
    )

    def __init__(
        self,
        key_names: tuple[str, ...],
        agg_specs: tuple[Aggregate, ...],
        exclude_automated: bool,
        exclude_inconclusive: bool,
    ) -> None:
        self.key_names = key_names
        self.agg_specs = agg_specs
        self.exclude_automated = exclude_automated
        self.exclude_inconclusive = exclude_inconclusive
        self.segments_folded = 0
        self.extents = [0] * len(key_names)    #: logical axis widths
        self.capacities = [0] * len(key_names)  #: allocated axis widths
        shape = tuple(self.capacities)
        self.arrays = {
            spec.state_key(): np.zeros(
                shape, dtype=np.float64 if isinstance(spec, Sum) else np.int64
            )
            for spec in agg_specs
        }

    def snapshot(self) -> "_QueryFoldState":
        """A deep copy pending chunks can be folded into without corrupting us."""
        copy = _QueryFoldState(
            self.key_names, self.agg_specs,
            self.exclude_automated, self.exclude_inconclusive,
        )
        copy.extents = list(self.extents)
        copy.capacities = list(self.capacities)
        copy.arrays = {key: array.copy() for key, array in self.arrays.items()}
        return copy

    def grow_axes(self, store: "MeasurementStore") -> None:
        """Pad the non-day axes out to the store's current table sizes."""
        for axis, key in enumerate(self.key_names):
            extent = _axis_extent(store, key)
            if extent is None or extent <= self.capacities[axis]:
                continue
            pad = [(0, 0)] * len(self.key_names)
            pad[axis] = (0, extent - self.capacities[axis])
            self.arrays = {
                state_key: np.pad(array, pad)
                for state_key, array in self.arrays.items()
            }
            self.capacities[axis] = extent
            self.extents[axis] = extent

    def _grow_day(self, axis: int, segment_days: int) -> None:
        """Widen the day axis to ``segment_days`` (geometric allocation)."""
        if segment_days <= self.extents[axis]:
            return
        if segment_days > self.capacities[axis]:
            capacity = max(segment_days, 2 * self.capacities[axis])
            pad = [(0, 0)] * len(self.key_names)
            pad[axis] = (0, capacity - self.capacities[axis])
            self.arrays = {
                state_key: np.pad(array, pad)
                for state_key, array in self.arrays.items()
            }
            self.capacities[axis] = capacity
        self.extents[axis] = segment_days

    def fold(self, part: dict[str, np.ndarray]) -> None:
        """Accumulate one segment's (or pending chunk's) columns."""
        valid = _valid_rows(
            part, None, self.exclude_automated, self.exclude_inconclusive,
            len(part[next(iter(part))]),
        )
        codes = []
        for axis, key in enumerate(self.key_names):
            axis_codes = part[KEY_COLUMNS[key]][valid].astype(np.int64, copy=False)
            if key == "day" and axis_codes.size:
                # Later segments may reveal later days (longitudinal ingest
                # is strictly day-ordered, so this happens per segment).
                self._grow_day(axis, int(axis_codes.max()) + 1)
            codes.append(axis_codes)
        if codes and not codes[0].size:
            return
        if not codes:
            if not valid.any():
                return
            flat = np.zeros(int(np.count_nonzero(valid)), dtype=np.int64)
        else:
            flat = codes[0].astype(np.int64)
            for axis_codes, capacity in zip(codes[1:], self.capacities[1:]):
                flat = flat * capacity + axis_codes
        shape = tuple(self.capacities) if self.key_names else ()
        minlength = math.prod(shape) if self.key_names else 1
        for spec in self.agg_specs:
            array = self.arrays[spec.state_key()]
            flat_view = array.reshape(-1)
            if isinstance(spec, SuccessCount):
                selected = flat[part["outcome"][valid] == OUTCOME_SUCCESS]
                flat_view += np.bincount(selected, minlength=minlength)
            elif isinstance(spec, Sum):
                flat_view += np.bincount(
                    flat,
                    weights=part[spec.column][valid].astype(np.float64, copy=False),
                    minlength=minlength,
                )
            else:  # Count
                flat_view += np.bincount(flat, minlength=minlength)

    def sliced(self, state_key: tuple) -> np.ndarray:
        """One accumulator trimmed to logical extents (a view)."""
        array = self.arrays[state_key]
        if self.extents == self.capacities:
            return array
        return array[tuple(slice(0, extent) for extent in self.extents)]


def _fold_state_key(keys, agg_specs, exclude_automated, exclude_inconclusive):
    return (
        keys,
        tuple(spec.state_key() for spec in agg_specs),
        exclude_automated,
        exclude_inconclusive,
    )


def _fold_specs(aggregates) -> tuple[Aggregate, ...]:
    """The deduped accumulator set: requested aggregates plus a presence count."""
    specs: list[Aggregate] = [Count()]
    for spec in aggregates:
        if spec.state_key() not in [s.state_key() for s in specs]:
            specs.append(spec)
    return tuple(specs)


def _advanced_fold_state(
    store: "MeasurementStore",
    keys: tuple[str, ...],
    agg_specs: tuple[Aggregate, ...],
    exclude_automated: bool,
    exclude_inconclusive: bool,
) -> _QueryFoldState:
    """The fold-once accumulator, advanced over all unfolded rows.

    Sealed segments past the watermark fold into the persistent state
    exactly once; pending chunks (not immutable yet — the next seal rebinds
    them into a segment) only ever touch a snapshot copy, which is what gets
    returned in that case.
    """
    state_key = _fold_state_key(keys, agg_specs, exclude_automated, exclude_inconclusive)
    state = store._query_states.get(state_key)
    if state is None:
        state = store._query_states[state_key] = _QueryFoldState(
            keys, agg_specs, exclude_automated, exclude_inconclusive
        )
    state.grow_axes(store)
    names = _needed_columns(keys, agg_specs, exclude_automated, exclude_inconclusive)
    unfolded = len(store._segments) - state.segments_folded
    for seg in store._segments[state.segments_folded:]:
        state.fold(seg.load_columns(names))
    state.segments_folded = len(store._segments)
    if unfolded:
        registry = get_registry()
        registry.counter("store.fold_advances").add(1)
        registry.counter("store.segments_folded").add(unfolded)
        registry.counter("store.query_folds").add(unfolded)
    view = state
    if store._pending:
        view = state.snapshot()
        for chunk in store._pending:
            view.fold({name: chunk[name] for name in names})
        get_registry().counter("store.query_folds").add(len(store._pending))
    return view


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------
def run_query(
    store: "MeasurementStore",
    keys: Sequence[str] = ("domain", "country"),
    aggregates: Sequence[Aggregate] = (Count(), SuccessCount()),
    *,
    mask: np.ndarray | None = None,
    exclude_automated: bool = True,
    exclude_inconclusive: bool = True,
    shape: str = "cells",
    tracer=NULL_TRACER,
) -> "QueryResult | DenseResult":
    """Group ``store`` rows by ``keys`` and reduce with ``aggregates``.

    The one engine behind every store reduction; see the module docstring
    for the model and ``docs/query_api.md`` for the migration table.
    Maskless results are cached per store version; maskless all-foldable
    queries additionally advance the fold-once incremental state instead of
    rescanning history.
    """
    keys = tuple(keys)
    aggregates = tuple(aggregates)
    mask = _validate(keys, aggregates, mask, shape, store)
    cache_key = None
    if mask is None:
        cache_key = (
            "query", keys, tuple(spec.state_key() for spec in aggregates),
            exclude_automated, exclude_inconclusive, shape,
        )
        cached = store._derived(cache_key)
        if cached is not None:
            return cached
    foldable = mask is None and all(spec.foldable for spec in aggregates)
    with tracer.span(
        "store.query", keys=",".join(keys), shape=shape,
        path="fold" if foldable else "stream",
    ):
        if foldable:
            result = _run_fold(store, keys, aggregates, exclude_automated,
                               exclude_inconclusive, shape)
        else:
            result = _run_stream(store, keys, aggregates, mask,
                                 exclude_automated, exclude_inconclusive, tracer)
    if cache_key is not None:
        store._derive(cache_key, result)
    return result


def _empty_result(store, keys, aggregates) -> QueryResult:
    extents = {
        key: (_axis_extent(store, key) or 0) for key in keys
    }
    empty_keys = {
        key: _decode_axis(store, key, np.empty(0, dtype=np.int64)) for key in keys
    }
    values = tuple(
        np.zeros((0, len(spec.qs))) if isinstance(spec, Quantiles)
        else np.zeros(0, dtype=np.float64 if isinstance(spec, Sum) else np.int64)
        for spec in aggregates
    )
    return QueryResult(keys, empty_keys, aggregates, values, extents)


def _run_fold(store, keys, aggregates, exclude_automated, exclude_inconclusive, shape):
    agg_specs = _fold_specs(aggregates)
    if len(store) == 0:
        if shape == "dense":
            extents = {key: (_axis_extent(store, key) or 0) for key in keys}
            values = tuple(
                np.zeros(
                    tuple(extents[key] for key in keys),
                    dtype=np.float64 if isinstance(spec, Sum) else np.int64,
                )
                for spec in aggregates
            )
            return DenseResult(keys, aggregates, values, extents)
        return _empty_result(store, keys, aggregates)
    view = _advanced_fold_state(
        store, keys, agg_specs, exclude_automated, exclude_inconclusive
    )
    extents = {key: extent for key, extent in zip(keys, view.extents)}
    if shape == "dense":
        values = []
        for spec in aggregates:
            array = view.sliced(spec.state_key()).view()
            array.flags.writeable = False
            values.append(array)
        return DenseResult(keys, aggregates, tuple(values), extents)
    count_flat = view.sliced(("count",)).ravel()
    cells = np.flatnonzero(count_flat)
    dense = {
        spec.state_key(): view.sliced(spec.state_key()).ravel()[cells]
        for spec in aggregates
    }
    return _cells_result(
        store, keys, aggregates, cells,
        [view.extents[axis] for axis in range(len(keys))],
        lambda spec, order: dense[spec.state_key()][order],
    )


def _cells_result(store, keys, aggregates, cells, extents, value_of):
    """Decode flat cell indices, sort by decoded keys, assemble the result."""
    codes = []
    remaining = cells
    for extent in reversed(extents):
        if len(cells):
            codes.append(remaining % extent)
            remaining = remaining // extent
        else:
            codes.append(np.empty(0, dtype=np.int64))
    codes.reverse()
    decoded = [
        _decode_axis(store, key, axis_codes)
        for key, axis_codes in zip(keys, codes)
    ]
    if len(cells) and decoded:
        order = np.lexsort(tuple(reversed(decoded)))
    else:
        order = np.arange(len(cells))
    values = tuple(value_of(spec, order) for spec in aggregates)
    return QueryResult(
        tuple(keys),
        {key: axis[order] for key, axis in zip(keys, decoded)},
        tuple(aggregates),
        values,
        {key: extent for key, extent in zip(keys, extents)},
    )


def _run_stream(store, keys, aggregates, mask, exclude_automated,
                exclude_inconclusive, tracer):
    names = _needed_columns(keys, aggregates, exclude_automated, exclude_inconclusive)
    key_columns = tuple(KEY_COLUMNS[key] for key in keys)
    distinct_specs = [s for s in aggregates if isinstance(s, DistinctCount)]
    gather_columns = []
    for spec in aggregates:
        if isinstance(spec, (Quantiles, Sum)) and spec.column not in gather_columns:
            gather_columns.append(spec.column)
    want_success = any(isinstance(spec, SuccessCount) for spec in aggregates)

    axis_parts: list[list[np.ndarray]] = [[] for _ in keys]
    gather_parts: dict[str, list[np.ndarray]] = {name: [] for name in gather_columns}
    success_parts: list[np.ndarray] = []
    distinct_parts: dict[tuple, list] = {spec.state_key(): [] for spec in distinct_specs}
    n_valid = 0

    for offset, length, part in store._segment_chunks(names):
        mask_part = mask[offset:offset + length] if mask is not None else None
        valid = _valid_rows(
            part, mask_part, exclude_automated, exclude_inconclusive, length
        )
        count = int(np.count_nonzero(valid))
        if not count:
            continue
        n_valid += count
        part_codes = [
            part[column][valid].astype(np.int64, copy=False)
            for column in key_columns
        ]
        for axis, axis_codes in enumerate(part_codes):
            axis_parts[axis].append(axis_codes)
        for name in gather_columns:
            gather_parts[name].append(part[name][valid])
        if want_success:
            success_parts.append(part["outcome"][valid] == OUTCOME_SUCCESS)
        for spec in distinct_specs:
            distinct_parts[spec.state_key()].append(
                _unique_rows(part_codes, part[spec.column][valid])
            )

    get_registry().counter("store.query_folds").add(
        len(store._segments) + len(store._pending)
    )
    if not n_valid:
        return _empty_result(store, keys, aggregates)

    axis_codes = [
        np.concatenate(parts) if len(parts) > 1 else parts[0]
        for parts in axis_parts
    ]
    extents = []
    for key, codes in zip(keys, axis_codes):
        extent = _axis_extent(store, key)
        if extent is None:
            extent = int(codes.max()) + 1 if codes.size else 0
        extents.append(extent)
    flat = _compose_key(axis_codes, extents, n_valid)
    minlength = math.prod(extents) if extents else 1

    with tracer.span("query.aggregate", aggregate="count"):
        count_dense = np.bincount(flat, minlength=minlength)
    cells = np.flatnonzero(count_dense)
    group_counts = count_dense[cells]
    # Per-row group index (cells are the sorted unique flat keys).
    group_of_row: np.ndarray | None = None

    def groups() -> np.ndarray:
        nonlocal group_of_row
        if group_of_row is None:
            group_of_row = np.searchsorted(cells, flat)
        return group_of_row

    computed: dict[tuple, np.ndarray] = {}
    for spec in aggregates:
        state_key = spec.state_key()
        if state_key in computed:
            continue
        with tracer.span("query.aggregate", aggregate=spec.name):
            if isinstance(spec, Count):
                computed[state_key] = group_counts
            elif isinstance(spec, SuccessCount):
                success = (
                    np.concatenate(success_parts)
                    if len(success_parts) > 1 else success_parts[0]
                )
                computed[state_key] = np.bincount(
                    flat[success], minlength=minlength
                )[cells]
            elif isinstance(spec, Sum):
                values = _concat(gather_parts[spec.column])
                computed[state_key] = np.bincount(
                    flat, weights=values.astype(np.float64, copy=False),
                    minlength=minlength,
                )[cells]
            elif isinstance(spec, Quantiles):
                values = _concat(gather_parts[spec.column]).astype(
                    np.float64, copy=False
                )
                computed[state_key] = _group_quantiles(
                    values, groups(), group_counts, spec.qs
                )
            else:  # DistinctCount
                computed[state_key] = _distinct_per_group(
                    distinct_parts[state_key], extents, cells, len(cells)
                )
    return _cells_result(
        store, keys, aggregates, cells, extents,
        lambda spec, order: computed[spec.state_key()][order],
    )


def _concat(parts: list[np.ndarray]) -> np.ndarray:
    return np.concatenate(parts) if len(parts) > 1 else parts[0]


def _compose_key(axis_codes, extents, n_rows) -> np.ndarray:
    if not axis_codes:
        return np.zeros(n_rows, dtype=np.int64)
    flat = axis_codes[0].astype(np.int64, copy=True)
    for codes, extent in zip(axis_codes[1:], extents[1:]):
        flat *= extent
        flat += codes
    return flat


def _unique_rows(code_arrays: list[np.ndarray], values: np.ndarray):
    """Deduplicate ``(codes..., value)`` tuples; returns (codes, values) sorted."""
    if not len(values):
        return [codes.copy() for codes in code_arrays], values.copy()
    order = np.lexsort((values,) + tuple(reversed(code_arrays)))
    sorted_codes = [codes[order] for codes in code_arrays]
    sorted_values = values[order]
    keep = np.zeros(len(values), dtype=bool)
    keep[0] = True
    for column in sorted_codes:
        keep[1:] |= column[1:] != column[:-1]
    keep[1:] |= sorted_values[1:] != sorted_values[:-1]
    return [column[keep] for column in sorted_codes], sorted_values[keep]


def _distinct_per_group(parts, extents, cells, n_groups) -> np.ndarray:
    """Fold per-segment-unique ``(codes..., value)`` tuples into group counts."""
    if not parts:
        return np.zeros(n_groups, dtype=np.int64)
    code_arrays = [
        _concat([part_codes[axis] for part_codes, _ in parts])
        for axis in range(len(extents))
    ]
    values = _concat([part_values for _, part_values in parts])
    code_arrays, values = _unique_rows(code_arrays, values)
    flat = _compose_key(code_arrays, extents, len(values))
    group_index = np.searchsorted(cells, flat)
    return np.bincount(group_index, minlength=n_groups)


def _group_quantiles(values, group_index, group_counts, qs) -> np.ndarray:
    """Per-group interpolated quantiles, matching ``np.quantile`` bit-for-bit.

    Sorts once by (group, value) and evaluates every requested quantile with
    the same linear interpolation (`lerp`) ``np.quantile`` uses, including
    its ``t >= 0.5`` rewrite for monotonicity — which is what makes the
    scalar ``np.quantile``-per-group reference twin match exactly.
    """
    order = np.lexsort((values, group_index))
    sorted_values = values[order]
    starts = np.zeros(len(group_counts), dtype=np.int64)
    np.cumsum(group_counts[:-1], out=starts[1:])
    out = np.empty((len(group_counts), len(qs)), dtype=np.float64)
    last = group_counts - 1
    for column, q in enumerate(qs):
        virtual = last * q
        low = virtual.astype(np.int64)
        t = virtual - low
        high = np.minimum(low + 1, last)
        a = sorted_values[starts + low]
        b = sorted_values[starts + high]
        diff = b - a
        lerp = a + t * diff
        flip = t >= 0.5
        lerp[flip] = b[flip] - diff[flip] * (1.0 - t[flip])
        out[:, column] = lerp
    return out


# ----------------------------------------------------------------------
# Legacy-shaped conveniences (what the store shims and in-repo callers use)
# ----------------------------------------------------------------------
_COUNT_AGGS = (Count(), SuccessCount())


def grouped_success_counts(
    store: "MeasurementStore", exclude_automated: bool = True, *, by_day: bool = False
) -> "GroupedCounts | DayGroupedCounts":
    """Per-(domain, country[, day]) totals/successes via the query kernel.

    The engine behind the deprecated ``MeasurementStore.success_counts``,
    row-identical to it: same exclusions (inconclusive always, automated by
    default), same cell order, same fold-once incremental watermark.
    """
    cache_key = ("success_counts", exclude_automated, by_day)
    cached = store._derived(cache_key)
    if cached is not None:
        return cached
    empty = _empty_grouped(store, by_day)
    if empty is not None:
        return store._derive(cache_key, empty)
    keys = ("domain", "country", "day") if by_day else ("domain", "country")
    result = run_query(
        store, keys, _COUNT_AGGS, exclude_automated=exclude_automated
    )
    return store._derive(cache_key, _grouped_from_result(result, by_day))


def masked_grouped_success_counts(
    store: "MeasurementStore",
    mask: np.ndarray,
    exclude_automated: bool = True,
    *,
    by_day: bool = False,
) -> "GroupedCounts | DayGroupedCounts":
    """``grouped_success_counts`` restricted to the rows where ``mask`` holds.

    The engine behind the deprecated ``masked_success_counts``; not cached
    because masks vary call to call.
    """
    mask = np.asarray(mask, dtype=bool)
    if len(mask) != len(store):
        raise ValueError(
            f"mask has {len(mask)} entries for a store of {len(store)} rows"
        )
    empty = _empty_grouped(store, by_day)
    if empty is not None:
        return empty
    keys = ("domain", "country", "day") if by_day else ("domain", "country")
    result = run_query(
        store, keys, _COUNT_AGGS, mask=mask, exclude_automated=exclude_automated
    )
    return _grouped_from_result(result, by_day)


def _empty_grouped(store, by_day):
    """The legacy empty-store result, bit-for-bit (or None when non-empty)."""
    if len(store) != 0 and store._country_values:
        return None
    empty_str = np.empty(0, dtype=np.str_)
    empty_int = np.empty(0, dtype=np.int64)
    if by_day:
        return DayGroupedCounts(
            empty_str, empty_str, empty_int, empty_int, empty_int, 0
        )
    return GroupedCounts(empty_str, empty_str, empty_int, empty_int)


def _grouped_from_result(result: QueryResult, by_day: bool):
    totals = result.value("count")
    successes = result.value("success_count")
    if by_day:
        return DayGroupedCounts(
            result.key("domain"), result.key("country"), result.key("day"),
            totals, successes, result.extents["day"],
        )
    return GroupedCounts(
        result.key("domain"), result.key("country"), totals, successes
    )


def dense_day_series(
    store: "MeasurementStore", exclude_automated: bool = True
) -> DenseDayCounts:
    """Dense (pair, day) success matrices for the always-on monitor loop.

    The engine behind the deprecated ``success_day_series``: rides the same
    fold-once accumulator (and watermark) as the by-day grouped counts, but
    skips the ragged cell materialization, so per-epoch cost stays flat as
    the day axis grows.  The matrices are fancy-indexed copies, never views
    of the live accumulator.
    """
    if len(store) == 0 or not store._country_values:
        empty_str = np.empty(0, dtype=np.str_)
        empty_2d = np.zeros((0, 0), dtype=np.int64)
        return DenseDayCounts(empty_str, empty_str, empty_2d, empty_2d.copy(), 0)
    dense = run_query(
        store, ("domain", "country", "day"), _COUNT_AGGS,
        exclude_automated=exclude_automated, shape="dense",
    )
    n_days = dense.extents["day"]
    n_countries = dense.extents["country"]
    # Reshape by the explicit pair count: ``(-1, n_days)`` is ambiguous
    # when every row is excluded and the day axis is empty.
    n_pairs = dense.extents["domain"] * n_countries
    totals = dense.value("count").reshape(n_pairs, n_days)
    successes = dense.value("success_count").reshape(n_pairs, n_days)
    pairs = np.flatnonzero(totals.any(axis=1))
    domains = np.asarray(store._domain_values, dtype=np.str_)[pairs // n_countries]
    countries = np.asarray(store._country_values, dtype=np.str_)[pairs % n_countries]
    order = np.lexsort((countries, domains))
    return DenseDayCounts(
        domains[order],
        countries[order],
        totals[pairs[order]],
        successes[pairs[order]],
        n_days,
    )


def distinct_ip_count(store: "MeasurementStore") -> int:
    """Distinct client addresses via the query kernel.

    The engine behind the deprecated ``distinct_ips``: counts over *all*
    rows (no outcome or automation exclusions), streaming per-segment
    uniques so a spilled store never concatenates the full string column.
    """
    cached = store._derived("distinct_ips")
    if cached is not None:
        return cached
    result = run_query(
        store, (), (DistinctCount("client_ip"),),
        exclude_automated=False, exclude_inconclusive=False,
    )
    count = int(result.value(0)[0]) if len(result) else 0
    return store._derive("distinct_ips", count)


def timing_day_series(
    store: "MeasurementStore",
    quantile: float = 0.9,
    exclude_automated: bool = True,
) -> TimingDaySeries:
    """Per-(domain, country) day matrices of an ``elapsed_ms`` quantile.

    The new power the kernel buys: the same grouping as the success-rate
    day series, but aggregating request timing — what
    :class:`repro.core.inference.TimingCusumDetector` scans to catch
    throttling that success rates cannot see.  Cached per store version.
    """
    cache_key = ("timing_day_series", float(quantile), exclude_automated)
    cached = store._derived(cache_key)
    if cached is not None:
        return cached
    result = run_query(
        store, ("domain", "country", "day"),
        (Count(), Quantiles("elapsed_ms", (float(quantile),))),
        exclude_automated=exclude_automated,
    )
    n_days = result.extents["day"]
    if not len(result):
        empty_str = np.empty(0, dtype=np.str_)
        series = TimingDaySeries(
            empty_str, empty_str,
            np.zeros((0, n_days), dtype=np.int64),
            np.full((0, n_days), np.nan),
            n_days, float(quantile),
        )
        return store._derive(cache_key, series)
    domains = result.key("domain")
    countries = result.key("country")
    days = result.key("day")
    # Cells arrive sorted by (domain, country, day); pair boundaries are
    # where either name changes — the same densification as
    # ``DayGroupedCounts.cell_series``.
    new_pair = np.r_[
        True,
        (domains[1:] != domains[:-1]) | (countries[1:] != countries[:-1]),
    ]
    pair_of_cell = np.cumsum(new_pair) - 1
    starts = np.flatnonzero(new_pair)
    n_pairs = len(starts)
    counts = np.zeros((n_pairs, n_days), dtype=np.int64)
    values = np.full((n_pairs, n_days), np.nan)
    counts[pair_of_cell, days] = result.value("count")
    values[pair_of_cell, days] = result.value(1)[:, 0]
    series = TimingDaySeries(
        domains[starts], countries[starts], counts, values, n_days, float(quantile)
    )
    return store._derive(cache_key, series)


# ----------------------------------------------------------------------
# Scalar reference twin (equivalence-pinned by tests)
# ----------------------------------------------------------------------
def run_query_reference(
    store: "MeasurementStore",
    keys: Sequence[str] = ("domain", "country"),
    aggregates: Sequence[Aggregate] = (Count(), SuccessCount()),
    *,
    mask: np.ndarray | None = None,
    exclude_automated: bool = True,
    exclude_inconclusive: bool = True,
) -> dict[tuple, tuple]:
    """Per-row Python reference for :func:`run_query` (``shape="cells"``).

    Materializes every row and reduces with dicts, sets, and per-group
    ``np.quantile`` — the readable twin the equivalence property tests pin
    the vectorized kernel against, in :meth:`QueryResult.as_dict` shape.
    """
    keys = tuple(keys)
    aggregates = tuple(aggregates)

    def row_key(m, name: str):
        if name == "domain":
            return m.target_domain
        if name == "country":
            return m.country_code
        if name == "day":
            return m.day
        if name == "isp":
            return m.isp
        if name == "family":
            return m.browser_family
        return m.task_type.value  # "task"

    def row_value(m, column: str):
        return getattr(m, column)

    rows = store.rows()
    if mask is not None:
        rows = [m for m, keep in zip(rows, np.asarray(mask, dtype=bool)) if keep]
    groups: dict[tuple, list] = {}
    for m in rows:
        if exclude_inconclusive and m.outcome.value == "inconclusive":
            continue
        if exclude_automated and m.is_automated:
            continue
        groups.setdefault(tuple(row_key(m, name) for name in keys), []).append(m)
    out: dict[tuple, tuple] = {}
    for group in sorted(groups):
        members = groups[group]
        row = []
        for spec in aggregates:
            if isinstance(spec, Count):
                row.append(len(members))
            elif isinstance(spec, SuccessCount):
                row.append(
                    sum(1 for m in members if m.outcome.value == "success")
                )
            elif isinstance(spec, Sum):
                row.append(float(sum(row_value(m, spec.column) for m in members)))
            elif isinstance(spec, Quantiles):
                values = np.asarray(
                    [row_value(m, spec.column) for m in members], dtype=np.float64
                )
                row.append(tuple(float(np.quantile(values, q)) for q in spec.qs))
            else:  # DistinctCount
                row.append(len({row_value(m, spec.column) for m in members}))
        out[group] = tuple(row)
    return out
