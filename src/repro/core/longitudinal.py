"""Longitudinal campaigns: time-varying censorship over simulated days.

Encore's core promise is *longitudinal* measurement — continuous background
collection that reveals when a country starts or stops filtering a site —
and this module is the workload that cashes it in.  A longitudinal run is a
sequence of **epochs** over simulated days:

1. **Policy.**  A :class:`~repro.censor.policy.PolicyTimeline` scripts
   onset/offset/throttle events per (country, domain).  Before each epoch
   the engine publishes the epoch's posture into
   ``WorldConfig.timeline_rules`` and calls
   :meth:`World.refresh_timeline_censors`, which swings per-country managed
   censors via the :meth:`BlacklistPolicy.replace_domains` hook.  Because
   the posture lives in the (JSON-serializable) world config, sharded
   workers that rebuild the world enforce the same policy, and the sharded
   campaign signature covers it.
2. **Collect.**  Each epoch runs one ordinary campaign over its day window
   (``CampaignConfig.day_offset`` slides per epoch) through the block-keyed
   planner, so an epoch is reproducible from ``(seed, epoch)`` alone and
   can fan out across worker processes with ``mode="sharded"``.  All epochs
   ingest into one (possibly spilled) collection store.
3. **Aggregate.**  The query kernel
   (:func:`repro.core.query.grouped_success_counts` ``by_day=True``)
   reduces the whole corpus to ragged (domain, country, day) cells —
   streamed segment-by-segment, fully vectorized, nothing concatenated.
4. **Detect.**  :class:`~repro.core.inference.CusumChangePointDetector`
   scans every cell's daily success-rate series online and emits
   :class:`~repro.core.inference.CensorshipEvent` onsets/offsets with their
   detection lag; :func:`~repro.analysis.reports.build_timeline_report`
   grades them against the scripted ground truth.  The same kernel's
   ``Quantiles("elapsed_ms", ...)`` aggregate feeds a
   :class:`~repro.core.inference.TimingCusumDetector`
   (:meth:`LongitudinalResult.timing_events`) that catches *throttling* —
   the censorship signature success rates cannot see, graded by
   :func:`~repro.analysis.reports.build_throttle_report`.

**Always-on monitoring.**  With ``LongitudinalConfig.checkpoint_dir`` set,
the run becomes an incremental, killable monitor loop.  Per epoch the engine
seals the store's pending rows and folds only the *new* segments into the
persistent day-bucketed aggregate (``MeasurementStore.success_counts`` keeps
a fold watermark), advances a resumable
:class:`~repro.core.inference.CusumState` over only the new day columns, and
checkpoints that state to ``checkpoint_dir/cusum-state.json`` — so per-epoch
cost stays flat as history grows (``benchmarks/test_bench_monitor.py``,
``BENCH_monitor.json``).  Each epoch's campaign runs through the sharded
path with ``worker_spill_dir=checkpoint_dir``: its manifests are keyed by
the campaign signature (which covers the world config *including the
epoch's timeline posture*), so a restarted monitor re-adopts completed
epochs' rows instead of re-executing them — the same crash-resume story as
``mode="sharded"`` — and, with ``resume=True`` (the default), restores the
CUSUM state and picks up mid-series, emitting events bit-identical to an
uninterrupted cold run.  ``adaptive_baselines=True`` additionally seeds
per-country healthy baselines from
:meth:`~repro.core.inference.AdaptiveFilteringDetector.country_priors`
after the first epoch.

Front door: :meth:`EncoreDeployment.run_longitudinal`.  Throughput of the
aggregation + detection stage is tracked by
``benchmarks/test_bench_longitudinal.py`` (``BENCH_longitudinal.json``);
flatness of the incremental monitor loop by
``benchmarks/test_bench_monitor.py`` (``BENCH_monitor.json``).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.censor.policy import PolicyTimeline
from repro.core.inference import (
    CensorshipEvent,
    CusumChangePointDetector,
    CusumState,
    TimingCusumDetector,
)
from repro.core.query import (
    TimingDaySeries,
    dense_day_series,
    grouped_success_counts,
    timing_day_series,
)
from repro.core.store import DayGroupedCounts
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_TRACER, TRACE_FILENAME, Tracer


@dataclass
class LongitudinalConfig:
    """Parameters of one longitudinal (multi-epoch) run."""

    #: How many epochs to run.  ``None`` covers the timeline: enough epochs
    #: that the last scripted event has at least ``trailing_epochs`` of
    #: post-event data to be detected from.
    epochs: int | None = None
    #: Simulated days per epoch (the policy is re-evaluated per epoch, so
    #: this is also the granularity at which scripted events take effect).
    days_per_epoch: int = 1
    #: Origin-site visits simulated per epoch.
    visits_per_epoch: int = 2000
    #: Execution mode of each epoch's campaign: ``"batch"`` (default),
    #: ``"serial"``, or ``"sharded"`` (fans each epoch out over worker
    #: processes; merged results are identical to ``"batch"``).
    mode: str = "batch"
    #: ``mode="sharded"`` knobs, passed through to ``run_campaign``.
    num_shards: int | None = None
    worker_spill_dir: str | None = None
    shard_executor: str | None = None
    #: Epochs kept running after the last scripted event when ``epochs`` is
    #: unset, so offsets near the end of the script remain detectable.
    trailing_epochs: int = 5
    #: The online change-point detector run over the day-bucketed rates.
    detector: CusumChangePointDetector = field(default_factory=CusumChangePointDetector)
    #: The timing-side detector run over per-day ``elapsed_ms`` quantiles —
    #: catches the throttle events success rates cannot see.
    timing_detector: TimingCusumDetector = field(default_factory=TimingCusumDetector)
    #: Which daily ``elapsed_ms`` quantile the timing detector scans.
    timing_quantile: float = 0.9
    #: Directory for the always-on monitor's resumable state: per-epoch
    #: shard manifests (epoch-level crash resume) plus the CUSUM state
    #: checkpoint.  ``None`` (the default) runs the engine statelessly.
    checkpoint_dir: str | None = None
    #: With a ``checkpoint_dir``, whether to restore a previous run's
    #: checkpoint (``False`` starts over, ignoring — not deleting — any
    #: existing state).
    resume: bool = True
    #: Seed per-country healthy baselines for the CUSUM from
    #: ``AdaptiveFilteringDetector.country_priors`` after the first epoch.
    adaptive_baselines: bool = False
    #: Telemetry (strictly write-only: rows/events are bit-identical with
    #: tracing on or off).  A directory to write the run's merged span
    #: stream into (``trace.jsonl``), or ``None`` for the zero-overhead
    #: no-op tracer.  Runtime-only: neither field enters the monitor
    #: signature, so traced and untraced runs resume each other's
    #: checkpoints.
    trace_dir: str | None = None
    #: An explicit tracer instance (overrides ``trace_dir``); the caller
    #: owns its lifetime and close().
    tracer: object | None = None

    def resolved_epochs(self, timeline: PolicyTimeline) -> int:
        if self.epochs is not None:
            return self.epochs
        if len(timeline) == 0:
            raise ValueError(
                "cannot infer an epoch count from an event-free timeline; "
                "pass epochs=N explicitly"
            )
        final_epoch = timeline.final_day() // self.days_per_epoch
        return final_epoch + 1 + self.trailing_epochs


@dataclass(frozen=True)
class EpochSummary:
    """What one epoch ran: its day window, volume, and the posture in force."""

    epoch: int
    first_day: int
    days: int
    visits: int
    measurements_added: int
    #: (country, domain) pairs hard-blocked during the epoch.
    blocked: tuple[tuple[str, str], ...]
    #: (country, domain) pairs throttled during the epoch.
    throttled: tuple[tuple[str, str], ...]
    #: Whether the epoch's rows were adopted from surviving checkpoint
    #: manifests instead of re-executed (epoch-level crash resume).
    resumed: bool = False


@dataclass
class LongitudinalResult:
    """Everything a longitudinal run produced, with lazy detection."""

    config: LongitudinalConfig
    timeline: PolicyTimeline
    collection: object  #: the deployment's CollectionServer
    epochs: list[EpochSummary]
    #: The incremental CUSUM state a checkpointed run maintained (``None``
    #: for stateless runs); its ``events`` are the run's events.
    monitor: CusumState | None = None

    def __post_init__(self) -> None:
        self._events: list[CensorshipEvent] | None = None
        self._events_key: tuple | None = None
        self._timing_events: list[CensorshipEvent] | None = None
        self._timing_events_key: tuple | None = None
        # The store version + detector tuning the monitor state was built
        # under; if either moves, events() falls back to a full scan.
        self._monitor_key = (
            (self.collection.store.version, self.config.detector.config_key())
            if self.monitor is not None
            else None
        )

    @property
    def detector(self) -> CusumChangePointDetector:
        return self.config.detector

    @property
    def total_days(self) -> int:
        return len(self.epochs) * self.config.days_per_epoch

    @property
    def measurements(self) -> int:
        return sum(epoch.measurements_added for epoch in self.epochs)

    def day_counts(self) -> DayGroupedCounts:
        """Ragged (domain, country, day) success counts over the whole run.

        Streamed straight off the (possibly spilled) store via the query
        kernel; cached there, so repeated calls are free until the store
        grows.
        """
        return grouped_success_counts(self.collection.store, by_day=True)

    def timing_series(self) -> TimingDaySeries:
        """Per-(domain, country) day matrices of the configured timing quantile.

        The query kernel's ``Quantiles("elapsed_ms", ...)`` aggregate over
        the same grouping as :meth:`day_counts` — what the timing detector
        scans.  Cached on the store per version.
        """
        return timing_day_series(
            self.collection.store, quantile=self.config.timing_quantile
        )

    def timing_events(self) -> list[CensorshipEvent]:
        """Detected throttle onsets/offsets from the timing CUSUM (cached).

        The events success rates cannot see: bandwidth throttling completes
        every fetch, so :meth:`events` stays silent while the per-day
        ``elapsed_ms`` quantiles shift by the throttle factor.  Cache keyed
        on the store version and the timing detector's tuning, mirroring
        :meth:`events`.
        """
        key = (
            self.collection.store.version,
            self.config.timing_detector.config_key(),
            self.config.timing_quantile,
        )
        if self._timing_events is None or self._timing_events_key != key:
            self._timing_events = self.config.timing_detector.detect_events(
                self.timing_series()
            )
            self._timing_events_key = key
        return self._timing_events

    def events(self) -> list[CensorshipEvent]:
        """Detected censorship onsets/offsets (vectorized CUSUM, cached).

        The cache is keyed on the store version *and* the detector's tuning:
        swapping or retuning ``config.detector`` between calls recomputes
        instead of silently returning the previous detector's events.  A
        checkpointed run's events come straight off its incremental
        :class:`CusumState` (bit-identical to the full scan) for as long as
        that key holds.
        """
        key = (self.collection.store.version, self.detector.config_key())
        if self.monitor is not None and key == self._monitor_key:
            return list(self.monitor.events)
        if self._events is None or self._events_key != key:
            baselines = self.monitor.baselines if self.monitor is not None else None
            self._events = self.detector.detect_events(self.day_counts(), baselines)
            self._events_key = key
        return self._events

    def timeline_report(self):
        """Grade the detected events against the scripted ground truth."""
        from repro.analysis.reports import build_timeline_report

        return build_timeline_report(self.events(), self.timeline)

    def throttle_report(self):
        """Grade the timing detector's events against scripted throttles."""
        from repro.analysis.reports import build_throttle_report

        return build_throttle_report(self.timing_events(), self.timeline)


class LongitudinalEngine:
    """Drives one deployment through a timeline's epochs.

    The engine owns the world mutations: per epoch it writes the timeline's
    posture into ``world.config.timeline_rules``, refreshes the managed
    censors, slides the campaign's day window, and runs one campaign.  On
    exit — success or not — the original campaign-config day window and a
    rule-free world are restored, so the deployment remains usable for
    ordinary campaigns afterwards.

    With ``config.checkpoint_dir`` set the engine is an always-on monitor:
    each epoch's campaign runs through the sharded path with the checkpoint
    directory as its spill root (so completed epochs resume from their
    manifests after a crash), and after each epoch the store's new rows are
    sealed, folded incrementally into the day-bucketed aggregate, scanned by
    a resumable CUSUM state, and the state is checkpointed atomically.
    """

    #: Checkpoint file the resumable CUSUM state lives in.
    STATE_FILE = "cusum-state.json"

    def __init__(self, deployment, timeline: PolicyTimeline,
                 config: LongitudinalConfig | None = None) -> None:
        self.deployment = deployment
        self.timeline = timeline
        self.config = config or LongitudinalConfig()
        if self.config.days_per_epoch < 1:
            raise ValueError("days_per_epoch must be positive")
        if self.config.visits_per_epoch < 1:
            raise ValueError("visits_per_epoch must be positive")
        epochs = self.config.resolved_epochs(timeline)
        if epochs < 1:
            raise ValueError("a longitudinal run needs at least one epoch")
        self._epochs = epochs
        # Computed before any world mutation, so an interrupted run and its
        # resume (which both start from the pristine config) agree on it.
        self._monitor_signature = json.dumps(
            {
                "detector": list(self.config.detector.config_key()),
                "world": asdict(deployment.world.config),
                # Deliberately NOT the epoch count: a monitor's horizon may
                # be extended across restarts; per-day content must match.
                "timeline": [asdict(event) for event in timeline.events],
                "days_per_epoch": self.config.days_per_epoch,
                "visits_per_epoch": self.config.visits_per_epoch,
                "adaptive_baselines": self.config.adaptive_baselines,
            },
            sort_keys=True,
            default=str,
        )

    # ------------------------------------------------------------------
    def _restore_monitor(self, checkpoint_dir: Path) -> CusumState:
        """The previous run's checkpointed CUSUM state, or a fresh one."""
        state_path = checkpoint_dir / self.STATE_FILE
        if self.config.resume and state_path.is_file():
            return CusumState.load(state_path, self._monitor_signature)
        return self.config.detector.initial_state()

    def _resolve_tracer(self) -> tuple:
        """The run's tracer plus whether this engine owns its lifetime."""
        config = self.config
        if config.tracer is not None:
            return config.tracer, False
        if config.trace_dir is not None:
            return Tracer(Path(config.trace_dir) / TRACE_FILENAME), True
        return NULL_TRACER, False

    def _run_epoch_campaign(self, checkpoint_dir: Path | None, tracer) -> bool:
        """Run one epoch's campaign; True when it resumed from manifests."""
        config = self.config
        if checkpoint_dir is None:
            shard_kwargs = (
                {
                    "num_shards": config.num_shards,
                    "worker_spill_dir": config.worker_spill_dir,
                    "shard_executor": config.shard_executor,
                }
                if config.mode == "sharded"
                else {}
            )
            self.deployment.run_campaign(
                visits=config.visits_per_epoch,
                mode=config.mode,
                tracer=tracer if tracer is not NULL_TRACER else None,
                **shard_kwargs,
            )
            return False
        # Checkpointed epochs always go through the sharded path: its
        # signature-keyed manifests under checkpoint_dir are what make a
        # completed epoch resumable, and the merged rows are bit-identical
        # to mode="batch".  Non-sharded configs run one inline shard.
        sharded = config.mode == "sharded"
        resumed_shards: list[bool] = []
        self.deployment.run_campaign(
            visits=config.visits_per_epoch,
            mode="sharded",
            num_shards=config.num_shards if sharded else 1,
            worker_spill_dir=str(checkpoint_dir),
            shard_executor=config.shard_executor if sharded else "inline",
            progress=lambda shard: resumed_shards.append(shard.resumed),
            tracer=tracer if tracer is not NULL_TRACER else None,
        )
        return bool(resumed_shards) and all(resumed_shards)

    def run(self) -> LongitudinalResult:
        deployment = self.deployment
        config = self.config
        campaign_config = deployment.config
        world = deployment.world
        store = deployment.collection.store
        original_window = (campaign_config.days, campaign_config.day_offset)
        original_rules = world.config.timeline_rules
        checkpoint_dir = (
            Path(config.checkpoint_dir) if config.checkpoint_dir is not None else None
        )
        monitor: CusumState | None = None
        if checkpoint_dir is not None:
            checkpoint_dir.mkdir(parents=True, exist_ok=True)
            monitor = self._restore_monitor(checkpoint_dir)
        summaries: list[EpochSummary] = []
        tracer, owns_tracer = self._resolve_tracer()
        try:
            with tracer.span(
                "longitudinal",
                epochs=self._epochs,
                days_per_epoch=config.days_per_epoch,
                visits_per_epoch=config.visits_per_epoch,
            ):
                for epoch in range(self._epochs):
                    first_day = epoch * config.days_per_epoch
                    state = self.timeline.state_at(first_day)
                    world.config.timeline_rules = state
                    world.refresh_timeline_censors()
                    campaign_config.days = config.days_per_epoch
                    campaign_config.day_offset = first_day
                    before = len(deployment.collection)
                    with tracer.span("epoch", epoch=epoch, first_day=first_day):
                        resumed = self._run_epoch_campaign(checkpoint_dir, tracer)
                        registry = get_registry()
                        registry.counter("longitudinal.epochs_run").add(1)
                        if resumed:
                            registry.counter("longitudinal.epochs_resumed").add(1)
                        summaries.append(
                            EpochSummary(
                                epoch=epoch,
                                first_day=first_day,
                                days=config.days_per_epoch,
                                visits=config.visits_per_epoch,
                                measurements_added=(
                                    len(deployment.collection) - before
                                ),
                                blocked=self._pairs(state, "block"),
                                throttled=self._pairs(state, "throttle"),
                                resumed=resumed,
                            )
                        )
                        if monitor is not None:
                            # Seal so the epoch's rows join the store's
                            # persistent fold state (sealed segments fold
                            # exactly once); the CUSUM then advances over
                            # only the new day columns.
                            with tracer.span("seal", epoch=epoch):
                                store.seal_pending()
                            if (
                                config.adaptive_baselines
                                and monitor.baselines is None
                                and monitor.days_processed == 0
                            ):
                                monitor.baselines = config.detector.seeded_baselines(
                                    grouped_success_counts(store)
                                )
                            # Dense matrices straight off the fold
                            # accumulator: same events as the ragged
                            # day_counts(), without the O(history) cell
                            # materialization per epoch.
                            with tracer.span("detect", epoch=epoch):
                                config.detector.resume(
                                    monitor, dense_day_series(store)
                                )
                            with tracer.span("checkpoint", epoch=epoch):
                                monitor.save(
                                    checkpoint_dir / self.STATE_FILE,
                                    self._monitor_signature,
                                )
        finally:
            campaign_config.days, campaign_config.day_offset = original_window
            world.config.timeline_rules = original_rules
            world.refresh_timeline_censors()
            tracer.record_metrics(scope="campaign")
            if owns_tracer:
                tracer.close()
        return LongitudinalResult(
            config=config,
            timeline=self.timeline,
            collection=deployment.collection,
            epochs=summaries,
            monitor=monitor,
        )

    @staticmethod
    def _pairs(state: dict[str, dict[str, str]], posture: str) -> tuple:
        return tuple(
            sorted(
                (country, domain)
                for country, rules in state.items()
                for domain, rule_posture in rules.items()
                if rule_posture == posture
            )
        )
