"""Longitudinal campaigns: time-varying censorship over simulated days.

Encore's core promise is *longitudinal* measurement — continuous background
collection that reveals when a country starts or stops filtering a site —
and this module is the workload that cashes it in.  A longitudinal run is a
sequence of **epochs** over simulated days:

1. **Policy.**  A :class:`~repro.censor.policy.PolicyTimeline` scripts
   onset/offset/throttle events per (country, domain).  Before each epoch
   the engine publishes the epoch's posture into
   ``WorldConfig.timeline_rules`` and calls
   :meth:`World.refresh_timeline_censors`, which swings per-country managed
   censors via the :meth:`BlacklistPolicy.replace_domains` hook.  Because
   the posture lives in the (JSON-serializable) world config, sharded
   workers that rebuild the world enforce the same policy, and the sharded
   campaign signature covers it.
2. **Collect.**  Each epoch runs one ordinary campaign over its day window
   (``CampaignConfig.day_offset`` slides per epoch) through the block-keyed
   planner, so an epoch is reproducible from ``(seed, epoch)`` alone and
   can fan out across worker processes with ``mode="sharded"``.  All epochs
   ingest into one (possibly spilled) collection store.
3. **Aggregate.**  ``store.success_counts(by_day=True)`` reduces the whole
   corpus to ragged (domain, country, day) cells — streamed
   segment-by-segment, fully vectorized, nothing concatenated.
4. **Detect.**  :class:`~repro.core.inference.CusumChangePointDetector`
   scans every cell's daily success-rate series online and emits
   :class:`~repro.core.inference.CensorshipEvent` onsets/offsets with their
   detection lag; :func:`~repro.analysis.reports.build_timeline_report`
   grades them against the scripted ground truth.

Front door: :meth:`EncoreDeployment.run_longitudinal`.  Throughput of the
aggregation + detection stage is tracked by
``benchmarks/test_bench_longitudinal.py`` (``BENCH_longitudinal.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.censor.policy import PolicyTimeline
from repro.core.inference import CensorshipEvent, CusumChangePointDetector
from repro.core.store import DayGroupedCounts


@dataclass
class LongitudinalConfig:
    """Parameters of one longitudinal (multi-epoch) run."""

    #: How many epochs to run.  ``None`` covers the timeline: enough epochs
    #: that the last scripted event has at least ``trailing_epochs`` of
    #: post-event data to be detected from.
    epochs: int | None = None
    #: Simulated days per epoch (the policy is re-evaluated per epoch, so
    #: this is also the granularity at which scripted events take effect).
    days_per_epoch: int = 1
    #: Origin-site visits simulated per epoch.
    visits_per_epoch: int = 2000
    #: Execution mode of each epoch's campaign: ``"batch"`` (default),
    #: ``"serial"``, or ``"sharded"`` (fans each epoch out over worker
    #: processes; merged results are identical to ``"batch"``).
    mode: str = "batch"
    #: ``mode="sharded"`` knobs, passed through to ``run_campaign``.
    num_shards: int | None = None
    worker_spill_dir: str | None = None
    shard_executor: str | None = None
    #: Epochs kept running after the last scripted event when ``epochs`` is
    #: unset, so offsets near the end of the script remain detectable.
    trailing_epochs: int = 5
    #: The online change-point detector run over the day-bucketed rates.
    detector: CusumChangePointDetector = field(default_factory=CusumChangePointDetector)

    def resolved_epochs(self, timeline: PolicyTimeline) -> int:
        if self.epochs is not None:
            return self.epochs
        final_epoch = timeline.final_day() // self.days_per_epoch
        return final_epoch + 1 + self.trailing_epochs


@dataclass(frozen=True)
class EpochSummary:
    """What one epoch ran: its day window, volume, and the posture in force."""

    epoch: int
    first_day: int
    days: int
    visits: int
    measurements_added: int
    #: (country, domain) pairs hard-blocked during the epoch.
    blocked: tuple[tuple[str, str], ...]
    #: (country, domain) pairs throttled during the epoch.
    throttled: tuple[tuple[str, str], ...]


@dataclass
class LongitudinalResult:
    """Everything a longitudinal run produced, with lazy detection."""

    config: LongitudinalConfig
    timeline: PolicyTimeline
    collection: object  #: the deployment's CollectionServer
    epochs: list[EpochSummary]

    def __post_init__(self) -> None:
        self._events: list[CensorshipEvent] | None = None
        self._events_version = -1

    @property
    def detector(self) -> CusumChangePointDetector:
        return self.config.detector

    @property
    def total_days(self) -> int:
        return len(self.epochs) * self.config.days_per_epoch

    @property
    def measurements(self) -> int:
        return sum(epoch.measurements_added for epoch in self.epochs)

    def day_counts(self) -> DayGroupedCounts:
        """Ragged (domain, country, day) success counts over the whole run.

        Streamed straight off the (possibly spilled) store; cached there, so
        repeated calls are free until the store grows.
        """
        return self.collection.store.success_counts(by_day=True)

    def events(self) -> list[CensorshipEvent]:
        """Detected censorship onsets/offsets (vectorized CUSUM, cached)."""
        version = self.collection.store.version
        if self._events is None or self._events_version != version:
            self._events = self.detector.detect_events(self.day_counts())
            self._events_version = version
        return self._events

    def timeline_report(self):
        """Grade the detected events against the scripted ground truth."""
        from repro.analysis.reports import build_timeline_report

        return build_timeline_report(self.events(), self.timeline)


class LongitudinalEngine:
    """Drives one deployment through a timeline's epochs.

    The engine owns the world mutations: per epoch it writes the timeline's
    posture into ``world.config.timeline_rules``, refreshes the managed
    censors, slides the campaign's day window, and runs one campaign.  On
    exit — success or not — the original campaign-config day window and a
    rule-free world are restored, so the deployment remains usable for
    ordinary campaigns afterwards.
    """

    def __init__(self, deployment, timeline: PolicyTimeline,
                 config: LongitudinalConfig | None = None) -> None:
        self.deployment = deployment
        self.timeline = timeline
        self.config = config or LongitudinalConfig()
        if self.config.days_per_epoch < 1:
            raise ValueError("days_per_epoch must be positive")
        if self.config.visits_per_epoch < 1:
            raise ValueError("visits_per_epoch must be positive")
        epochs = self.config.resolved_epochs(timeline)
        if epochs < 1:
            raise ValueError("a longitudinal run needs at least one epoch")
        self._epochs = epochs

    # ------------------------------------------------------------------
    def run(self) -> LongitudinalResult:
        deployment = self.deployment
        config = self.config
        campaign_config = deployment.config
        world = deployment.world
        original_window = (campaign_config.days, campaign_config.day_offset)
        original_rules = world.config.timeline_rules
        summaries: list[EpochSummary] = []
        try:
            for epoch in range(self._epochs):
                first_day = epoch * config.days_per_epoch
                state = self.timeline.state_at(first_day)
                world.config.timeline_rules = state
                world.refresh_timeline_censors()
                campaign_config.days = config.days_per_epoch
                campaign_config.day_offset = first_day
                before = len(deployment.collection)
                shard_kwargs = (
                    {
                        "num_shards": config.num_shards,
                        "worker_spill_dir": config.worker_spill_dir,
                        "shard_executor": config.shard_executor,
                    }
                    if config.mode == "sharded"
                    else {}
                )
                deployment.run_campaign(
                    visits=config.visits_per_epoch, mode=config.mode, **shard_kwargs
                )
                summaries.append(
                    EpochSummary(
                        epoch=epoch,
                        first_day=first_day,
                        days=config.days_per_epoch,
                        visits=config.visits_per_epoch,
                        measurements_added=len(deployment.collection) - before,
                        blocked=self._pairs(state, "block"),
                        throttled=self._pairs(state, "throttle"),
                    )
                )
        finally:
            campaign_config.days, campaign_config.day_offset = original_window
            world.config.timeline_rules = original_rules
            world.refresh_timeline_censors()
        return LongitudinalResult(
            config=config,
            timeline=self.timeline,
            collection=deployment.collection,
            epochs=summaries,
        )

    @staticmethod
    def _pairs(state: dict[str, dict[str, str]], posture: str) -> tuple:
        return tuple(
            sorted(
                (country, domain)
                for country, rules in state.items()
                for domain, rule_posture in rules.items()
                if rule_posture == posture
            )
        )
