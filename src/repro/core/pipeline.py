"""End-to-end Encore deployment: wiring the stages into a runnable campaign.

An :class:`EncoreDeployment` composes a :class:`~repro.population.world.World`
with the core stages — task generation, scheduling, coordination, collection,
and inference — and drives simulated measurement campaigns: clients visit
origin sites, receive tasks from the coordination server, execute them in
their browsers, and submit results to the collection server.  The §7
experiments (soundness against the testbed, detection of real-world
filtering, campaign scale) are all thin wrappers around
:meth:`EncoreDeployment.run_campaign`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.censor.testbed import CensorshipTestbed
from repro.core.collection import CollectionServer, Measurement
from repro.core.coordination import CoordinationServer
from repro.core.inference import BinomialFilteringDetector, DetectionReport
from repro.core.origin import OriginSite
from repro.core.scheduler import Scheduler, TaskPool
from repro.core.targets import TargetList
from repro.core.task_generation import (
    FeasibilityReport,
    TaskGenerationLimits,
    TaskGenerationPipeline,
)
from repro.core.tasks import MeasurementTask, TaskType, execute_task
from repro.population.world import World
from repro.web.url import URL


@dataclass
class CampaignConfig:
    """Parameters of one simulated measurement campaign."""

    #: Number of origin-site visits to simulate.
    visits: int = 5000
    #: Length of the campaign in days (timestamps are spread uniformly).
    days: int = 30
    #: First day of the campaign's window: visit days are drawn from
    #: ``[day_offset, day_offset + days)``.  The longitudinal engine runs a
    #: campaign per epoch with a sliding offset so the ``day`` column spans
    #: the whole simulated timeline.
    day_offset: int = 0
    #: Domains whose filtering the campaign measures.  The paper's reported
    #: deployment measured only Facebook, YouTube, and Twitter (§7.2).
    target_domains: tuple[str, ...] = ("facebook.com", "youtube.com", "twitter.com")
    #: Whether task generation is restricted to favicons (the paper's
    #: April 2014 onward configuration).
    favicons_only: bool = True
    #: Whether to include the §7.1 soundness testbed and direct a fraction of
    #: clients at it.
    include_testbed: bool = True
    #: Fraction of clients measuring testbed resources (paper: ~30%).
    testbed_fraction: float = 0.3
    seed: int = 0
    #: Pin every visitor to one country (``None`` samples the global visit
    #: share distribution); used by scenario sweeps.
    country_code: str | None = None
    #: Default execution mode for :meth:`EncoreDeployment.run_campaign`:
    #: ``"batch"`` (vectorized), ``"serial"`` (scalar reference with identical
    #: results), ``"sharded"`` (the batch path fanned out over worker
    #: processes), or ``"legacy"`` (the original per-visit browser loop).
    mode: str = "batch"
    #: Visits per runner batch (progress/checkpoint granularity).
    batch_size: int | None = None
    #: Visits per planning block — the unit whose randomness derives from
    #: ``(seed, epoch, block_index)`` alone.  Part of the campaign's
    #: identity: changing it changes the sampled campaign (batch size does
    #: not).  Also the sharding granularity of ``mode="sharded"``.
    plan_block_visits: int = 2048
    #: Bound on measurement rows kept resident by the collection store;
    #: sealed column segments beyond the bound spill to ``.npz`` files
    #: (``None`` keeps everything in memory).
    max_rows_in_memory: int | None = None
    #: Where spilled segments go (a temporary directory if unset).
    spill_dir: str | None = None
    #: Worker processes for ``mode="sharded"``.  ``None`` resolves via
    #: :func:`repro.core.shard.default_num_shards`: the CPUs *available* to
    #: the process (scheduler-affinity-aware, so cgroup/NUMA pinning is
    #: respected), capped by the number of planning blocks, always ≥ 1.
    num_shards: int | None = None
    #: Where shard workers write their spill segments + manifests.  Setting
    #: it makes an interrupted sharded campaign resumable: shards whose
    #: manifest is already on disk are adopted without re-execution.  Unset,
    #: a temporary directory is used.
    worker_spill_dir: str | None = None
    #: How shard workers run: ``"process"`` (a real
    #: ``ProcessPoolExecutor``) or ``"inline"`` (sequentially in-process —
    #: deterministic, dependency-free, used by tests and single-CPU hosts).
    shard_executor: str = "process"


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    config: CampaignConfig
    collection: CollectionServer
    coordination: CoordinationServer
    visits_simulated: int
    task_executions: int
    feasibility: FeasibilityReport | None = None
    #: Which execution path produced this result ("batch"/"serial"/"legacy").
    mode: str = "legacy"

    @property
    def measurements(self) -> list[Measurement]:
        """Every collected measurement, materialized from the columnar store."""
        return self.collection.measurements

    def detect(
        self,
        success_prior: float = 0.7,
        significance: float = 0.05,
        min_measurements: int = 10,
    ) -> DetectionReport:
        """Run the §7.2 binomial detection over the campaign's measurements."""
        detector = BinomialFilteringDetector(
            success_prior=success_prior,
            significance=significance,
            min_measurements=min_measurements,
        )
        return detector.detect(self.collection)

    def adversary_sweep(
        self,
        target_domain: str,
        country_code: str,
        budgets,
        *,
        fabricate_blocking: bool = True,
        detector: BinomialFilteringDetector | None = None,
        reputation=None,
        executor: str = "process",
        num_workers: int | None = None,
        spill_dir: str | None = None,
        seed: int = 0,
    ):
        """Run a §8 poisoning attack-budget sweep against this campaign.

        Each ``(submissions, identities)`` budget in ``budgets`` is forged,
        merged with this campaign's store by zero-copy segment adoption, and
        scored with and without reputation filtering — entirely on the
        columnar store path (:class:`~repro.core.robustness.AdversarySweep`).
        ``executor="process"`` fans the forging out across worker processes;
        a persistent ``spill_dir`` makes re-runs adopt already-forged cells.
        Returns one :class:`~repro.core.robustness.SweepCell` per budget.
        """
        from repro.core.robustness import AdversarySweep

        sweep = AdversarySweep(
            detector,
            reputation,
            fabricate_blocking=fabricate_blocking,
            executor=executor,
            num_workers=num_workers,
            spill_dir=spill_dir,
            seed=seed,
        )
        return sweep.run(self.collection, target_domain, country_code, budgets)

    def _testbed_selection(self):
        return self.collection.store.select(
            domain_suffix="encore-testbed.net",
            exclude_automated=False,
            exclude_inconclusive=False,
        )

    def testbed_measurements(self) -> list[Measurement]:
        return self._testbed_selection().materialize()

    def target_measurements(self) -> list[Measurement]:
        return self._testbed_selection().invert().materialize()


class EncoreDeployment:
    """A fully wired Encore deployment inside a simulated world."""

    def __init__(self, world: World, config: CampaignConfig | None = None) -> None:
        self.world = world
        self.config = config or CampaignConfig()
        self._rng = np.random.default_rng(self.config.seed + 100)

        # --- Testbed (soundness experiments) ------------------------------
        self.testbed: CensorshipTestbed | None = None
        if self.config.include_testbed:
            self.testbed = CensorshipTestbed(rng=np.random.default_rng(self.config.seed + 7))
            self.testbed.register(self.world.universe)
            for censor in self.testbed.censors():
                self.world.add_global_interceptor(censor)

        # --- Task generation -----------------------------------------------
        self.generation_limits = TaskGenerationLimits(favicons_only=self.config.favicons_only)
        self.generation_pipeline = TaskGenerationPipeline(
            self.world.search, self.world.headless, self.generation_limits
        )
        target_list = TargetList.high_value().restrict_to_domains(self.config.target_domains)
        generation = self.generation_pipeline.run(target_list.entries)
        self.feasibility = generation.report
        self.target_tasks: list[MeasurementTask] = generation.tasks
        self.testbed_tasks: list[MeasurementTask] = (
            self._build_testbed_tasks() if self.testbed else []
        )

        # --- Servers ---------------------------------------------------------
        pools = [
            TaskPool(
                name="targets",
                tasks=self.target_tasks,
                weight=1.0 - (self.config.testbed_fraction if self.testbed_tasks else 0.0),
            )
        ]
        if self.testbed_tasks:
            pools.append(
                TaskPool(name="testbed", tasks=self.testbed_tasks, weight=self.config.testbed_fraction)
            )
        self.scheduler = Scheduler(pools, rng=np.random.default_rng(self.config.seed + 11))
        self.coordination = CoordinationServer(
            scheduler=self.scheduler,
            task_url=self.world.coordination_url,
            collection_url=self.world.collection_url,
        )
        self.collection = CollectionServer(
            submit_url=self.world.collection_url,
            geoip=self.world.geoip,
            max_rows_in_memory=self.config.max_rows_in_memory,
            spill_dir=self.config.spill_dir,
        )

        # --- Origin sites ----------------------------------------------------
        # A sampled subset of origins strips the Referer header: exactly
        # round(N * REFERER_STRIP_FRACTION) of them, at RNG-chosen positions,
        # so the stripping fraction matches the paper's 3/4 regardless of how
        # the origin list happens to be ordered.
        origin_count = len(self.world.origin_domains)
        strip_count = int(round(origin_count * CollectionServer.REFERER_STRIP_FRACTION))
        stripping = set(self._rng.permutation(origin_count)[:strip_count].tolist())
        self.origins: list[OriginSite] = []
        for index, domain in enumerate(self.world.origin_domains):
            site = self.world.universe.site(domain)
            self.origins.append(
                OriginSite(
                    site=site,
                    coordination_url=self.world.coordination_url,
                    strips_referer=index in stripping,
                    reciprocity_enrolled=index % 3 == 0,
                )
            )
        #: Monotone counter so successive campaigns on one deployment draw
        #: fresh (but reproducible) randomness.
        self._campaign_epoch = 0
        #: Cumulative visits of the campaigns already started, used as the
        #: base for client id / IP-host numbering so two campaigns on one
        #: deployment never mint colliding client identities.
        self._visit_base = 0

    # ------------------------------------------------------------------
    def _build_testbed_tasks(self) -> list[MeasurementTask]:
        """Tasks exercising all four mechanisms against every testbed host."""
        tasks: list[MeasurementTask] = []
        assert self.testbed is not None
        for host in self.testbed.hosts:
            favicon = self.testbed.favicon_url(host)
            tasks.append(
                MeasurementTask.new(TaskType.IMAGE, favicon, category="testbed",
                                    estimated_overhead_bytes=620)
            )
            tasks.append(
                MeasurementTask.new(
                    TaskType.STYLE_SHEET,
                    self.testbed.stylesheet_url(host),
                    category="testbed",
                    estimated_overhead_bytes=2048,
                )
            )
            tasks.append(
                MeasurementTask.new(
                    TaskType.SCRIPT,
                    self.testbed.script_url(host),
                    category="testbed",
                    estimated_overhead_bytes=4096,
                )
            )
            tasks.append(
                MeasurementTask.new(
                    TaskType.INLINE_FRAME,
                    self.testbed.page_url(host),
                    probe_image_url=self.testbed.favicon_url(host),
                    category="testbed",
                    estimated_overhead_bytes=32 * 1024,
                )
            )
        return tasks

    # ------------------------------------------------------------------
    @property
    def campaigns_run(self) -> int:
        """How many campaigns this deployment has started."""
        return self._campaign_epoch

    def next_campaign_epoch(self) -> int:
        """Advance and return the campaign counter (seeds per-run RNG streams)."""
        self._campaign_epoch += 1
        return self._campaign_epoch

    def claim_visit_range(self, visits: int) -> int:
        """Reserve ``visits`` slots of the deployment's visit numbering.

        Returns the base index of the reserved range.  Client ids and
        per-country IP hosts are numbered by global visit index, so each
        campaign claiming its range up front keeps identities unique across
        successive campaigns on one deployment (until a country's IP space
        wraps, exactly like the counter-based allocator it replaced).
        """
        base = self._visit_base
        self._visit_base += visits
        return base

    def simulate_visit(self, day: int | None = None, country_code: str | None = None) -> int:
        """Simulate one origin-site visit; returns the number of submissions."""
        client = self.world.sample_client(country_code or self.config.country_code)
        origin = self.origins[int(self._rng.integers(0, len(self.origins)))]
        browser = self.world.make_browser(client)
        day = (
            day
            if day is not None
            else int(self.config.day_offset + self._rng.integers(0, self.config.days))
        )
        decision = self.coordination.deliver(client, browser)
        submissions = 0
        for task in decision.tasks:
            result = execute_task(task, browser)
            measurement = self.collection.submit(
                result,
                client,
                browser,
                origin_domain=origin.domain,
                day=day,
                strip_referer=origin.strips_referer,
            )
            if measurement is not None:
                submissions += 1
        return submissions

    def run_campaign(
        self,
        visits: int | None = None,
        mode: str | None = None,
        batch_size: int | None = None,
        progress=None,
        resume_from_batch: int = 0,
        num_shards: int | None = None,
        worker_spill_dir: str | None = None,
        shard_executor: str | None = None,
        tracer=None,
    ) -> CampaignResult:
        """Simulate a full campaign of origin-site visits.

        Delegates to :class:`~repro.core.runner.CampaignRunner`: ``"batch"``
        (the default) is the vectorized fast path, ``"serial"`` the scalar
        reference implementation that produces identical measurements for a
        fixed seed, and ``"legacy"`` the original one-browser-per-visit loop
        retained as a full-fidelity baseline.  ``progress`` is invoked with a
        :class:`~repro.core.runner.BatchProgress` after every batch;
        ``resume_from_batch`` skips already-completed batches.

        ``mode="sharded"`` fans the batch path out across worker processes
        (:func:`repro.core.shard.run_sharded`) and merges the workers'
        spilled segments back into this deployment's store; for a fixed seed
        the merged campaign is identical to ``mode="batch"`` at any
        ``num_shards``.  ``progress`` then receives a
        :class:`~repro.core.shard.ShardProgress` per completed shard, and a
        re-run pointed at the same ``worker_spill_dir`` resumes by adopting
        the manifests of shards that already finished.
        """
        from repro.core.runner import CampaignRunner

        mode = mode if mode is not None else self.config.mode
        visits = visits if visits is not None else self.config.visits
        if mode == "sharded":
            if resume_from_batch or batch_size is not None:
                raise ValueError(
                    "mode='sharded' executes whole planning blocks and "
                    "resumes from worker manifests (worker_spill_dir); "
                    "batch_size and resume_from_batch do not apply"
                )
            from repro.core.shard import run_sharded

            return run_sharded(
                self,
                visits=visits,
                num_shards=num_shards,
                worker_spill_dir=worker_spill_dir,
                shard_executor=shard_executor,
                progress=progress,
                tracer=tracer,
            )
        if num_shards is not None or worker_spill_dir is not None or shard_executor is not None:
            raise ValueError(
                "num_shards, worker_spill_dir, and shard_executor only apply "
                "to mode='sharded'"
            )
        if mode == "legacy":
            if (
                progress is not None
                or resume_from_batch
                or batch_size is not None
                or tracer is not None
            ):
                raise ValueError(
                    "mode='legacy' runs visit-by-visit and supports none of "
                    "progress, batch_size, resume_from_batch, or tracer"
                )
            # Count the campaign even though the legacy loop draws from the
            # deployment/world RNGs directly: it advances shared state (GeoIP
            # counters, scheduler counts), so the runner's resume-staleness
            # guard must see it.  Claiming the visit range keeps a later
            # batch campaign's identity numbering clear of the legacy
            # allocator's dense per-country counters.
            self.next_campaign_epoch()
            self.claim_visit_range(visits)
            executions = 0
            for _ in range(visits):
                executions += self.simulate_visit()
            return CampaignResult(
                config=self.config,
                collection=self.collection,
                coordination=self.coordination,
                visits_simulated=visits,
                task_executions=executions,
                feasibility=self.feasibility,
                mode="legacy",
            )
        runner = CampaignRunner(
            self,
            mode=mode,
            batch_size=batch_size if batch_size is not None else self.config.batch_size,
            progress=progress,
            tracer=tracer,
        )
        if tracer is not None:
            # The sharded path opens its own campaign root span; give the
            # in-process modes the same shape so summaries line up.
            with tracer.span("campaign", visits=visits, shards=0):
                return runner.run(visits, resume_from_batch=resume_from_batch)
        return runner.run(visits, resume_from_batch=resume_from_batch)

    def run_longitudinal(self, timeline, config=None):
        """Run an epoch-by-epoch campaign against a time-varying censor policy.

        ``timeline`` is a :class:`~repro.censor.policy.PolicyTimeline`
        scripting per-(country, domain) onset/offset/throttle events;
        ``config`` a :class:`~repro.core.longitudinal.LongitudinalConfig`
        (defaults cover a 30-day, one-day-per-epoch run).  Each epoch is one
        block-keyed campaign over its day window — reproducible from
        ``(seed, epoch)`` and shardable via ``mode="sharded"`` — ingested
        into this deployment's collection store.  Returns a
        :class:`~repro.core.longitudinal.LongitudinalResult` whose
        ``events()`` runs online CUSUM change-point detection over the
        day-bucketed success rates and whose ``timeline_report()`` grades
        those events against the scripted ground truth.
        """
        from repro.core.longitudinal import LongitudinalEngine

        return LongitudinalEngine(self, timeline, config).run()

    # ------------------------------------------------------------------
    # Convenience constructors for the paper's experiments
    # ------------------------------------------------------------------
    @classmethod
    def soundness_experiment(cls, seed: int = 0, visits: int = 4000) -> "EncoreDeployment":
        """The §7.1 configuration: testbed measurements enabled."""
        world = World()
        config = CampaignConfig(
            visits=visits,
            include_testbed=True,
            testbed_fraction=0.3,
            favicons_only=True,
            seed=seed,
        )
        return cls(world, config)

    @classmethod
    def detection_experiment(cls, seed: int = 0, visits: int = 8000) -> "EncoreDeployment":
        """The §7.2 configuration: measure Facebook, YouTube, and Twitter."""
        world = World()
        config = CampaignConfig(
            visits=visits,
            include_testbed=False,
            favicons_only=True,
            target_domains=("facebook.com", "youtube.com", "twitter.com"),
            seed=seed,
        )
        return cls(world, config)
