"""The collection server and measurement records (paper §5.5).

After running a task, a client submits the result — success or failure,
timing, and the measurement ID — with an AJAX request to the collection
server.  Submission is itself a network operation the censor can block, so it
is modelled as a fetch through the client's path.  The server annotates each
record with what it can observe about the submitter: the source IP (which the
analysis geolocates), the browser family, and the Referer header unless the
origin site strips it (the paper notes 3/4 of measurements arrived with the
Referer stripped, obscuring which origin delivered them).

Internally the server keeps the corpus in a columnar
:class:`~repro.core.store.MeasurementStore` (struct of arrays, optional disk
spill) rather than a Python list of records; :class:`Measurement` survives as
the row view the store materializes on demand, and the legacy query surface
(``measurements``, :meth:`filtered`, :meth:`success_counts`, the distinct
counters) is implemented on top of the store's vectorized queries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Iterable, NamedTuple

import numpy as np

from repro.browser.engine import Browser
from repro.core.query import distinct_ip_count, grouped_success_counts
from repro.core.store import DictColumn, MeasurementStore
from repro.core.tasks import TaskOutcome, TaskResult, TaskType
from repro.population.clients import Client
from repro.population.geoip import GeoIPDatabase
from repro.web.url import URL


@dataclass(frozen=True)
class Measurement:
    """One measurement as stored by the collection server.

    Rows live columnar inside :class:`~repro.core.store.MeasurementStore`;
    instances of this dataclass are the materialized row view, constructed on
    demand and field-for-field identical to what the original row-list
    server stored.
    """

    measurement_id: str
    task_type: TaskType
    target_url: URL
    target_domain: str
    outcome: TaskOutcome
    elapsed_ms: float
    client_ip: str
    country_code: str
    isp: str
    browser_family: str
    origin_domain: str | None
    day: int
    probe_time_ms: float | None = None
    is_automated: bool = False

    @property
    def succeeded(self) -> bool:
        return self.outcome is TaskOutcome.SUCCESS

    @property
    def failed(self) -> bool:
        return self.outcome is TaskOutcome.FAILURE


class SubmissionRecord(NamedTuple):
    """One already-delivered submission, ready for bulk ingestion.

    The batched campaign runner resolves the network path (whether the
    submission reached the server) itself and streams the survivors into
    :meth:`CollectionServer.ingest_records`; plain tuples with this field
    order are accepted too.
    """

    measurement_id: str
    task_type: "TaskType"
    target_url: URL
    target_domain: str
    outcome: TaskOutcome
    elapsed_ms: float
    probe_time_ms: float | None
    client_ip: str
    country_code: str
    isp: str
    browser_family: str
    origin_domain: str | None
    day: int
    strip_referer: bool
    is_automated: bool


@dataclass
class ColumnarRecords:
    """Already-delivered submissions as columns, ready for zero-copy ingestion.

    The batch executor produces this instead of row tuples: repeated values
    (task attributes, per-visit client attributes, per-origin Referer
    stripping) travel as :class:`~repro.core.store.DictColumn` value tables
    plus index arrays, and genuinely per-row quantities (outcome codes,
    elapsed times) as numpy arrays.  ``client_ip`` and ``country_code`` must
    share one ``indices`` array (one entry per submitting visit), which is
    what lets the collection server geolocate each *visit* once instead of
    each row.  ``origin_domain`` values already have Referer stripping
    applied (``None`` where the origin strips).  ``measurement_id`` may be a
    plain per-row array instead of a :class:`DictColumn` when ids are unique
    per row (forged submissions).
    """

    measurement_id: DictColumn | np.ndarray
    task_type: DictColumn
    target_url: DictColumn
    target_domain: DictColumn
    outcome: DictColumn
    elapsed_ms: np.ndarray
    probe_time_ms: np.ndarray
    client_ip: DictColumn
    country_code: DictColumn
    isp: DictColumn
    browser_family: DictColumn
    origin_domain: DictColumn
    day: np.ndarray
    is_automated: np.ndarray

    def __len__(self) -> int:
        return len(self.elapsed_ms)

    def append_to(self, store: MeasurementStore) -> int:
        """Append these columns to a bare store, with zero per-row work.

        No geolocation happens here — ``country_code`` is stored as given.
        :meth:`CollectionServer.ingest_columns` resolves countries first and
        then lands on this method; forged corpora and replay tooling append
        straight to a store through it.
        """
        return store.append_columns(
            measurement_id=self.measurement_id,
            task_type=self.task_type,
            target_url=self.target_url,
            target_domain=self.target_domain,
            outcome=self.outcome,
            elapsed_ms=self.elapsed_ms,
            probe_time_ms=self.probe_time_ms,
            client_ip=self.client_ip,
            country_code=self.country_code,
            isp=self.isp,
            browser_family=self.browser_family,
            origin_domain=self.origin_domain,
            day=self.day,
            is_automated=self.is_automated,
        )


class CollectionServer:
    """Receives, geolocates, and stores measurement submissions."""

    #: Fraction of origin sites configured to strip the Referer header when
    #: their visitors submit results (paper §7: 3/4 of measurements).
    REFERER_STRIP_FRACTION = 0.75

    def __init__(
        self,
        submit_url: URL | str,
        geoip: GeoIPDatabase | None = None,
        store: MeasurementStore | None = None,
        max_rows_in_memory: int | None = None,
        spill_dir: str | None = None,
    ) -> None:
        self.submit_url = submit_url if isinstance(submit_url, URL) else URL.parse(submit_url)
        self.geoip = geoip or GeoIPDatabase()
        # ``is not None``: a freshly built store is empty and therefore falsy,
        # but it is still the store the caller wants measurements to land in.
        self.store = (
            store
            if store is not None
            else MeasurementStore(max_rows_in_memory=max_rows_in_memory, spill_dir=spill_dir)
        )
        self.rejected_submissions = 0
        self.unreachable_submissions = 0
        self._materialized: list[Measurement] | None = None
        self._materialized_version = -1

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def submit(
        self,
        result: TaskResult,
        client: Client,
        browser: Browser,
        origin_domain: str | None,
        day: int = 0,
        strip_referer: bool = False,
    ) -> Measurement | None:
        """Accept a submission if the client can reach the collection server."""
        outcome, from_cache, _ = browser.fetch(self.submit_url, use_cache=False)
        reachable = from_cache or (outcome is not None and outcome.succeeded_with_content)
        if not reachable:
            self.unreachable_submissions += 1
            return None
        return self.record(result, client, origin_domain, day, strip_referer)

    def record(
        self,
        result: TaskResult,
        client: Client,
        origin_domain: str | None,
        day: int = 0,
        strip_referer: bool = False,
    ) -> Measurement:
        """Store a submission that reached the server (no network involved)."""
        country = self.geoip.lookup(client.ip_address) or client.country_code
        measurement = Measurement(
            measurement_id=result.measurement_id,
            task_type=result.task_type,
            target_url=result.target_url,
            target_domain=result.target_domain,
            outcome=result.outcome,
            elapsed_ms=result.elapsed_ms,
            client_ip=client.ip_address,
            country_code=country,
            isp=client.isp,
            browser_family=client.browser.family.value,
            origin_domain=None if strip_referer else origin_domain,
            day=day,
            probe_time_ms=result.probe_time_ms,
            is_automated=client.is_automated,
        )
        self.store.append_rows((measurement,))
        return measurement

    def ingest_records(
        self, records: Iterable[SubmissionRecord | tuple], unreachable: int = 0
    ) -> int:
        """Columnar bulk ingestion of submissions whose network path succeeded.

        ``records`` follow :class:`SubmissionRecord`'s layout; they are
        transposed into columns, geolocated with one batched GeoIP pass, and
        appended to the store without constructing a single
        :class:`Measurement`.  ``unreachable`` counts submissions the
        campaign attempted but that never reached the server (censored or
        lost).  Returns how many records were stored.
        """
        if not isinstance(records, (list, tuple)):
            records = list(records)
        self.unreachable_submissions += unreachable
        if not records:
            return 0
        (
            measurement_id, task_type, target_url, target_domain, outcome,
            elapsed_ms, probe_time_ms, client_ip, country_code, isp,
            browser_family, origin_domain, day, strip_referer, is_automated,
        ) = zip(*records)
        located = self.geoip.lookup_batch(client_ip)
        return self.store.append_columns(
            measurement_id=measurement_id,
            task_type=task_type,
            target_url=target_url,
            target_domain=target_domain,
            outcome=outcome,
            elapsed_ms=elapsed_ms,
            probe_time_ms=probe_time_ms,
            client_ip=client_ip,
            country_code=[
                found or fallback for found, fallback in zip(located, country_code)
            ],
            isp=isp,
            browser_family=browser_family,
            origin_domain=[
                None if strip else origin
                for strip, origin in zip(strip_referer, origin_domain)
            ],
            day=day,
            is_automated=is_automated,
        )

    def ingest_columns(self, columns: ColumnarRecords, unreachable: int = 0) -> int:
        """Zero-copy bulk ingestion of an executor's column payload.

        The only per-element work left at this layer is geolocation, and it
        runs over the *visit* table (``client_ip.values``), not the rows:
        each submitting visit is looked up once and the resolved country is
        broadcast through the shared index array.
        """
        self.unreachable_submissions += unreachable
        if len(columns) == 0:
            return 0
        located = self.geoip.lookup_batch(columns.client_ip.values)
        resolved = DictColumn(
            [
                found if found is not None else fallback
                for found, fallback in zip(located, columns.country_code.values)
            ],
            columns.client_ip.indices,
        )
        return replace(columns, country_code=resolved).append_to(self.store)

    def submit_batch(
        self, records: Iterable[SubmissionRecord | tuple], unreachable: int = 0
    ) -> list[Measurement]:
        """Legacy bulk-ingest shim: columnar ingestion plus row materialization.

        Kept for callers that want the stored :class:`Measurement` rows back;
        the campaign runner uses :meth:`ingest_records`, which skips the row
        construction entirely.
        """
        start = len(self.store)
        added = self.ingest_records(records, unreachable)
        return self.store.rows(range(start, start + added)) if added else []

    def ingest_measurements(self, measurements: Iterable[Measurement]) -> int:
        """Append already-built rows (forged submissions, replayed corpora)."""
        return self.store.append_rows(measurements)

    # ------------------------------------------------------------------
    # Query API used by the analysis
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    @property
    def measurements(self) -> list[Measurement]:
        """Every stored measurement, materialized as rows (cached snapshot).

        The list is rebuilt only when the store has grown; do not mutate it —
        append through :meth:`ingest_measurements` instead.
        """
        if self._materialized is None or self._materialized_version != self.store.version:
            self._materialized = self.store.rows()
            self._materialized_version = self.store.version
        return self._materialized

    def filtered(
        self,
        domain: str | None = None,
        country_code: str | None = None,
        task_type: TaskType | None = None,
        exclude_automated: bool = True,
        exclude_inconclusive: bool = True,
    ) -> list[Measurement]:
        """Measurements matching the given criteria.

        Automated traffic is excluded by default, matching the paper's
        exclusion of "erroneously contributed measurements (e.g., from Web
        crawlers)" (§7.1).  Implemented as :meth:`MeasurementStore.select`
        plus row materialization; callers that only need counts or rates
        should query the selection directly.
        """
        return self.store.select(
            domain=domain,
            country_code=country_code,
            task_type=task_type,
            exclude_automated=exclude_automated,
            exclude_inconclusive=exclude_inconclusive,
        ).materialize()

    def distinct_ips(self) -> int:
        return distinct_ip_count(self.store)

    def distinct_countries(self) -> int:
        return self.store.distinct_countries()

    def measurements_by_country(self) -> Counter:
        return self.store.measurements_by_country()

    def success_counts(
        self, exclude_automated: bool = True
    ) -> dict[tuple[str, str], tuple[int, int]]:
        """Per (domain, country): (total measurements, successes).

        This is exactly the input the binomial detection test consumes; the
        detector itself prefers the grouped-array form (the query kernel's
        ``grouped_success_counts``) and skips this dict entirely.
        """
        return grouped_success_counts(
            self.store, exclude_automated
        ).as_dict()

    def summary(self) -> dict[str, float]:
        """Campaign-scale headline numbers (paper §7)."""
        return {
            "measurements": float(len(self.store)),
            "distinct_ips": float(self.distinct_ips()),
            "countries": float(self.distinct_countries()),
            "unreachable_submissions": float(self.unreachable_submissions),
        }
