"""The collection server and measurement records (paper §5.5).

After running a task, a client submits the result — success or failure,
timing, and the measurement ID — with an AJAX request to the collection
server.  Submission is itself a network operation the censor can block, so it
is modelled as a fetch through the client's path.  The server annotates each
record with what it can observe about the submitter: the source IP (which the
analysis geolocates), the browser family, and the Referer header unless the
origin site strips it (the paper notes 3/4 of measurements arrived with the
Referer stripped, obscuring which origin delivered them).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Iterable, NamedTuple

from repro.browser.engine import Browser
from repro.core.tasks import TaskOutcome, TaskResult, TaskType
from repro.population.clients import Client
from repro.population.geoip import GeoIPDatabase
from repro.web.url import URL


@dataclass(frozen=True)
class Measurement:
    """One measurement as stored by the collection server."""

    measurement_id: str
    task_type: TaskType
    target_url: URL
    target_domain: str
    outcome: TaskOutcome
    elapsed_ms: float
    client_ip: str
    country_code: str
    isp: str
    browser_family: str
    origin_domain: str | None
    day: int
    probe_time_ms: float | None = None
    is_automated: bool = False

    @property
    def succeeded(self) -> bool:
        return self.outcome is TaskOutcome.SUCCESS

    @property
    def failed(self) -> bool:
        return self.outcome is TaskOutcome.FAILURE


class SubmissionRecord(NamedTuple):
    """One already-delivered submission, ready for bulk ingestion.

    The batched campaign runner resolves the network path (whether the
    submission reached the server) itself and streams the survivors into
    :meth:`CollectionServer.submit_batch`; plain tuples with this field order
    are accepted too.
    """

    measurement_id: str
    task_type: "TaskType"
    target_url: URL
    target_domain: str
    outcome: TaskOutcome
    elapsed_ms: float
    probe_time_ms: float | None
    client_ip: str
    country_code: str
    isp: str
    browser_family: str
    origin_domain: str | None
    day: int
    strip_referer: bool
    is_automated: bool


class CollectionServer:
    """Receives, geolocates, and stores measurement submissions."""

    #: Fraction of origin sites configured to strip the Referer header when
    #: their visitors submit results (paper §7: 3/4 of measurements).
    REFERER_STRIP_FRACTION = 0.75

    def __init__(
        self,
        submit_url: URL | str,
        geoip: GeoIPDatabase | None = None,
    ) -> None:
        self.submit_url = submit_url if isinstance(submit_url, URL) else URL.parse(submit_url)
        self.geoip = geoip or GeoIPDatabase()
        self.measurements: list[Measurement] = []
        self.rejected_submissions = 0
        self.unreachable_submissions = 0

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def submit(
        self,
        result: TaskResult,
        client: Client,
        browser: Browser,
        origin_domain: str | None,
        day: int = 0,
        strip_referer: bool = False,
    ) -> Measurement | None:
        """Accept a submission if the client can reach the collection server."""
        outcome, from_cache, _ = browser.fetch(self.submit_url, use_cache=False)
        reachable = from_cache or (outcome is not None and outcome.succeeded_with_content)
        if not reachable:
            self.unreachable_submissions += 1
            return None
        return self.record(result, client, origin_domain, day, strip_referer)

    def record(
        self,
        result: TaskResult,
        client: Client,
        origin_domain: str | None,
        day: int = 0,
        strip_referer: bool = False,
    ) -> Measurement:
        """Store a submission that reached the server (no network involved)."""
        country = self.geoip.lookup(client.ip_address) or client.country_code
        measurement = Measurement(
            measurement_id=result.measurement_id,
            task_type=result.task_type,
            target_url=result.target_url,
            target_domain=result.target_domain,
            outcome=result.outcome,
            elapsed_ms=result.elapsed_ms,
            client_ip=client.ip_address,
            country_code=country,
            isp=client.isp,
            browser_family=client.browser.family.value,
            origin_domain=None if strip_referer else origin_domain,
            day=day,
            probe_time_ms=result.probe_time_ms,
            is_automated=client.is_automated,
        )
        self.measurements.append(measurement)
        return measurement

    def submit_batch(
        self, records: Iterable[SubmissionRecord | tuple], unreachable: int = 0
    ) -> list[Measurement]:
        """Bulk-ingest submissions whose network path already succeeded.

        ``records`` follow :class:`SubmissionRecord`'s layout; ``unreachable``
        counts submissions the campaign attempted but that never reached the
        server (censored or lost), matching what per-call :meth:`submit`
        would have tallied.  Returns the stored measurements in order.
        """
        lookup = self.geoip.lookup
        stored: list[Measurement] = []
        append = stored.append
        for (
            measurement_id, task_type, target_url, target_domain, outcome,
            elapsed_ms, probe_time_ms, client_ip, country_code, isp,
            browser_family, origin_domain, day, strip_referer, is_automated,
        ) in records:
            # Positional construction: Measurement's field order, hot path.
            append(
                Measurement(
                    measurement_id,
                    task_type,
                    target_url,
                    target_domain,
                    outcome,
                    elapsed_ms,
                    client_ip,
                    lookup(client_ip) or country_code,
                    isp,
                    browser_family,
                    None if strip_referer else origin_domain,
                    day,
                    probe_time_ms,
                    is_automated,
                )
            )
        self.measurements.extend(stored)
        self.unreachable_submissions += unreachable
        return stored

    # ------------------------------------------------------------------
    # Query API used by the analysis
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.measurements)

    def filtered(
        self,
        domain: str | None = None,
        country_code: str | None = None,
        task_type: TaskType | None = None,
        exclude_automated: bool = True,
        exclude_inconclusive: bool = True,
    ) -> list[Measurement]:
        """Measurements matching the given criteria.

        Automated traffic is excluded by default, matching the paper's
        exclusion of "erroneously contributed measurements (e.g., from Web
        crawlers)" (§7.1).
        """
        result = []
        for m in self.measurements:
            if exclude_automated and m.is_automated:
                continue
            if exclude_inconclusive and m.outcome is TaskOutcome.INCONCLUSIVE:
                continue
            if domain is not None and m.target_domain != domain:
                continue
            if country_code is not None and m.country_code != country_code:
                continue
            if task_type is not None and m.task_type is not task_type:
                continue
            result.append(m)
        return result

    def distinct_ips(self) -> int:
        return len({m.client_ip for m in self.measurements})

    def distinct_countries(self) -> int:
        return len({m.country_code for m in self.measurements})

    def measurements_by_country(self) -> Counter:
        return Counter(m.country_code for m in self.measurements)

    def success_counts(
        self, exclude_automated: bool = True
    ) -> dict[tuple[str, str], tuple[int, int]]:
        """Per (domain, country): (total measurements, successes).

        This is exactly the input the binomial detection test consumes.
        """
        totals: dict[tuple[str, str], int] = defaultdict(int)
        successes: dict[tuple[str, str], int] = defaultdict(int)
        for m in self.measurements:
            if exclude_automated and m.is_automated:
                continue
            if m.outcome is TaskOutcome.INCONCLUSIVE:
                continue
            key = (m.target_domain, m.country_code)
            totals[key] += 1
            if m.succeeded:
                successes[key] += 1
        return {key: (totals[key], successes[key]) for key in totals}

    def summary(self) -> dict[str, float]:
        """Campaign-scale headline numbers (paper §7)."""
        return {
            "measurements": float(len(self.measurements)),
            "distinct_ips": float(self.distinct_ips()),
            "countries": float(self.distinct_countries()),
            "unreachable_submissions": float(self.unreachable_submissions),
        }
