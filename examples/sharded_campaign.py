"""Sharded campaign: one campaign, many worker processes, one merged store.

``mode="sharded"`` partitions a campaign's planning blocks across a pool of
worker processes.  Each worker drives the vectorized batch executor over its
blocks and seals its measurements as ``.npz`` spill segments; the parent
merges every worker's segments into one ``MeasurementStore`` by segment
adoption (no row is ever pickled across a process boundary or re-copied on
merge).  Because every block's randomness derives from the campaign seed
alone, the merged campaign is **identical** to a single-process
``mode="batch"`` run — sharding changes wall-clock, never results.

The per-shard manifests under ``worker_spill_dir`` double as checkpoints: a
re-run pointed at the same directory adopts finished shards and re-executes
only missing ones.

Run with::

    python examples/sharded_campaign.py
"""

from __future__ import annotations

import os
import tempfile
import time

from repro import CampaignConfig, EncoreDeployment, World, WorldConfig
from repro.analysis.reports import format_table


def build_deployment(seed: int, visits: int, mode: str) -> EncoreDeployment:
    # Identical worlds + configs, so the two modes below run the *same*
    # campaign and the comparison is purely about execution strategy.
    world = World(WorldConfig(seed=seed, target_list_total=30, target_list_online=24,
                              origin_site_count=6))
    config = CampaignConfig(
        visits=visits,
        include_testbed=False,
        favicons_only=True,
        target_domains=("facebook.com", "youtube.com", "twitter.com"),
        seed=seed,
        mode=mode,
    )
    return EncoreDeployment(world, config)


def main(seed: int = 3, visits: int = 20_000) -> None:
    num_shards = min(4, os.cpu_count() or 1)
    spill_dir = tempfile.mkdtemp(prefix="encore-sharded-example-")

    print(f"Running {visits} visits single-process (mode='batch')...")
    started = time.perf_counter()
    batch = build_deployment(seed, visits, "batch").run_campaign()
    batch_s = time.perf_counter() - started

    print(f"Running the same campaign across {num_shards} worker processes...")
    shard_events = []
    deployment = build_deployment(seed, visits, "sharded")
    started = time.perf_counter()
    sharded = deployment.run_campaign(
        num_shards=num_shards,
        worker_spill_dir=spill_dir,
        progress=shard_events.append,
    )
    sharded_s = time.perf_counter() - started

    print()
    print(format_table(
        ["shard", "blocks", "visits so far", "measurements", "seconds"],
        [
            [p.shard_index, p.blocks_completed, p.visits_completed,
             p.measurements_added, f"{p.duration_s:.2f}"]
            for p in shard_events
        ],
    ))

    # The merged store answers queries exactly like the single-process one.
    merged = sharded.collection
    print()
    print(f"batch:   {len(batch.collection)} measurements in {batch_s:.2f}s")
    print(f"sharded: {len(merged)} measurements in {sharded_s:.2f}s "
          f"({num_shards} workers, spill segments under {spill_dir})")
    identical = (
        len(batch.collection) == len(merged)
        and batch.collection.success_counts() == merged.success_counts()
    )
    print(f"identical campaigns: {identical}")

    print()
    print("Detections over the merged store:")
    report = sharded.detect()
    for detection in sorted(report.detections, key=lambda d: (d.domain, d.country_code)):
        print(f"  {detection.domain:14s} filtered in {detection.country_code} "
              f"(p={detection.p_value:.2e})")


if __name__ == "__main__":
    main()
