"""Reproduce the §7.1 soundness experiment against the censorship testbed.

The testbed emulates seven varieties of DNS, IP, and HTTP filtering, each on
its own hostname, plus an unfiltered control host.  Roughly 30% of clients
are directed at testbed resources using all four measurement-task types; the
rest measure ordinary targets.  The report compares what each task type
observed against the testbed's ground truth: explicit-feedback tasks should
catch every explicit blocking mechanism with a low false-positive rate, while
block pages and throttling are (by design) hard to see.

Run with::

    python examples/soundness_testbed.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import EncoreDeployment
from repro.analysis.reports import build_soundness_report, format_table
from repro.core.tasks import TaskOutcome


def main(seed: int = 3, visits: int = 8000) -> None:
    deployment = EncoreDeployment.soundness_experiment(seed=seed, visits=visits)
    result = deployment.run_campaign()
    testbed_measurements = result.testbed_measurements()
    print(f"Collected {len(result.measurements)} measurements, "
          f"{len(testbed_measurements)} against the testbed.\n")

    report = build_soundness_report(result.measurements, deployment.testbed)
    rows = [
        [row["task_type"], row["measurements"], row["detection_rate"],
         row["false_positive_rate"], row["false_negative_rate"]]
        for row in sorted(report.rows(), key=lambda r: r["task_type"])
    ]
    print("Per-task-type soundness against testbed ground truth:")
    print(format_table(
        ["task type", "n", "detection rate", "false positive rate", "false negative rate"], rows))
    print()

    # Which mechanisms slip past which task types?
    missed = defaultdict(int)
    totals = defaultdict(int)
    for m in testbed_measurements:
        if m.is_automated or m.outcome is TaskOutcome.INCONCLUSIVE:
            continue
        host = m.target_url.host
        if not deployment.testbed.expected_filtered(host):
            continue
        mechanism = host.split(".")[0]
        totals[(mechanism, m.task_type.value)] += 1
        if m.succeeded:
            missed[(mechanism, m.task_type.value)] += 1
    rows = [
        [mechanism, task_type, totals[(mechanism, task_type)],
         f"{missed[(mechanism, task_type)] / totals[(mechanism, task_type)]:.2f}"]
        for (mechanism, task_type) in sorted(totals)
    ]
    print("Miss rate per (filtering mechanism, task type) — block pages and")
    print("throttling are expected to evade some task types:")
    print(format_table(["mechanism", "task type", "n", "miss rate"], rows))


if __name__ == "__main__":
    main()
