"""What deploying Encore looks like from a webmaster's side (§5.4, §6.2, §6.3).

Shows the one-line snippet a webmaster adds to their page, the byte overhead
it imposes on the origin and on visiting clients, and the demographics of who
would end up contributing measurements — a synthetic month of analytics
matching the paper's pilot deployment on an academic home page.

Run with::

    python examples/webmaster_integration.py
"""

from __future__ import annotations

import numpy as np

from repro import World, WorldConfig
from repro.analysis.reports import format_table
from repro.core.origin import OriginSite, client_overhead_report, snippet_overhead_bytes
from repro.core.targets import TargetList
from repro.core.task_generation import TaskGenerationLimits, TaskGenerationPipeline
from repro.population.analytics import VisitGenerator


def main(seed: int = 9) -> None:
    world = World(WorldConfig(seed=seed, target_list_total=40, target_list_online=32,
                              origin_site_count=6))

    # --- The webmaster-side install -------------------------------------
    origin = OriginSite(
        site=world.universe.site(world.origin_domains[0]),
        coordination_url=world.coordination_url,
    )
    print("Webmaster adds this single line to their pages:")
    print(f"  {origin.embed_snippet}")
    print(f"Snippet size: {snippet_overhead_bytes(world.coordination_url)} bytes "
          f"({origin.page_overhead_fraction():.4%} of the site's median page weight)\n")

    # --- Client-side overhead of the tasks the site would serve ---------
    pipeline = TaskGenerationPipeline(world.search, world.headless, TaskGenerationLimits())
    generation = pipeline.run(TargetList.high_value(total=40, online=32).entries)
    overhead = client_overhead_report(generation.tasks)
    rows = [[task_type, f"{median} B"] for task_type, median in sorted(overhead.summary().items())]
    print("Median network overhead a visitor incurs per task type:")
    print(format_table(["task type", "median bytes"], rows))
    print()

    # --- Who would contribute measurements (§6.2) -----------------------
    month = VisitGenerator(rng=np.random.default_rng(seed)).generate_month()
    summary = month.summary()
    print("One synthetic month of visits to an academic origin page:")
    print(format_table(
        ["metric", "value"],
        [
            ["total visits", int(summary["total_visits"])],
            ["visits that attempted a task", int(summary["task_attempts"])],
            ["countries with 10+ visits", int(summary["countries_with_10_plus_visits"])],
            ["share from filtering countries", f"{summary['filtering_country_fraction']:.0%}"],
            ["visitors staying > 10 s", f"{summary['dwell_over_10s_fraction']:.0%}"],
            ["visitors staying > 60 s", f"{summary['dwell_over_60s_fraction']:.0%}"],
        ],
    ))
    print()
    top = month.visits_by_country.most_common(8)
    print("Top visitor countries:")
    print(format_table(["country", "visits"], [[code, count] for code, count in top]))


if __name__ == "__main__":
    main()
