"""Longitudinal monitoring: catching a censorship onset as it happens.

Encore's promise is *longitudinal* measurement — continuous background
collection that reveals *when* a country starts or stops filtering a site.
This example scripts exactly that scenario: Germany starts hard-blocking
facebook.com on day 8 and lifts the block on day 18 (with a subtle
throttling phase on youtube.com for contrast), while a deployment collects
one epoch of measurements per simulated day.

The pipeline is columnar end to end: every epoch's campaign ingests into
one ``MeasurementStore``, ``success_counts(by_day=True)`` reduces the whole
corpus to ragged (domain, country, day) cells in a few vectorized passes,
and an online CUSUM change-point detector walks the daily success rates and
emits onset/offset events with their detection lag.  The final scorecard
grades the detector against the scripted ground truth.

The second half turns the same run into an *always-on monitor*: with
``LongitudinalConfig(checkpoint_dir=...)`` each epoch folds only its new
rows into the day-bucketed aggregate, advances a resumable CUSUM state over
only the new day columns, and checkpoints that state — so a killed monitor
restarted with ``resume=True`` re-adopts the completed epochs' rows from
their manifests, picks the scan up mid-series, and ends with events
identical to a never-interrupted run.

Run with::

    python examples/longitudinal_monitoring.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    CampaignConfig,
    EncoreDeployment,
    LongitudinalConfig,
    PolicyTimeline,
    World,
    WorldConfig,
)

ONSET_DAY = 8
OFFSET_DAY = 18
EPOCHS = 26
#: The epoch after which the always-on monitor demo gets "killed".
KILL_AFTER = 12


def build_deployment() -> EncoreDeployment:
    # A compact world; every visitor pinned to Germany so the timeline's
    # target (facebook.com, DE) cell gets dense daily coverage.
    world = World(
        WorldConfig(seed=42, target_list_total=30, target_list_online=24, origin_site_count=4)
    )
    config = CampaignConfig(
        visits=250,
        include_testbed=False,
        favicons_only=True,
        target_domains=("facebook.com", "youtube.com", "twitter.com"),
        country_code="DE",
        seed=42,
    )
    return EncoreDeployment(world, config)


def build_timeline() -> PolicyTimeline:
    return (
        PolicyTimeline()
        .onset(ONSET_DAY, "DE", "facebook.com")
        .offset(OFFSET_DAY, "DE", "facebook.com")
        # Throttling completes fetches slowly — the subtle filtering the
        # paper notes Encore struggles to see; it should emit no event.
        .throttle(ONSET_DAY, "DE", "youtube.com")
    )


def always_on_monitor(reference_events) -> None:
    """A killable monitor loop: checkpoint, 'crash', restart, resume."""
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "monitor"
        print(f"\nAlways-on monitor with checkpoint_dir={checkpoint.name}/ ...")
        print(f"  running epochs 0..{KILL_AFTER - 1}, then 'crashing'.")
        build_deployment().run_longitudinal(
            build_timeline(),
            LongitudinalConfig(
                epochs=KILL_AFTER, visits_per_epoch=250,
                checkpoint_dir=str(checkpoint),
            ),
        )
        # A fresh process: new deployment, same seeds, same checkpoint
        # directory, full horizon.  resume=True (the default) restores the
        # CUSUM state and re-adopts completed epochs from their manifests.
        resumed = build_deployment().run_longitudinal(
            build_timeline(),
            LongitudinalConfig(
                epochs=EPOCHS, visits_per_epoch=250,
                checkpoint_dir=str(checkpoint), resume=True,
            ),
        )
        adopted = sum(1 for epoch in resumed.epochs if epoch.resumed)
        print(f"  restarted: {adopted} epochs adopted from manifests, "
              f"{EPOCHS - adopted} executed fresh.")
        print(f"  monitor state covers {resumed.monitor.days_processed} days; "
              f"events identical to the uninterrupted run: "
              f"{resumed.events() == reference_events}")


def main() -> None:
    deployment = build_deployment()
    timeline = build_timeline()

    print(f"Running {EPOCHS} one-day epochs of 250 visits each (batch mode)...")
    result = deployment.run_longitudinal(
        timeline, LongitudinalConfig(epochs=EPOCHS, visits_per_epoch=250)
    )
    print(f"Collected {len(deployment.collection)} measurements over "
          f"{result.total_days} simulated days.\n")

    # The daily success-rate series the detector saw for the target cell.
    day_counts = result.day_counts()
    series = {
        day: (n, s)
        for (domain, country, day), (n, s) in day_counts.as_dict().items()
        if domain == "facebook.com" and country == "DE"
    }
    print("facebook.com / DE daily success rates:")
    for day in sorted(series):
        n, s = series[day]
        bar = "#" * int(round(20 * s / n))
        marker = " <- onset" if day == ONSET_DAY else (" <- offset" if day == OFFSET_DAY else "")
        print(f"  day {day:2d}  {s:3d}/{n:3d}  {bar:20s}{marker}")

    print("\nDetected change points (online CUSUM):")
    for event in result.events():
        print(f"  {event.kind:6s} {event.domain} in {event.country_code}: "
              f"changed day {event.change_day}, detected day {event.detected_day} "
              f"(lag {event.detection_lag}d, confidence {event.confidence:.2f})")

    print("\nScorecard against the scripted timeline:")
    print(result.timeline_report().format())

    always_on_monitor(result.events())


if __name__ == "__main__":
    main()
