"""Reproduce the §6.1 feasibility analysis (Figures 4, 5, and 6).

Runs the first two stages of the task-generation pipeline (Pattern Expander,
Target Fetcher) over the 178-domain high-value target list, then asks the
statistics-emitting Task Generator the paper's questions: how many images of
which sizes does each domain host, how heavy are its pages, and how many
cacheable images does each page embed?  The output prints the CDF series the
paper's figures plot and the headline amenability numbers.

Run with::

    python examples/feasibility_analysis.py
"""

from __future__ import annotations

from repro import TargetList, TaskGenerationLimits, TaskGenerationPipeline, World, WorldConfig
from repro.analysis.stats import Ecdf
from repro.analysis.reports import format_table
from repro.web.resources import KILOBYTE


def print_cdf(title: str, values, points, unit: str = "") -> None:
    cdf = Ecdf(values)
    rows = [[f"{point}{unit}", f"{cdf(point):.2f}"] for point in points]
    print(title)
    print(format_table(["x", "CDF(x)"], rows))
    print()


def main(seed: int = 5) -> None:
    world = World(WorldConfig(seed=seed))
    pipeline = TaskGenerationPipeline(world.search, world.headless, TaskGenerationLimits())
    target_list = TargetList.high_value()
    result = pipeline.run(target_list.entries)
    report = result.report
    print(f"Crawled {len(report.domains)} domains, {len(report.all_pages)} pages, "
          f"generated {len(result.tasks)} measurement tasks.\n")

    # Figure 4: images per domain, by size class.
    points = [0, 1, 10, 50, 100, 500, 1000, 2000]
    print_cdf("Figure 4 — images per domain (<= 1 KB):",
              report.images_per_domain(KILOBYTE), points)
    print_cdf("Figure 4 — images per domain (<= 5 KB):",
              report.images_per_domain(5 * KILOBYTE), points)
    print_cdf("Figure 4 — images per domain (any size):",
              report.images_per_domain(), points)

    # Figure 5: page sizes.
    size_points = [50, 100, 250, 500, 1000, 1500, 2000]
    print_cdf("Figure 5 — page sizes (KB):",
              [s / KILOBYTE for s in report.page_sizes_bytes()], size_points, unit=" KB")

    # Figure 6: cacheable images per page, by page-size class.
    cache_points = [0, 1, 2, 5, 10, 25, 50]
    print_cdf("Figure 6 — cacheable images per page (pages <= 100 KB):",
              report.cacheable_images_per_page(100 * KILOBYTE), cache_points)
    print_cdf("Figure 6 — cacheable images per page (pages <= 500 KB):",
              report.cacheable_images_per_page(500 * KILOBYTE), cache_points)
    print_cdf("Figure 6 — cacheable images per page (all pages):",
              report.cacheable_images_per_page(), cache_points)

    # §6.1 headline numbers.
    print("Amenability summary (§6.1):")
    print(format_table(
        ["metric", "value"],
        [
            ["domains measurable with <= 1 KB images",
             f"{report.fraction_domains_measurable(KILOBYTE):.0%}"],
            ["domains measurable with <= 5 KB images",
             f"{report.fraction_domains_measurable(5 * KILOBYTE):.0%}"],
            ["pages measurable with 100 KB iframe limit",
             f"{report.fraction_pages_measurable():.0%}"],
        ],
    ))


if __name__ == "__main__":
    main()
