"""§8 extensions: poisoned submissions, defences, and adaptive priors.

Simulates an attacker who floods the collection server with fabricated
failure reports to invent censorship of facebook.com in Germany, shows that
the naive detector is fooled, then applies the reputation filter (rate
limiting + Sybil-aware consistency checks) and verifies that the fabricated
detection disappears while every real detection survives.  Finally compares
the fixed-prior detector with the adaptive per-country-prior detector the
paper proposes as an enhancement.

Run with::

    python examples/adversarial_robustness.py
"""

from __future__ import annotations

from repro import EncoreDeployment
from repro.analysis.reports import format_table
from repro.core.inference import AdaptiveFilteringDetector, BinomialFilteringDetector
from repro.core.robustness import PoisoningAttacker, PoisoningCampaign, ReputationFilter


def describe(label: str, detected_pairs) -> None:
    pairs = ", ".join(f"{d} in {c}" for d, c in sorted(detected_pairs)) or "(none)"
    print(f"  {label}: {pairs}")


def main(seed: int = 13, visits: int = 10000) -> None:
    deployment = EncoreDeployment.detection_experiment(seed=seed, visits=visits)
    result = deployment.run_campaign()
    detector = BinomialFilteringDetector(min_measurements=10)
    honest = list(result.measurements)
    print(f"Honest campaign: {len(honest)} measurements.")
    describe("detections", detector.detect_from_measurements(honest).detected_pairs())
    print()

    # --- The attack -------------------------------------------------------
    attacker = PoisoningAttacker(rng=seed)
    campaign = PoisoningCampaign("facebook.com", "DE", fabricate_blocking=True,
                                 submissions=600, client_identities=12)
    forged = attacker.forge_measurements(campaign)
    poisoned = honest + forged
    print(f"Attacker injects {len(forged)} forged failure reports "
          f"({campaign.client_identities} Sybil identities) for facebook.com in DE.")
    describe("naive detector", detector.detect_from_measurements(poisoned).detected_pairs())
    print()

    # --- The defence ------------------------------------------------------
    reputation = ReputationFilter()
    report = reputation.apply(poisoned)
    print(f"Reputation filter drops {report.dropped} submissions "
          f"({report.dropped_rate_limited} rate-limited, "
          f"{report.dropped_low_reputation} low-reputation).")
    describe("after filtering", detector.detect_from_measurements(report.kept).detected_pairs())
    print()

    # --- Adaptive per-country priors ---------------------------------------
    adaptive = AdaptiveFilteringDetector(min_measurements=10)
    fixed_report = detector.detect_from_measurements(honest)
    adaptive_report = adaptive.detect_from_measurements(honest)
    priors = adaptive.country_priors(result.collection.success_counts())
    rows = [[country, f"{prior:.2f}"] for country, prior in sorted(priors.items())
            if country in ("US", "DE", "IN", "CN", "IR", "PK", "BR")]
    print("Adaptive per-country success priors (vs the fixed 0.70):")
    print(format_table(["country", "estimated prior"], rows))
    describe("fixed-prior detections", fixed_report.detected_pairs())
    describe("adaptive-prior detections", adaptive_report.detected_pairs())


if __name__ == "__main__":
    main()
