"""§8 extensions: poisoned submissions, defences, and adaptive priors.

Simulates an attacker who floods the collection server with fabricated
failure reports to invent censorship of facebook.com in Germany — entirely on
the columnar store path: the forged corpus is emitted as column payloads
(``PoisoningAttacker.forge_columns``), merged with the honest campaign store
by zero-copy segment adoption, and judged with ``ReputationFilter.apply_store``
without materializing a single ``Measurement`` row.  An ``AdversarySweep``
then scales the attack budget across a grid (fanned out over worker
processes) to show where the defence stops working, and finally the
fixed-prior detector is compared with the adaptive per-country-prior detector
the paper proposes as an enhancement.

Run with::

    python examples/adversarial_robustness.py
"""

from __future__ import annotations

from repro import EncoreDeployment
from repro.analysis.reports import format_table
from repro.core.inference import AdaptiveFilteringDetector, BinomialFilteringDetector
from repro.core.query import grouped_success_counts
from repro.core.robustness import AdversarySweep, PoisoningCampaign


def describe(label: str, detected_pairs) -> None:
    pairs = ", ".join(f"{d} in {c}" for d, c in sorted(detected_pairs)) or "(none)"
    print(f"  {label}: {pairs}")


def main(seed: int = 13, visits: int = 10000) -> None:
    deployment = EncoreDeployment.detection_experiment(seed=seed, visits=visits)
    result = deployment.run_campaign()
    detector = BinomialFilteringDetector(min_measurements=10)
    store = result.collection.store
    print(f"Honest campaign: {len(store)} measurements (columnar store).")
    describe("detections", detector.detect(store).detected_pairs())
    print()

    # --- One attack, end to end on the store path -------------------------
    campaign = PoisoningCampaign("facebook.com", "DE", fabricate_blocking=True,
                                 submissions=600, client_identities=12)
    sweep = AdversarySweep(detector=detector, executor="inline", seed=seed)
    [cell] = sweep.run(store, campaign.target_domain, campaign.country_code,
                       [(campaign.submissions, campaign.client_identities)])
    print(f"Attacker injects {cell.forged} forged failure reports "
          f"({campaign.client_identities} Sybil identities) for facebook.com in DE; "
          f"poisoned store holds {cell.poisoned_rows} rows.")
    describe("naive detector", cell.naive_pairs)
    print(f"Reputation filter drops {cell.dropped_rate_limited + cell.dropped_low_reputation} "
          f"submissions ({cell.dropped_rate_limited} rate-limited, "
          f"{cell.dropped_low_reputation} low-reputation).")
    describe("after filtering", cell.defended_pairs)
    print()

    # --- The budget sweep (forging fanned out across workers) -------------
    budgets = [(100, 4), (400, 8), (1600, 32), (6400, 128)]
    cells = result.adversary_sweep("facebook.com", "DE", budgets,
                                   detector=detector, seed=seed)
    print("Attack-budget sweep (per-cell poisoned stores via segment adoption):")
    print(format_table(
        ["forged", "Sybils", "naive fooled", "defended fooled", "dropped"],
        [[c.submissions, c.identities, c.naive_fooled, c.defended_fooled,
          c.dropped_rate_limited + c.dropped_low_reputation] for c in cells],
    ))
    print()

    # --- Adaptive per-country priors ---------------------------------------
    adaptive = AdaptiveFilteringDetector(min_measurements=10)
    fixed_report = detector.detect(store)
    adaptive_report = adaptive.detect(store)
    priors = adaptive.country_priors(grouped_success_counts(store))
    rows = [[country, f"{prior:.2f}"] for country, prior in sorted(priors.items())
            if country in ("US", "DE", "IN", "CN", "IR", "PK", "BR")]
    print("Adaptive per-country success priors (vs the fixed 0.70):")
    print(format_table(["country", "estimated prior"], rows))
    describe("fixed-prior detections", fixed_report.detected_pairs())
    describe("adaptive-prior detections", adaptive_report.detected_pairs())


if __name__ == "__main__":
    main()
