"""Quickstart: run a small Encore deployment end to end.

Builds a simulated world (target sites, censors, a client population), wires
up an Encore deployment (task generation, coordination, collection), simulates
a few thousand origin-site visits, and runs the binomial filtering detector
over the collected measurements.

The collected corpus lives in a columnar ``MeasurementStore``
(``result.collection.store``): queries like the per-detection success rates
below are vectorized selections over its column arrays — no per-row
``Measurement`` objects are ever materialized.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import CampaignConfig, EncoreDeployment, World, WorldConfig
from repro.analysis.reports import format_table


def main(seed: int = 1, visits: int = 5000) -> None:
    # A compact world keeps the example fast: 24 online target domains and a
    # handful of origin sites hosting the Encore snippet.
    world = World(WorldConfig(seed=seed, target_list_total=30, target_list_online=24,
                              origin_site_count=6))
    config = CampaignConfig(
        visits=visits,
        include_testbed=False,
        favicons_only=True,
        target_domains=("facebook.com", "youtube.com", "twitter.com"),
        seed=seed,
    )
    deployment = EncoreDeployment(world, config)

    print(f"Generated {len(deployment.target_tasks)} measurement tasks:")
    for task in deployment.target_tasks:
        print(f"  [{task.task_type.value}] {task.target_url}")
    print()

    result = deployment.run_campaign()
    store = result.collection.store
    summary = result.collection.summary()
    print(
        f"Simulated {result.visits_simulated} visits -> "
        f"{int(summary['measurements'])} measurements from "
        f"{int(summary['distinct_ips'])} IPs in {int(summary['countries'])} countries.\n"
    )

    # The detector consumes the store's grouped (domain, country) cells; the
    # per-detection context below comes from vectorized store selections.
    report = result.detect()
    rows = []
    for d in sorted(report.detections, key=lambda d: (d.domain, d.country_code)):
        selection = store.select(domain=d.domain, country_code=d.country_code)
        rows.append([
            d.domain, d.country_code, d.measurements, d.successes,
            f"{d.p_value:.2e}", f"{selection.success_rate:.2f}",
        ])
    print("Filtering detections (binomial test, p=0.7, alpha=0.05):")
    print(format_table(
        ["domain", "country", "n", "successes", "p-value", "success rate"], rows
    ))


if __name__ == "__main__":
    main()
