"""Reproduce the §7.2 detection study: who filters Facebook, YouTube, Twitter?

The paper's reported deployment measured only three popular domains (out of
ethical caution) and confirmed well-known censorship of youtube.com in
Pakistan, Iran, and China, and of twitter.com and facebook.com in China and
Iran.  This example runs the same experiment against the simulated world,
prints per-country success rates, and compares the detector's output with the
simulation's ground truth.

Run with::

    python examples/detection_study.py
"""

from __future__ import annotations

from collections import defaultdict

from repro import EncoreDeployment
from repro.analysis.reports import format_table
from repro.censor.censors import ground_truth_blocked


def main(seed: int = 7, visits: int = 12000) -> None:
    deployment = EncoreDeployment.detection_experiment(seed=seed, visits=visits)
    result = deployment.run_campaign()
    store = result.collection.store
    print(f"Collected {len(result.collection)} measurements "
          f"from {result.collection.distinct_countries()} countries.\n")

    # Per-(domain, country) success rates for the interesting countries —
    # vectorized store selections, no per-row Measurement materialization.
    interesting = ["CN", "IR", "PK", "TR", "US", "GB", "DE", "BR"]
    rows = []
    for domain in ("facebook.com", "twitter.com", "youtube.com"):
        for country in interesting:
            selection = store.select(domain=domain, country_code=country)
            if not selection.count:
                continue
            rows.append([domain, country, selection.count,
                         f"{selection.success_rate:.2f}"])
    print("Per-country success rates (selected countries):")
    print(format_table(["domain", "country", "n", "success rate"], rows))
    print()

    report = result.detect()
    detected = report.detected_pairs()
    truth = ground_truth_blocked()
    expected = {
        (domain, country)
        for country, domains in truth.items()
        for domain in domains
        if domain in ("facebook.com", "twitter.com", "youtube.com")
    }

    confusion = defaultdict(list)
    for pair in sorted(expected | detected):
        if pair in expected and pair in detected:
            confusion["confirmed"].append(pair)
        elif pair in expected:
            confusion["missed"].append(pair)
        else:
            confusion["spurious"].append(pair)

    print("Detector vs ground truth:")
    for label in ("confirmed", "missed", "spurious"):
        pairs = ", ".join(f"{d} in {c}" for d, c in confusion[label]) or "(none)"
        print(f"  {label:10s}: {pairs}")


if __name__ == "__main__":
    main()
