"""End-to-end integration tests spanning every stage of the system."""

import pytest

from repro.analysis.reports import build_soundness_report
from repro.censor.mechanisms import FilteringMechanism
from repro.core.inference import BinomialFilteringDetector
from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.tasks import TaskOutcome, TaskType
from repro.population.world import COORDINATION_DOMAIN, World, WorldConfig


class TestDetectionEndToEnd:
    """The §7.2 experiment: recover known filtering from raw visits."""

    def test_detects_exactly_the_censored_pairs(self, detection_result):
        report = detection_result.detect()
        expected = {
            ("youtube.com", "PK"), ("youtube.com", "IR"), ("youtube.com", "CN"),
            ("twitter.com", "CN"), ("twitter.com", "IR"),
            ("facebook.com", "CN"), ("facebook.com", "IR"),
        }
        detected = report.detected_pairs()
        assert expected <= detected
        assert detected <= expected | {("facebook.com", "PK"), ("twitter.com", "PK")}

    def test_success_rates_reflect_censorship(self, detection_result):
        collection = detection_result.collection
        cn = collection.filtered(domain="facebook.com", country_code="CN")
        us = collection.filtered(domain="facebook.com", country_code="US")
        assert cn and us
        cn_rate = sum(1 for m in cn if m.succeeded) / len(cn)
        us_rate = sum(1 for m in us if m.succeeded) / len(us)
        assert cn_rate < 0.2
        assert us_rate > 0.9

    def test_detection_robust_to_parameter_choice(self, detection_result):
        for prior in (0.6, 0.7, 0.8):
            report = detection_result.detect(success_prior=prior)
            assert report.detected("youtube.com", "PK")
            assert not report.detected("youtube.com", "US")


class TestSoundnessEndToEnd:
    """The §7.1 experiment: measurement tasks against the testbed."""

    def test_explicit_tasks_detect_explicit_mechanisms(self, soundness_result, soundness_deployment):
        testbed = soundness_deployment.testbed
        explicit_hosts = {
            testbed.host_for_mechanism(m).domain
            for m in FilteringMechanism
            if m.gives_explicit_failure
        }
        for m in soundness_result.testbed_measurements():
            if (
                m.task_type in (TaskType.IMAGE, TaskType.STYLE_SHEET)
                and m.target_url.host in explicit_hosts
                and not m.is_automated
                and m.outcome is not TaskOutcome.INCONCLUSIVE
            ):
                assert m.failed, f"missed filtering of {m.target_url.host} via {m.task_type}"

    def test_control_host_rarely_fails(self, soundness_result, soundness_deployment):
        control = soundness_deployment.testbed.control_host.domain
        control_measurements = [
            m for m in soundness_result.testbed_measurements()
            if m.target_url.host == control and not m.is_automated
            and m.outcome is not TaskOutcome.INCONCLUSIVE
        ]
        assert control_measurements
        failure_rate = sum(1 for m in control_measurements if m.failed) / len(control_measurements)
        assert failure_rate < 0.10

    def test_soundness_report_matches_paper_shape(self, soundness_result, soundness_deployment):
        report = build_soundness_report(soundness_result.measurements, soundness_deployment.testbed)
        image_stats = report.for_type(TaskType.IMAGE)
        assert image_stats.false_positive_rate < 0.10
        assert image_stats.detection_rate > 0.75
        # The script task cannot see block pages or throttling, so its
        # detection rate is the lowest of the four mechanisms.
        script_stats = report.for_type(TaskType.SCRIPT)
        assert script_stats.detection_rate <= image_stats.detection_rate

    def test_detector_flags_testbed_hosts_as_filtered_everywhere_is_avoided(self, soundness_result):
        # Testbed hosts fail for every region, so the "fails here but not
        # elsewhere" rule should NOT flag them as regionally filtered.
        report = BinomialFilteringDetector(min_measurements=10).detect(soundness_result.collection)
        for detection in report.detections:
            assert not detection.domain.endswith("encore-testbed.net")


class TestInfrastructureBlocking:
    """The adversary of §3.1 may block Encore's own servers."""

    def test_blocking_coordination_server_suppresses_a_countrys_measurements(self):
        world = World(
            WorldConfig(
                seed=41, target_list_total=12, target_list_online=10, origin_site_count=3,
                extra_censored_domains={"IR": [COORDINATION_DOMAIN]},
            )
        )
        deployment = EncoreDeployment(
            world, CampaignConfig(visits=800, include_testbed=False, seed=41)
        )
        deployment.run_campaign()
        by_country = deployment.collection.measurements_by_country()
        # Iranian clients cannot fetch tasks at all, so Iran contributes
        # (almost) nothing despite its nonzero visit share.
        assert by_country.get("IR", 0) == 0
        assert by_country.get("US", 0) > 0
        assert deployment.coordination.delivery_failure_rate > 0.0


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        def run():
            world = World(WorldConfig(seed=61, target_list_total=12, target_list_online=10,
                                      origin_site_count=2))
            deployment = EncoreDeployment(
                world, CampaignConfig(visits=200, include_testbed=False, seed=61)
            )
            result = deployment.run_campaign()
            return [
                (m.target_domain, m.country_code, m.outcome.value) for m in result.measurements
            ]

        assert run() == run()
