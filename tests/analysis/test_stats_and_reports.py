"""Tests for the statistics helpers and report builders."""

import numpy as np
import pytest

from repro.analysis.reports import (
    SoundnessReport,
    TaskTypeSoundness,
    TimelineReport,
    TransitionMatch,
    build_soundness_report,
    format_table,
)
from repro.analysis.stats import Ecdf, fraction_at_least, fraction_at_most, summarise_distribution
from repro.core.inference import CensorshipEvent
from repro.core.tasks import TaskType


class TestEcdf:
    def test_basic_evaluation(self):
        cdf = Ecdf([1, 2, 3, 4])
        assert cdf(0) == 0.0
        assert cdf(2) == 0.5
        assert cdf(4) == 1.0
        assert cdf(10) == 1.0

    def test_quantiles_and_median(self):
        cdf = Ecdf(range(101))
        assert cdf.median == pytest.approx(50.0)
        assert cdf.quantile(0.25) == pytest.approx(25.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_empty_distribution(self):
        cdf = Ecdf([])
        assert len(cdf) == 0
        assert cdf(5) == 0.0
        with pytest.raises(ValueError):
            cdf.quantile(0.5)

    def test_series_is_plottable(self):
        cdf = Ecdf([1, 2, 3])
        series = cdf.series([0, 1, 2, 3])
        assert series[0] == (0.0, 0.0)
        assert series[-1] == (3.0, 1.0)
        assert all(a[1] <= b[1] for a, b in zip(series, series[1:]))

    def test_is_monotone_non_decreasing(self):
        rng = np.random.default_rng(0)
        cdf = Ecdf(rng.normal(size=500))
        xs = np.linspace(-4, 4, 100)
        values = [cdf(x) for x in xs]
        assert values == sorted(values)


class TestThresholdFractions:
    def test_fraction_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_most([], 2) == 0.0

    def test_fraction_at_least(self):
        assert fraction_at_least([1, 2, 3, 4], 3) == 0.5
        assert fraction_at_least([], 3) == 0.0

    def test_summarise_distribution(self):
        summary = summarise_distribution(range(1, 101))
        assert summary["count"] == 100
        assert summary["min"] == 1
        assert summary["max"] == 100
        assert summary["median"] == pytest.approx(50.5)
        assert summarise_distribution([]) == {"count": 0.0}


class TestSoundnessReport:
    def test_rates(self):
        stats = TaskTypeSoundness(TaskType.IMAGE, true_positives=90, false_negatives=10,
                                  true_negatives=95, false_positives=5)
        assert stats.detection_rate == pytest.approx(0.9)
        assert stats.false_positive_rate == pytest.approx(0.05)
        assert stats.false_negative_rate == pytest.approx(0.1)
        assert stats.measurements == 200

    def test_empty_rates_are_zero(self):
        stats = TaskTypeSoundness(TaskType.IMAGE)
        assert stats.detection_rate == 0.0
        assert stats.false_positive_rate == 0.0

    def test_build_from_campaign(self, soundness_result, soundness_deployment):
        report = build_soundness_report(soundness_result.measurements, soundness_deployment.testbed)
        assert report.total_measurements > 200
        rows = report.rows()
        assert {row["task_type"] for row in rows} <= {t.value for t in TaskType}
        # Explicit-feedback tasks have very low false-positive rates (§7.1).
        for task_type in (TaskType.IMAGE, TaskType.STYLE_SHEET):
            assert report.for_type(task_type).false_positive_rate < 0.10

    def test_report_ignores_non_testbed_measurements(self, detection_result, soundness_deployment):
        report = build_soundness_report(detection_result.measurements, soundness_deployment.testbed)
        assert report.total_measurements == 0


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        text = format_table(["name", "count"], [["youtube", 10], ["twitter", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "youtube" in lines[2]

    def test_pads_columns_to_widest_cell(self):
        text = format_table(["x"], [["a-very-long-value"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(row)


class TestTimelineReportAggregates:
    """The empty/all-miss aggregate contract the quality gate relies on."""

    def event(self, *, change_day, detected_day, kind="onset"):
        return CensorshipEvent(
            domain="facebook.com", country_code="DE", kind=kind,
            change_day=change_day, detected_day=detected_day,
            statistic=5.0, confidence=0.99,
        )

    def miss(self, day=4):
        return TransitionMatch(day=day, country_code="DE", domain="facebook.com", kind="onset")

    def test_empty_report_has_no_lag_not_zero_lag(self):
        # Regression: a transition-free (or all-miss) report used to answer
        # mean_detection_lag == 0.0, which reads as *instant* detection and
        # would poison any trend gate comparing against it.
        report = TimelineReport()
        assert report.mean_detection_lag is None
        assert report.detection_rate == 0.0
        assert report.miss_rate == 0.0
        assert report.lag_cdf() == {"p50": None, "p90": None, "max": None}

    def test_all_miss_report_has_no_lag(self):
        report = TimelineReport(matches=[self.miss(4), self.miss(9)])
        assert report.mean_detection_lag is None
        assert report.miss_rate == 1.0
        assert report.quality_summary()["lag_p90"] is None
        assert report.quality_summary()["mean_lag_days"] is None

    def test_quality_summary_is_json_safe_when_empty(self):
        import json

        payload = TimelineReport().quality_summary()
        assert json.loads(json.dumps(payload)) == payload

    def test_detected_lags_skip_misses(self):
        report = TimelineReport(matches=[
            TransitionMatch(day=4, country_code="DE", domain="facebook.com",
                            kind="onset", event=self.event(change_day=4, detected_day=5)),
            self.miss(9),
            TransitionMatch(day=12, country_code="DE", domain="facebook.com",
                            kind="offset",
                            event=self.event(change_day=13, detected_day=15, kind="offset")),
        ])
        assert report.detected_lags == [1, 3]
        assert report.mean_detection_lag == 2.0
        cdf = report.lag_cdf()
        assert cdf["max"] == 3.0
        assert cdf["p50"] == 2.0
        summary = report.quality_summary()
        assert summary["change_day_error_mean_abs"] == 0.5
        assert summary["change_day_error_max_abs"] == 1
        assert summary["detection_rate"] == pytest.approx(2 / 3)
