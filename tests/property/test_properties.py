"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.stats import Ecdf, fraction_at_least, fraction_at_most
from repro.browser.cache import BrowserCache
from repro.censor.policy import BlacklistPolicy
from repro.core.inference import BinomialFilteringDetector, binomial_cdf
from repro.web.url import URL, URLPattern


# ----------------------------------------------------------------------
# URL strategies
# ----------------------------------------------------------------------
label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10)
hosts = st.lists(label, min_size=2, max_size=4).map(".".join)
paths = st.lists(label, min_size=0, max_size=4).map(lambda parts: "/" + "/".join(parts))
schemes = st.sampled_from(["http", "https"])


@st.composite
def urls(draw):
    scheme = draw(schemes)
    host = draw(hosts)
    path = draw(paths)
    return f"{scheme}://{host}{path}"


class TestURLProperties:
    @given(urls())
    def test_parse_str_roundtrip_is_stable(self, raw):
        parsed = URL.parse(raw)
        assert URL.parse(str(parsed)) == parsed

    @given(urls())
    def test_origin_is_same_origin_with_itself(self, raw):
        origin = URL.parse(raw).origin
        assert origin.same_origin(origin)

    @given(urls(), urls())
    def test_cross_origin_is_symmetric(self, a, b):
        url_a, url_b = URL.parse(a), URL.parse(b)
        assert url_a.is_cross_origin(url_b) == url_b.is_cross_origin(url_a)

    @given(urls())
    def test_domain_pattern_matches_every_url_on_its_domain(self, raw):
        url = URL.parse(raw)
        pattern = URLPattern.domain(url.domain)
        assert pattern.matches(url)

    @given(urls(), label)
    def test_with_path_keeps_origin(self, raw, new_segment):
        url = URL.parse(raw)
        assert url.with_path("/" + new_segment).origin.same_origin(url.origin)


class TestBinomialProperties:
    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=200),
           st.floats(min_value=0.01, max_value=0.99))
    def test_cdf_in_unit_interval(self, successes, trials, p):
        value = binomial_cdf(successes, trials, p)
        assert 0.0 <= value <= 1.0

    @given(st.integers(min_value=1, max_value=150), st.floats(min_value=0.05, max_value=0.95))
    def test_cdf_monotone_in_successes(self, trials, p):
        values = [binomial_cdf(k, trials, p) for k in range(trials + 1)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))
        assert math.isclose(values[-1], 1.0, rel_tol=1e-9)

    @given(st.integers(min_value=10, max_value=150), st.integers(min_value=0, max_value=150),
           st.floats(min_value=0.3, max_value=0.9), st.floats(min_value=0.3, max_value=0.9))
    def test_cdf_decreasing_in_p(self, trials, successes, p_low, p_high):
        successes = min(successes, trials)
        low, high = sorted((p_low, p_high))
        assert binomial_cdf(successes, trials, low) >= binomial_cdf(successes, trials, high) - 1e-9


@st.composite
def region_counts(draw):
    """Random (domain, country) -> (n, successes) tables."""
    n_regions = draw(st.integers(min_value=1, max_value=6))
    counts = {}
    for index in range(n_regions):
        trials = draw(st.integers(min_value=1, max_value=200))
        successes = draw(st.integers(min_value=0, max_value=trials))
        counts[("site.org", f"C{index}")] = (trials, successes)
    return counts


class TestDetectorProperties:
    @given(region_counts())
    @settings(max_examples=50)
    def test_detections_are_subset_of_inputs_and_respect_threshold(self, counts):
        detector = BinomialFilteringDetector(min_measurements=5)
        report = detector.detect_from_counts(counts)
        keys = set(counts)
        for detection in report.detections:
            key = (detection.domain, detection.country_code)
            assert key in keys
            assert detection.p_value <= detector.significance
            assert counts[key][0] >= detector.min_measurements

    @given(region_counts())
    @settings(max_examples=50)
    def test_never_detects_when_everything_fails_everywhere(self, counts):
        # Force every region to fail: zero successes.  The cross-region
        # corroboration rule must then suppress all detections.
        all_failing = {key: (n, 0) for key, (n, _) in counts.items()}
        report = BinomialFilteringDetector(min_measurements=1).detect_from_counts(all_failing)
        assert report.detections == []

    @given(region_counts())
    @settings(max_examples=50)
    def test_never_detects_perfect_success(self, counts):
        all_passing = {key: (n, n) for key, (n, _) in counts.items()}
        report = BinomialFilteringDetector(min_measurements=1).detect_from_counts(all_passing)
        assert report.detections == []


class TestDetectorInvariants:
    """Invariants of the binomial detector the batched runner's campaigns rely on."""

    @given(
        trials=st.integers(min_value=10, max_value=150),
        successes=st.integers(min_value=0, max_value=150),
        fewer=st.integers(min_value=0, max_value=150),
    )
    @settings(max_examples=60)
    def test_detection_monotone_in_failure_count(self, trials, successes, fewer):
        # With a healthy corroborating region fixed, lowering the failing
        # region's success count (more failures) can never un-detect it.
        successes = min(successes, trials)
        fewer = min(fewer, successes)
        detector = BinomialFilteringDetector(min_measurements=10)
        healthy = {("site.org", "OK"): (200, 200)}
        report = detector.detect_from_counts(
            {**healthy, ("site.org", "XX"): (trials, successes)}
        )
        if report.detected("site.org", "XX"):
            worse = detector.detect_from_counts(
                {**healthy, ("site.org", "XX"): (trials, fewer)}
            )
            assert worse.detected("site.org", "XX")

    @given(
        min_measurements=st.integers(min_value=1, max_value=40),
        trials=st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=60)
    def test_min_measurements_gates_statistics_and_detections(
        self, min_measurements, trials
    ):
        detector = BinomialFilteringDetector(min_measurements=min_measurements)
        counts = {
            ("site.org", "OK"): (200, 200),
            ("site.org", "XX"): (trials, 0),
        }
        report = detector.detect_from_counts(counts)
        included = {(s.domain, s.country_code) for s in report.statistics}
        if trials < min_measurements:
            # Too few measurements: the region must not even be scored,
            # let alone detected.
            assert ("site.org", "XX") not in included
            assert not report.detected("site.org", "XX")
        else:
            # At or above the gate the region is always scored, and (with a
            # healthy corroborating region) detected as soon as an all-failing
            # record is statistically improbable at all.
            assert ("site.org", "XX") in included
            if binomial_cdf(0, trials, detector.success_prior) <= detector.significance:
                assert report.detected("site.org", "XX")

    @given(
        trials=st.integers(min_value=10, max_value=200),
        successes=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=60)
    def test_statistics_match_input_counts(self, trials, successes):
        successes = min(successes, trials)
        detector = BinomialFilteringDetector(min_measurements=10)
        report = detector.detect_from_counts({("site.org", "XX"): (trials, successes)})
        assert len(report.statistics) == 1
        stat = report.statistics[0]
        assert stat.measurements == trials
        assert stat.successes == successes
        assert math.isclose(
            stat.p_value, binomial_cdf(successes, trials, detector.success_prior)
        )


class TestCacheProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=20),
                              st.integers(min_value=1, max_value=100)), max_size=40))
    def test_cache_size_never_exceeds_limit(self, operations):
        cache = BrowserCache(max_entries=8)
        for key_index, ttl in operations:
            cache.store(f"http://site.org/r{key_index}", 100, ttl_s=ttl, now_s=0.0)
            assert len(cache) <= 8

    @given(st.integers(min_value=1, max_value=1000), st.integers(min_value=0, max_value=2000))
    def test_lookup_respects_ttl_boundary(self, ttl, elapsed):
        cache = BrowserCache()
        cache.store("http://site.org/x", 10, ttl_s=ttl, now_s=0.0)
        entry = cache.lookup("http://site.org/x", now_s=float(elapsed))
        assert (entry is not None) == (elapsed < ttl)


class TestPolicyProperties:
    @given(hosts, hosts)
    def test_domain_blocking_covers_subdomains_exactly(self, blocked, other):
        policy = BlacklistPolicy.for_domains([blocked])
        assert policy.blocks_host(blocked)
        assert policy.blocks_host(f"www.{blocked}")
        if other != blocked and not other.endswith("." + blocked):
            assert not policy.blocks_host(other)

    @given(st.lists(hosts, min_size=1, max_size=5), urls())
    def test_blocks_url_iff_some_rule_matches(self, blocked_domains, raw):
        policy = BlacklistPolicy.for_domains(blocked_domains)
        url = URL.parse(raw)
        expected = any(url.host == d or url.host.endswith("." + d) for d in policy.blocked_domains)
        assert policy.blocks_url(url) == expected


class TestEcdfProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200))
    def test_ecdf_bounds_and_monotonicity(self, values):
        cdf = Ecdf(values)
        lo, hi = min(values), max(values)
        assert cdf(lo - 1) == 0.0
        assert cdf(hi) == 1.0
        xs = sorted(values)
        evaluated = [cdf(x) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(evaluated, evaluated[1:]))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=100),
           st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_threshold_fractions_complement(self, values, threshold):
        below = fraction_at_most(values, threshold)
        strictly_above = sum(1 for v in values if v > threshold) / len(values)
        assert math.isclose(below + strictly_above, 1.0, rel_tol=1e-9)
        assert fraction_at_least(values, threshold) >= strictly_above - 1e-12
