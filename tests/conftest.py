"""Shared fixtures for the test suite.

Building a full simulated world is the expensive part of most tests, so the
fixtures below are session-scoped: one small world, one soundness campaign,
one detection campaign, and one feasibility crawl are shared by every test
that only reads them.  Tests that mutate state build their own objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import CampaignConfig, EncoreDeployment
from repro.core.targets import TargetList
from repro.core.task_generation import TaskGenerationLimits, TaskGenerationPipeline
from repro.population.world import World, WorldConfig


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_world() -> World:
    """A compact world: 24 online target domains, 4 origin sites."""
    return World(
        WorldConfig(seed=7, target_list_total=30, target_list_online=24, origin_site_count=4)
    )


@pytest.fixture(scope="session")
def detection_deployment(small_world: World) -> EncoreDeployment:
    """A §7.2-style deployment measuring Facebook / YouTube / Twitter."""
    config = CampaignConfig(
        visits=4000,
        include_testbed=False,
        favicons_only=True,
        target_domains=("facebook.com", "youtube.com", "twitter.com"),
        seed=11,
    )
    return EncoreDeployment(small_world, config)


@pytest.fixture(scope="session")
def detection_result(detection_deployment: EncoreDeployment):
    return detection_deployment.run_campaign()


@pytest.fixture(scope="session")
def soundness_deployment() -> EncoreDeployment:
    """A §7.1-style deployment with the censorship testbed attached."""
    world = World(
        WorldConfig(seed=13, target_list_total=20, target_list_online=16, origin_site_count=4)
    )
    config = CampaignConfig(
        visits=3000,
        include_testbed=True,
        testbed_fraction=0.3,
        favicons_only=True,
        seed=17,
    )
    return EncoreDeployment(world, config)


@pytest.fixture(scope="session")
def soundness_result(soundness_deployment: EncoreDeployment):
    return soundness_deployment.run_campaign()


@pytest.fixture(scope="session")
def feasibility_world() -> World:
    """A medium world used for the §6.1 feasibility statistics."""
    return World(WorldConfig(seed=21, target_list_total=70, target_list_online=60))


@pytest.fixture(scope="session")
def feasibility_report(feasibility_world: World):
    pipeline = TaskGenerationPipeline(
        feasibility_world.search, feasibility_world.headless, TaskGenerationLimits()
    )
    target_list = TargetList.high_value(total=70, online=60)
    return pipeline.run(target_list.entries)
