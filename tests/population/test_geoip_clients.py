"""Tests for the GeoIP database and client factory."""

from collections import Counter

import numpy as np
import pytest

from repro.datasets.countries import all_countries, filtering_country_codes
from repro.population.clients import Client, ClientFactory
from repro.population.geoip import GeoIPDatabase


class TestGeoIPDatabase:
    def test_allocate_and_lookup_roundtrip(self):
        geoip = GeoIPDatabase()
        for code in ("US", "CN", "IR", "X03"):
            ip = geoip.allocate_ip(code)
            assert geoip.lookup(ip) == code

    def test_allocated_ips_are_unique(self):
        geoip = GeoIPDatabase()
        ips = [geoip.allocate_ip("US") for _ in range(5000)]
        assert len(set(ips)) == len(ips)

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            GeoIPDatabase().allocate_ip("QQ")

    def test_lookup_unknown_space_returns_none(self):
        geoip = GeoIPDatabase()
        assert geoip.lookup("198.51.100.1") is None
        assert geoip.lookup("not-an-ip") is None
        assert geoip.lookup("1.2.3") is None

    def test_covers_all_countries(self):
        geoip = GeoIPDatabase()
        assert set(geoip.countries()) == {c.code for c in all_countries()}


class TestClientFactory:
    @pytest.fixture(scope="class")
    def clients(self):
        factory = ClientFactory(rng=np.random.default_rng(1))
        return factory.sample_clients(4000)

    def test_client_ids_unique(self, clients):
        assert len({c.client_id for c in clients}) == len(clients)

    def test_ips_geolocate_to_client_country(self, clients):
        geoip = GeoIPDatabase()
        for client in clients[:200]:
            assert geoip.lookup(client.ip_address) == client.country_code

    def test_us_is_most_common_country(self, clients):
        counts = Counter(c.country_code for c in clients)
        assert counts.most_common(1)[0][0] == "US"

    def test_filtering_country_share_matches_paper(self, clients):
        """§6.2: roughly 16% of visits come from well-known filtering countries."""
        filtering = filtering_country_codes()
        share = sum(1 for c in clients if c.country_code in filtering) / len(clients)
        assert 0.10 < share < 0.30

    def test_dwell_time_distribution_matches_paper(self, clients):
        """§6.2: ~45% of visitors stay >10 s and ~35% stay >60 s."""
        over_10 = sum(1 for c in clients if c.dwell_time_s > 10) / len(clients)
        over_60 = sum(1 for c in clients if c.dwell_time_s > 60) / len(clients)
        assert 0.35 < over_10 < 0.55
        assert 0.25 < over_60 < 0.45

    def test_automated_fraction_is_modest(self, clients):
        automated = sum(1 for c in clients if c.is_automated) / len(clients)
        assert 0.08 < automated < 0.22

    def test_country_pinning(self):
        factory = ClientFactory(rng=np.random.default_rng(2))
        assert all(c.country_code == "PK" for c in factory.sample_clients(20, country_code="PK"))

    def test_can_run_task_rules(self):
        base = dict(
            client_id=1, ip_address="10.0.0.1", country_code="US", isp="isp",
            browser=ClientFactory(rng=np.random.default_rng(0)).sample_client().browser,
            link=None,
        )
        runnable = Client(**base, dwell_time_s=30.0, is_automated=False)
        crawler = Client(**{**base, "client_id": 2}, dwell_time_s=30.0, is_automated=True)
        bouncer = Client(**{**base, "client_id": 3}, dwell_time_s=0.6, is_automated=False)
        long_visit = Client(**{**base, "client_id": 4}, dwell_time_s=120.0, is_automated=False)
        assert runnable.can_run_task
        assert not crawler.can_run_task
        assert not bouncer.can_run_task
        assert long_visit.can_run_multiple_tasks
        assert not runnable.can_run_multiple_tasks
