"""Tests for the §6.2 analytics generator and the World model."""

import numpy as np
import pytest

from repro.population.analytics import VisitGenerator
from repro.population.world import COLLECTION_DOMAIN, COORDINATION_DOMAIN, World, WorldConfig


class TestAnalyticsMonth:
    @pytest.fixture(scope="class")
    def month(self):
        return VisitGenerator(rng=np.random.default_rng(4)).generate_month()

    def test_default_visit_count_matches_pilot(self, month):
        assert month.total_visits == 1171

    def test_most_visits_attempt_a_task(self, month):
        """§6.2: 999 of 1,171 visits attempted a measurement task."""
        assert 0.70 * month.total_visits < month.task_attempts < 0.95 * month.total_visits

    def test_filtering_country_fraction_near_16_percent(self, month):
        assert 0.08 < month.filtering_country_fraction < 0.30

    def test_many_countries_with_ten_plus_visits(self, month):
        """§6.2: more than 10 visitors from at least 10 countries besides the US."""
        assert month.countries_with_at_least[10] >= 10

    def test_dwell_fractions(self, month):
        assert 0.35 < month.dwell_over_10s_fraction < 0.60
        assert 0.25 < month.dwell_over_60s_fraction < 0.45

    def test_summary_keys(self, month):
        summary = month.summary()
        assert set(summary) == {
            "total_visits",
            "task_attempts",
            "filtering_country_fraction",
            "countries_with_10_plus_visits",
            "dwell_over_10s_fraction",
            "dwell_over_60s_fraction",
        }

    def test_custom_visit_count(self):
        month = VisitGenerator(rng=np.random.default_rng(1)).generate_month(visits=200)
        assert month.total_visits == 200
        assert all(1 <= v.day_of_month <= 28 for v in month.visits)


class TestWorld:
    def test_registers_target_origin_and_infrastructure_sites(self, small_world: World):
        assert "facebook.com" in small_world.universe
        assert COORDINATION_DOMAIN in small_world.universe
        assert COLLECTION_DOMAIN in small_world.universe
        for domain in small_world.origin_domains:
            assert domain in small_world.universe

    def test_site_count_matches_config(self, small_world: World):
        config = small_world.config
        expected = config.target_list_online + config.origin_site_count + 2
        assert len(small_world.universe) == expected

    def test_interceptors_depend_on_country(self, small_world: World):
        cn_client = small_world.sample_client("CN")
        us_client = small_world.sample_client("US")
        assert small_world.interceptors_for(cn_client)
        assert small_world.interceptors_for(us_client) == ()

    def test_global_interceptors_apply_everywhere(self):
        world = World(WorldConfig(seed=99, target_list_total=12, target_list_online=10,
                                  origin_site_count=2))
        from repro.censor.mechanisms import Censor, FilteringMechanism
        from repro.censor.policy import BlacklistPolicy

        censor = Censor("global", BlacklistPolicy.for_domains(["everywhere.org"]),
                        FilteringMechanism.DNS_NXDOMAIN)
        world.add_global_interceptor(censor)
        client = world.sample_client("US")
        assert censor in world.interceptors_for(client)
        assert world.is_filtered_for("http://everywhere.org/", "US")

    def test_ground_truth_filtering(self, small_world: World):
        assert small_world.is_filtered_for("http://facebook.com/favicon.ico", "CN")
        assert not small_world.is_filtered_for("http://facebook.com/favicon.ico", "US")
        assert small_world.is_filtered_for("http://youtube.com/favicon.ico", "PK")

    def test_make_browser_uses_client_link_and_censors(self, small_world: World):
        client = small_world.sample_client("IR")
        browser = small_world.make_browser(client)
        assert browser.link is client.link
        assert browser.interceptors == small_world.interceptors_for(client)

    def test_extra_censored_domains_config(self):
        world = World(
            WorldConfig(seed=5, target_list_total=12, target_list_online=10, origin_site_count=2,
                        extra_censored_domains={"US": ["blocked-in-us.net"]})
        )
        assert world.is_filtered_for("http://blocked-in-us.net/", "US")

    def test_infrastructure_urls(self, small_world: World):
        assert small_world.coordination_url.host == COORDINATION_DOMAIN
        assert small_world.collection_url.host == COLLECTION_DOMAIN
        assert small_world.universe.lookup_resource(small_world.coordination_url) is not None
        assert small_world.universe.lookup_resource(small_world.collection_url) is not None

    def test_deterministic_construction(self):
        config = WorldConfig(seed=31, target_list_total=12, target_list_online=10, origin_site_count=2)
        a = World(config)
        b = World(config)
        assert a.universe.domains == b.universe.domains
