"""Tests for the synthetic datasets (target list, country metadata)."""

import pytest

from repro.datasets.countries import (
    TOTAL_COUNTRIES,
    all_countries,
    country,
    filtering_country_codes,
    visit_share_distribution,
)
from repro.datasets.herdict import (
    HIGH_VALUE_DOMAINS,
    ONLINE_PATTERNS,
    TOTAL_PATTERNS,
    build_high_value_list,
    online_domains,
)


class TestHighValueList:
    def test_default_sizes_match_paper(self):
        entries = build_high_value_list()
        assert len(entries) == TOTAL_PATTERNS
        assert sum(1 for e in entries if e.online) == ONLINE_PATTERNS == 178

    def test_named_domains_present_and_online(self):
        domains = online_domains()
        for domain in HIGH_VALUE_DOMAINS:
            assert domain in domains

    def test_social_media_targets_categorised(self):
        domains = online_domains()
        assert domains["facebook.com"] == "social_media"
        assert domains["youtube.com"] == "social_media"
        assert domains["twitter.com"] == "social_media"

    def test_entries_are_domain_patterns(self):
        for entry in build_high_value_list():
            assert entry.pattern.kind == "domain"
            assert entry.domain == entry.pattern.value

    def test_deterministic(self):
        a = [e.domain for e in build_high_value_list()]
        b = [e.domain for e in build_high_value_list()]
        assert a == b

    def test_domains_unique(self):
        domains = [e.domain for e in build_high_value_list()]
        assert len(domains) == len(set(domains))

    def test_custom_sizes(self):
        entries = build_high_value_list(total=50, online=40)
        assert len(entries) == 50
        assert sum(1 for e in entries if e.online) == 40

    def test_online_cannot_exceed_total(self):
        with pytest.raises(ValueError):
            build_high_value_list(total=10, online=20)

    def test_category_mix_is_diverse(self):
        categories = {e.category for e in build_high_value_list()}
        assert len(categories) >= 6


class TestCountries:
    def test_total_country_count_matches_paper(self):
        assert len(all_countries()) == TOTAL_COUNTRIES == 170

    def test_codes_unique(self):
        codes = [c.code for c in all_countries()]
        assert len(codes) == len(set(codes))

    def test_visit_shares_normalised(self):
        _, shares = visit_share_distribution()
        assert sum(shares) == pytest.approx(1.0)
        assert all(s > 0 for s in shares)

    def test_us_has_largest_share(self):
        codes, shares = visit_share_distribution()
        assert codes[shares.index(max(shares))] == "US"

    def test_well_known_filtering_countries(self):
        filtering = filtering_country_codes()
        # §6.2 names India, China, Pakistan, the UK, and South Korea.
        assert {"IN", "CN", "PK", "GB", "KR"} <= filtering
        assert "US" not in filtering

    def test_country_lookup(self):
        assert country("IR").name == "Iran"
        with pytest.raises(KeyError):
            country("QQ")

    def test_link_presets_resolve(self):
        for profile in all_countries()[:10]:
            presets = profile.link_presets()
            assert presets
            assert abs(sum(p for _, p in presets) - 1.0) < 1e-9
