"""Tests for the browser engine's embedding-primitive semantics."""

import numpy as np
import pytest

from repro.browser.engine import Browser
from repro.browser.events import LoadEvent
from repro.browser.profiles import BrowserProfile
from repro.censor.mechanisms import Censor, FilteringMechanism
from repro.censor.policy import BlacklistPolicy
from repro.netsim.latency import LinkQuality
from repro.netsim.network import Network
from repro.web.resources import ContentType, Resource
from repro.web.server import WebUniverse
from repro.web.sites import Site
from repro.web.url import URL


@pytest.fixture()
def universe():
    universe = WebUniverse()
    site = Site("target.org")
    favicon = Resource(URL.parse("http://target.org/favicon.ico"), ContentType.IMAGE, 600,
                       cacheable=True, cache_ttl_s=3600)
    sheet = Resource(URL.parse("http://target.org/style.css"), ContentType.STYLESHEET, 2000,
                     cacheable=True, cache_ttl_s=3600)
    empty_sheet = Resource(URL.parse("http://target.org/empty.css"), ContentType.STYLESHEET, 0)
    script = Resource(URL.parse("http://target.org/app.js"), ContentType.SCRIPT, 3000, nosniff=True)
    broken_script = Resource(URL.parse("http://target.org/broken.js"), ContentType.SCRIPT, 3000,
                             valid_syntax=False)
    site.add(favicon)
    site.add(sheet)
    site.add(empty_sheet)
    site.add(script)
    site.add(broken_script)
    page = Resource(
        URL.parse("http://target.org/index.html"), ContentType.HTML, 4000,
        embedded_urls=(favicon.url, sheet.url),
    )
    site.add(page)
    universe.add_site(site)
    return universe


def make_browser(universe, profile=None, interceptors=(), link=None):
    return Browser(
        profile=profile or BrowserProfile.chrome(),
        link=link or LinkQuality(rtt_ms=60, jitter_ms=0, loss_rate=0),
        network=Network(universe),
        rng=np.random.default_rng(0),
        interceptors=interceptors,
    )


def blockpage_censor():
    return Censor("bp", BlacklistPolicy.for_domains(["target.org"]), FilteringMechanism.HTTP_BLOCK_PAGE)


def dns_censor():
    return Censor("dns", BlacklistPolicy.for_domains(["target.org"]), FilteringMechanism.DNS_NXDOMAIN)


class TestImageSemantics:
    def test_onload_for_real_image(self, universe):
        load = make_browser(universe).load_image("http://target.org/favicon.ico")
        assert load.event is LoadEvent.LOAD

    def test_onerror_for_missing_image(self, universe):
        load = make_browser(universe).load_image("http://target.org/missing.png")
        assert load.event is LoadEvent.ERROR

    def test_onerror_when_censored_at_dns(self, universe):
        browser = make_browser(universe, interceptors=[dns_censor()])
        assert browser.load_image("http://target.org/favicon.ico").event is LoadEvent.ERROR

    def test_onerror_for_block_page(self, universe):
        browser = make_browser(universe, interceptors=[blockpage_censor()])
        # The block page arrives as HTML, so it does not render as an image.
        assert browser.load_image("http://target.org/favicon.ico").event is LoadEvent.ERROR

    def test_onerror_for_non_image_content(self, universe):
        assert make_browser(universe).load_image("http://target.org/app.js").event is LoadEvent.ERROR

    def test_second_load_hits_cache_and_is_fast(self, universe):
        browser = make_browser(universe)
        first = browser.load_image("http://target.org/favicon.ico")
        second = browser.load_image("http://target.org/favicon.ico")
        assert not first.from_cache
        assert second.from_cache
        assert second.elapsed_ms < first.elapsed_ms
        assert second.elapsed_ms <= 15.0


class TestStylesheetSemantics:
    def test_applied_for_real_sheet(self, universe):
        load = make_browser(universe).load_stylesheet("http://target.org/style.css")
        assert load.conclusive and load.applied

    def test_not_applied_for_missing_sheet(self, universe):
        load = make_browser(universe).load_stylesheet("http://target.org/missing.css")
        assert load.conclusive and not load.applied

    def test_empty_sheet_cannot_be_verified(self, universe):
        load = make_browser(universe).load_stylesheet("http://target.org/empty.css")
        assert not load.applied

    def test_block_page_is_not_applied(self, universe):
        browser = make_browser(universe, interceptors=[blockpage_censor()])
        load = browser.load_stylesheet("http://target.org/style.css")
        assert not load.applied

    def test_inconclusive_without_computed_style_support(self, universe):
        profile = BrowserProfile(
            family=BrowserProfile.chrome().family,
            script_onload_on_any_200=True,
            supports_computed_style_check=False,
        )
        load = make_browser(universe, profile=profile).load_stylesheet("http://target.org/style.css")
        assert not load.conclusive


class TestScriptSemantics:
    def test_chrome_onload_for_any_200(self, universe):
        browser = make_browser(universe, profile=BrowserProfile.chrome())
        # Even a non-script resource fires onload on Chrome when it is a 200.
        assert browser.load_script("http://target.org/favicon.ico").event is LoadEvent.LOAD

    def test_chrome_onerror_for_404(self, universe):
        browser = make_browser(universe, profile=BrowserProfile.chrome())
        assert browser.load_script("http://target.org/missing.js").event is LoadEvent.ERROR

    def test_chrome_cannot_distinguish_block_page(self, universe):
        browser = make_browser(universe, profile=BrowserProfile.chrome(),
                               interceptors=[blockpage_censor()])
        # Fidelity to the paper: the block page is served with HTTP 200, so
        # Chrome fires onload and the task reports (incorrect) success.
        assert browser.load_script("http://target.org/app.js").event is LoadEvent.LOAD

    def test_firefox_requires_valid_script(self, universe):
        browser = make_browser(universe, profile=BrowserProfile.firefox())
        assert browser.load_script("http://target.org/app.js").event is LoadEvent.LOAD
        assert browser.load_script("http://target.org/broken.js").event is LoadEvent.ERROR
        assert browser.load_script("http://target.org/favicon.ico").event is LoadEvent.ERROR


class TestPageRenderingAndIframeProbe:
    def test_render_page_loads_embeds_and_fills_cache(self, universe):
        browser = make_browser(universe)
        page_load = browser.render_page("http://target.org/index.html")
        assert page_load.ok
        assert len(page_load.resources_loaded) == 2
        assert browser.cache.is_cached("http://target.org/favicon.ico", browser.now_s)

    def test_render_missing_page_fails(self, universe):
        assert not make_browser(universe).render_page("http://target.org/missing.html").ok

    def test_iframe_probe_fast_when_page_loads(self, universe):
        browser = make_browser(universe)
        probe = browser.iframe_probe("http://target.org/index.html", "http://target.org/favicon.ico")
        assert probe.probe_event is LoadEvent.LOAD
        assert probe.probe_time_ms <= 15.0

    def test_iframe_probe_slow_when_page_censored(self, universe):
        browser = make_browser(universe, interceptors=[dns_censor()])
        probe = browser.iframe_probe("http://target.org/index.html", "http://target.org/favicon.ico")
        # The page never loaded, so the probe image was not cached; it either
        # errors (DNS blocked too) or takes a full network round trip.
        assert probe.probe_event is not LoadEvent.LOAD or probe.probe_time_ms > 50.0

    def test_clock_advances_with_activity(self, universe):
        browser = make_browser(universe)
        start = browser.now_s
        browser.render_page("http://target.org/index.html")
        assert browser.now_s > start
