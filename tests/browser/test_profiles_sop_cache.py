"""Tests for browser profiles, the same-origin policy rules, and the cache."""

import numpy as np
import pytest

from repro.browser.cache import BrowserCache
from repro.browser.events import LoadEvent
from repro.browser.profiles import (
    MARKET_SHARE,
    BrowserFamily,
    BrowserProfile,
    sample_profile,
)
from repro.browser.sop import (
    EmbeddingMechanism,
    embedding_allowed,
    gives_explicit_feedback,
    is_cross_origin,
    usable_for_measurement,
)
from repro.web.url import URL


class TestBrowserProfiles:
    def test_only_chrome_supports_script_task(self):
        for family in BrowserFamily:
            profile = BrowserProfile.for_family(family)
            assert profile.supports_script_task == (family is BrowserFamily.CHROME)

    def test_chrome_script_semantics_flag(self):
        assert BrowserProfile.chrome().script_onload_on_any_200
        assert not BrowserProfile.firefox().script_onload_on_any_200

    def test_market_share_sums_to_one(self):
        assert sum(MARKET_SHARE.values()) == pytest.approx(1.0)

    def test_sample_profile_follows_market_share(self):
        rng = np.random.default_rng(0)
        families = [sample_profile(rng).family for _ in range(3000)]
        chrome_fraction = sum(1 for f in families if f is BrowserFamily.CHROME) / len(families)
        assert abs(chrome_fraction - MARKET_SHARE[BrowserFamily.CHROME]) < 0.05

    def test_javascript_disabled_blocks_script_task(self):
        profile = BrowserProfile(
            family=BrowserFamily.CHROME, script_onload_on_any_200=True, javascript_enabled=False
        )
        assert not profile.supports_script_task


class TestSameOriginPolicy:
    def test_cross_origin_detection(self):
        page = URL.parse("http://origin.edu/index.html")
        assert is_cross_origin(page, URL.parse("http://censored.com/favicon.ico"))
        assert not is_cross_origin(page, URL.parse("http://origin.edu/other.html"))
        assert is_cross_origin(page.origin, URL.parse("https://origin.edu/other.html"))

    def test_xhr_blocked_cross_origin_but_allowed_same_origin(self):
        assert not embedding_allowed(EmbeddingMechanism.XHR, cross_origin=True)
        assert embedding_allowed(EmbeddingMechanism.XHR, cross_origin=False)

    @pytest.mark.parametrize(
        "mechanism",
        [
            EmbeddingMechanism.IMG_TAG,
            EmbeddingMechanism.STYLESHEET_LINK,
            EmbeddingMechanism.SCRIPT_TAG,
            EmbeddingMechanism.IFRAME,
            EmbeddingMechanism.EMBED,
        ],
    )
    def test_embedding_allowed_cross_origin(self, mechanism):
        assert embedding_allowed(mechanism, cross_origin=True)

    def test_iframe_lacks_explicit_feedback_but_is_usable(self):
        assert not gives_explicit_feedback(EmbeddingMechanism.IFRAME)
        assert usable_for_measurement(EmbeddingMechanism.IFRAME)

    def test_xhr_not_usable_for_measurement(self):
        assert not usable_for_measurement(EmbeddingMechanism.XHR)

    def test_embed_not_usable_without_feedback(self):
        assert not usable_for_measurement(EmbeddingMechanism.EMBED)


class TestBrowserCache:
    def test_store_and_lookup(self):
        cache = BrowserCache()
        cache.store("http://e.com/a.png", 500, ttl_s=60, now_s=0.0)
        assert cache.lookup("http://e.com/a.png", now_s=30.0) is not None
        assert cache.hits == 1

    def test_expiry(self):
        cache = BrowserCache()
        cache.store("http://e.com/a.png", 500, ttl_s=60, now_s=0.0)
        assert cache.lookup("http://e.com/a.png", now_s=61.0) is None
        assert cache.misses == 1

    def test_zero_ttl_not_stored(self):
        cache = BrowserCache()
        cache.store("http://e.com/a.png", 500, ttl_s=0, now_s=0.0)
        assert len(cache) == 0

    def test_is_cached_does_not_count_hit(self):
        cache = BrowserCache()
        cache.store("http://e.com/a.png", 500, ttl_s=60, now_s=0.0)
        assert cache.is_cached("http://e.com/a.png", now_s=1.0)
        assert cache.hits == 0

    def test_eviction_when_full(self):
        cache = BrowserCache(max_entries=2)
        cache.store("http://e.com/1", 10, ttl_s=10, now_s=0.0)
        cache.store("http://e.com/2", 10, ttl_s=100, now_s=0.0)
        cache.store("http://e.com/3", 10, ttl_s=100, now_s=0.0)
        assert len(cache) == 2
        assert "http://e.com/1" not in cache

    def test_invalid_max_entries(self):
        with pytest.raises(ValueError):
            BrowserCache(max_entries=0)

    def test_evict_and_clear(self):
        cache = BrowserCache()
        cache.store("http://e.com/a", 10, ttl_s=10, now_s=0.0)
        cache.evict("http://e.com/a")
        assert len(cache) == 0
        cache.store("http://e.com/a", 10, ttl_s=10, now_s=0.0)
        cache.clear()
        assert len(cache) == 0

    def test_url_object_and_string_keys_are_equivalent(self):
        cache = BrowserCache()
        url = URL.parse("http://e.com/a.png")
        cache.store(url, 500, ttl_s=60, now_s=0.0)
        assert cache.lookup("http://e.com/a.png", now_s=1.0) is not None


class TestLoadEvent:
    def test_flags(self):
        assert LoadEvent.LOAD.succeeded and not LoadEvent.LOAD.failed
        assert LoadEvent.ERROR.failed and not LoadEvent.ERROR.succeeded
        assert not LoadEvent.NONE.succeeded and not LoadEvent.NONE.failed
